//! Columnar query executor (operator-at-a-time).

pub mod eval;
pub mod join;

pub use eval::{cmp_sql, Evaluated};

use crate::engine::Engine;
use crate::error::DbError;
use crate::sql::ast::{FromClause, SelectItem, SelectStmt, SqlExpr, TableFuncArg};
use crate::table::Table;
use crate::types::{Column, SqlValue};
use crate::udf::{self, UdfInput};

/// One operator's observation scope: a trace span (inert unless someone
/// is listening — see [`obs::trace::span_active`]) plus, when an
/// `EXPLAIN ANALYZE` is live, a wall-clock timer feeding the engine's
/// plan-row collector. The steady-state cost with neither active is one
/// boolean and one relaxed atomic load per stage.
struct OpProbe {
    started: Option<std::time::Instant>,
    span: obs::trace::SpanGuard,
}

impl OpProbe {
    fn start(analyzing: bool, span_name: &'static str) -> OpProbe {
        OpProbe {
            started: analyzing.then(std::time::Instant::now),
            span: obs::trace::span_active(span_name),
        }
    }

    /// Close the scope, attaching row counts to the span and recording an
    /// ANALYZE row (the detail string is only built when one is live).
    fn finish(
        mut self,
        engine: &Engine,
        op: &'static str,
        detail: impl FnOnce() -> String,
        rows_in: u64,
        rows_out: u64,
    ) {
        self.span.field("rows_in", rows_in);
        self.span.field("rows_out", rows_out);
        if let Some(s) = self.started {
            engine.analyze_record(
                op,
                detail(),
                s.elapsed().as_nanos() as u64,
                rows_in,
                rows_out,
            );
        }
    }
}

/// Short description of a FROM clause for scan plan rows.
fn from_detail(clause: &FromClause) -> String {
    match clause {
        FromClause::Table(name) => name.clone(),
        FromClause::Subquery(_) => "(subquery)".to_string(),
        FromClause::TableFunction { name, .. } => format!("{name}(...)"),
        FromClause::Join { .. } => "join".to_string(),
    }
}

/// Run a SELECT statement to a materialized table.
pub fn run_select(engine: &Engine, stmt: &SelectStmt) -> Result<Table, DbError> {
    let analyzing = engine.analyze_active();

    // 1. Materialize the source.
    let mut source = match &stmt.from {
        None => None,
        Some(clause) => {
            let probe = OpProbe::start(analyzing, "monet.op.scan");
            let table = materialize_from(engine, clause)?;
            let rows = table.row_count() as u64;
            probe.finish(engine, "scan", || from_detail(clause), rows, rows);
            Some(table)
        }
    };
    if let Some(table) = &source {
        obs::counter!("monet.rows.scanned").add(table.row_count() as u64);
    }

    // 2. WHERE.
    if let (Some(table), Some(pred)) = (&source, &stmt.predicate) {
        let probe = OpProbe::start(analyzing, "monet.op.filter");
        let mask = eval::predicate_mask(engine, table, pred)?;
        let filtered = table.filter(&mask);
        probe.finish(
            engine,
            "filter",
            || "where".to_string(),
            table.row_count() as u64,
            filtered.row_count() as u64,
        );
        source = Some(filtered);
    }

    // 3. Projection (with grouping / aggregation and HAVING).
    let source_rows = source.as_ref().map(|t| t.row_count() as u64).unwrap_or(0);
    let mut result = if stmt.group_by.is_empty() {
        let probe = OpProbe::start(analyzing, "monet.op.project");
        let result = project(engine, source.as_ref(), &stmt.items)?;
        probe.finish(
            engine,
            "project",
            || format!("{} columns", stmt.items.len()),
            source_rows,
            result.row_count() as u64,
        );
        result
    } else {
        let table = source
            .as_ref()
            .ok_or_else(|| DbError::exec("GROUP BY requires a FROM clause"))?;
        let probe = OpProbe::start(analyzing, "monet.op.group");
        let result = group_project(engine, table, stmt)?;
        probe.finish(
            engine,
            "group",
            || format!("{} keys", stmt.group_by.len()),
            source_rows,
            result.row_count() as u64,
        );
        result
    };

    // 3b. DISTINCT: drop duplicate result rows (first occurrence wins).
    if stmt.distinct {
        let probe = OpProbe::start(analyzing, "monet.op.distinct");
        let rows_in = result.row_count() as u64;
        let mut seen = std::collections::HashSet::new();
        let mask: Vec<bool> = (0..result.row_count())
            .map(|i| {
                let key = format!("{:?}", result.row(i));
                seen.insert(key)
            })
            .collect();
        result = result.filter(&mask);
        probe.finish(
            engine,
            "distinct",
            || "distinct".to_string(),
            rows_in,
            result.row_count() as u64,
        );
    }

    // 4. ORDER BY.
    if !stmt.order_by.is_empty() {
        let probe = OpProbe::start(analyzing, "monet.op.order");
        let rows = result.row_count() as u64;
        result = order_rows(engine, &result, source.as_ref(), &stmt.order_by)?;
        probe.finish(
            engine,
            "order",
            || format!("{} keys", stmt.order_by.len()),
            rows,
            rows,
        );
    }

    // 5. LIMIT.
    if let Some(n) = stmt.limit {
        let rows_in = result.row_count() as u64;
        result = result.take(n);
        if analyzing {
            engine.analyze_record(
                "limit",
                format!("limit {n}"),
                0,
                rows_in,
                result.row_count() as u64,
            );
        }
    }
    obs::counter!("monet.rows.returned").add(result.row_count() as u64);
    Ok(result)
}

/// Materialize any FROM clause into a table (joins qualify their sides'
/// column names with the table alias).
fn materialize_from(engine: &Engine, clause: &FromClause) -> Result<Table, DbError> {
    match clause {
        FromClause::Table(name) => engine.get_table(name),
        FromClause::Subquery(sub) => run_select(engine, sub),
        FromClause::TableFunction { name, args } => run_table_function(engine, name, args),
        FromClause::Join {
            left,
            right,
            on,
            kind,
            aliases,
        } => {
            let l = join::qualify(materialize_from(engine, left)?, &aliases.0);
            let r = join::qualify(materialize_from(engine, right)?, &aliases.1);
            join::run_join(engine, l, r, on, *kind)
        }
    }
}

/// Derive an output column name for an expression.
fn output_name(item: &SelectItem, index: usize) -> String {
    match item {
        SelectItem::Star => "*".to_string(),
        SelectItem::Expr { alias: Some(a), .. } => a.clone(),
        SelectItem::Expr { expr, .. } => match expr {
            SqlExpr::Column(c) => c.rsplit('.').next().unwrap_or(c).to_string(),
            SqlExpr::Call { name, .. } => name.clone(),
            _ => format!("col{index}"),
        },
    }
}

/// Plain projection (no GROUP BY): evaluate each item columnar, broadcast
/// scalars, and assemble a rectangular result.
fn project(
    engine: &Engine,
    source: Option<&Table>,
    items: &[SelectItem],
) -> Result<Table, DbError> {
    let mut pieces: Vec<(String, Evaluated)> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Star => {
                let table =
                    source.ok_or_else(|| DbError::exec("SELECT * requires a FROM clause"))?;
                for c in table.columns.iter() {
                    pieces.push((c.name.clone(), Evaluated::Column(c.clone())));
                }
            }
            SelectItem::Expr { expr, .. } => {
                let v = eval::eval_expr(engine, source, expr)?;
                pieces.push((output_name(item, i), v));
            }
        }
    }
    // Determine row count: the longest column; all-scalar results get 1 row.
    let mut target: Option<usize> = None;
    for (_, v) in &pieces {
        if let Evaluated::Column(c) = v {
            match target {
                None => target = Some(c.len()),
                Some(t) if t == c.len() => {}
                Some(t) => {
                    return Err(DbError::exec(format!(
                        "select-list columns have different lengths ({t} vs {})",
                        c.len()
                    )))
                }
            }
        }
    }
    let rows = target.unwrap_or(1);
    let mut columns = Vec::with_capacity(pieces.len());
    for (name, v) in pieces {
        columns.push(match v {
            Evaluated::Column(mut c) => {
                c.name = name;
                c
            }
            Evaluated::Scalar(s) => {
                let mut col = Column::from_values(name, &vec![s; rows.max(1)])?;
                if rows == 0 {
                    col = col.take(0);
                }
                col
            }
        });
    }
    Table::from_columns("result", columns)
}

/// GROUP BY projection: evaluate key expressions, partition, then evaluate
/// the select items per group (aggregates reduce within the group).
fn group_project(engine: &Engine, table: &Table, stmt: &SelectStmt) -> Result<Table, DbError> {
    // Evaluate group keys as columns.
    let mut key_cols = Vec::with_capacity(stmt.group_by.len());
    for expr in &stmt.group_by {
        match eval::eval_expr(engine, Some(table), expr)? {
            Evaluated::Column(c) => key_cols.push(c),
            Evaluated::Scalar(s) => {
                key_cols.push(Column::from_values("key", &vec![s; table.row_count()])?)
            }
        }
    }
    // Partition rows by key tuple, preserving first-seen order.
    let mut order: Vec<Vec<usize>> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for row in 0..table.row_count() {
        let key: String = key_cols
            .iter()
            .map(|c| format!("{:?}|", c.get(row)))
            .collect();
        match index.get(&key) {
            Some(&g) => order[g].push(row),
            None => {
                index.insert(key, order.len());
                order.push(vec![row]);
            }
        }
    }

    // Evaluate items per group.
    let names: Vec<String> = stmt
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| output_name(item, i))
        .collect();
    let mut rows_out: Vec<Vec<SqlValue>> = Vec::with_capacity(order.len());
    for group_rows in &order {
        let mask: Vec<bool> = (0..table.row_count())
            .map(|r| group_rows.contains(&r))
            .collect();
        let sub = table.filter(&mask);
        let mut row = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            match item {
                SelectItem::Star => {
                    return Err(DbError::exec("SELECT * cannot be combined with GROUP BY"))
                }
                SelectItem::Expr { expr, .. } => {
                    let v = eval::eval_expr(engine, Some(&sub), expr)?;
                    row.push(match v {
                        Evaluated::Scalar(s) => s,
                        Evaluated::Column(c) => {
                            if c.is_empty() {
                                SqlValue::Null
                            } else {
                                c.get(0)
                            }
                        }
                    });
                }
            }
        }
        rows_out.push(row);
    }

    // HAVING: evaluate the predicate per group (against each group's
    // sub-table, so aggregates reduce within the group).
    if let Some(having) = &stmt.having {
        let mut keep = Vec::with_capacity(order.len());
        for group_rows in &order {
            let mask: Vec<bool> = (0..table.row_count())
                .map(|r| group_rows.contains(&r))
                .collect();
            let sub = table.filter(&mask);
            let v = eval::eval_expr(engine, Some(&sub), having)?;
            let truthy = match v {
                Evaluated::Scalar(SqlValue::Bool(b)) => b,
                Evaluated::Scalar(SqlValue::Null) => false,
                Evaluated::Scalar(other) => {
                    return Err(DbError::type_err(format!(
                        "HAVING must be boolean, got {}",
                        other.render()
                    )))
                }
                Evaluated::Column(c) => !c.is_empty() && matches!(c.get(0), SqlValue::Bool(true)),
            };
            keep.push(truthy);
        }
        rows_out = rows_out
            .into_iter()
            .zip(&keep)
            .filter(|(_, k)| **k)
            .map(|(r, _)| r)
            .collect();
    }

    let mut columns = Vec::with_capacity(names.len());
    for (i, name) in names.iter().enumerate() {
        let values: Vec<SqlValue> = rows_out.iter().map(|r| r[i].clone()).collect();
        columns.push(Column::from_values(name.clone(), &values)?);
    }
    Table::from_columns("result", columns)
}

/// Apply ORDER BY. Sort keys are resolved against the result columns first
/// (aliases), then against the source table when lengths line up.
fn order_rows(
    engine: &Engine,
    result: &Table,
    source: Option<&Table>,
    order_by: &[(SqlExpr, bool)],
) -> Result<Table, DbError> {
    let mut keys: Vec<(Column, bool)> = Vec::with_capacity(order_by.len());
    for (expr, desc) in order_by {
        let evaluated =
            eval::eval_expr(engine, Some(result), expr).or_else(|first_err| match source {
                Some(s) if s.row_count() == result.row_count() => {
                    eval::eval_expr(engine, Some(s), expr)
                }
                _ => Err(first_err),
            })?;
        let col = match evaluated {
            Evaluated::Column(c) => c,
            Evaluated::Scalar(s) => Column::from_values("key", &vec![s; result.row_count()])?,
        };
        if col.len() != result.row_count() {
            return Err(DbError::exec("ORDER BY key length mismatch"));
        }
        keys.push((col, *desc));
    }
    let mut perm: Vec<usize> = (0..result.row_count()).collect();
    perm.sort_by(|&a, &b| {
        for (col, desc) in &keys {
            let ord = cmp_sql(&col.get(a), &col.get(b));
            if ord != std::cmp::Ordering::Equal {
                return if *desc { ord.reverse() } else { ord };
            }
        }
        a.cmp(&b) // stable tiebreak
    });
    Ok(result.permute(&perm))
}

/// Execute a table-returning function in FROM (paper Listing 3 pattern).
pub fn run_table_function(
    engine: &Engine,
    name: &str,
    args: &[TableFuncArg],
) -> Result<Table, DbError> {
    let def = engine
        .get_function(name)?
        .ok_or_else(|| DbError::catalog(format!("no such table function '{name}'")))?;

    // Flatten arguments: subqueries contribute their output columns in
    // order; scalar expressions contribute single values.
    let mut inputs: Vec<UdfInput> = Vec::new();
    for arg in args {
        match arg {
            TableFuncArg::Query(sub) => {
                let t = run_select(engine, sub)?;
                for c in t.into_columns() {
                    inputs.push(UdfInput::Column(c));
                }
            }
            TableFuncArg::Expr(e) => match eval::eval_expr(engine, None, e)? {
                Evaluated::Scalar(s) => inputs.push(UdfInput::Scalar(s)),
                Evaluated::Column(c) => inputs.push(UdfInput::Column(c)),
            },
        }
    }
    if inputs.len() != def.params.len() {
        return Err(DbError::exec(format!(
            "table function '{}' takes {} arguments, got {}",
            def.name,
            def.params.len(),
            inputs.len()
        )));
    }
    let named: Vec<(String, UdfInput)> = def
        .params
        .iter()
        .map(|(n, _)| n.clone())
        .zip(inputs)
        .collect();

    // Input extraction interception (the paper's extract function, §2.2).
    if engine.extract_matches(&def.name) {
        engine.store_extracted(&named)?;
        return Err(DbError::exec(crate::engine::EXTRACT_SIGNAL));
    }

    let out = udf::run_operator_at_a_time(engine, &def, &named)?;
    engine.append_udf_stdout(&out.stdout);
    udf::output_to_table(&def, &out.value)
}

#[cfg(test)]
mod tests {
    // The executor is exercised end-to-end through Engine::execute in
    // engine.rs tests and the crate-level integration tests.
}
