//! Columnar expression evaluation.

use std::cmp::Ordering;

use crate::engine::Engine;
use crate::error::DbError;
use crate::sql::ast::{BinaryOp, SqlExpr, UnaryOp};
use crate::table::Table;
use crate::types::{Column, SqlValue};
use crate::udf::{self, UdfInput};

/// Result of evaluating an expression against a table: a whole column or a
/// single scalar (literals, aggregates, scalar-returning UDFs).
#[derive(Debug, Clone)]
pub enum Evaluated {
    Column(Column),
    Scalar(SqlValue),
}

impl Evaluated {
    /// Value at row `i` (scalars broadcast).
    pub fn get(&self, i: usize) -> SqlValue {
        match self {
            Evaluated::Column(c) => c.get(i),
            Evaluated::Scalar(s) => s.clone(),
        }
    }

    /// Length if columnar.
    pub fn column_len(&self) -> Option<usize> {
        match self {
            Evaluated::Column(c) => Some(c.len()),
            Evaluated::Scalar(_) => None,
        }
    }

    /// Materialize as a column of `rows` values.
    pub fn into_column(self, name: &str, rows: usize) -> Result<Column, DbError> {
        match self {
            Evaluated::Column(mut c) => {
                c.name = name.to_string();
                Ok(c)
            }
            Evaluated::Scalar(s) => Column::from_values(name, &vec![s; rows]),
        }
    }
}

/// Names of aggregate functions handled by the evaluator.
fn is_aggregate(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "count" | "sum" | "avg" | "min" | "max" | "median"
    )
}

/// Evaluate `expr` against `source` (None = no FROM clause).
pub fn eval_expr(
    engine: &Engine,
    source: Option<&Table>,
    expr: &SqlExpr,
) -> Result<Evaluated, DbError> {
    match expr {
        SqlExpr::Literal(v) => Ok(Evaluated::Scalar(v.clone())),
        SqlExpr::Star => Err(DbError::exec("'*' is only valid inside count(*)")),
        SqlExpr::Column(name) => {
            let table = source.ok_or_else(|| {
                DbError::catalog(format!("column '{name}' referenced without a FROM clause"))
            })?;
            resolve_column(table, name).map(|c| Evaluated::Column(c.clone()))
        }
        SqlExpr::Unary { op, expr } => {
            let v = eval_expr(engine, source, expr)?;
            apply_unary(*op, v)
        }
        SqlExpr::Binary { left, op, right } => {
            let l = eval_expr(engine, source, left)?;
            let r = eval_expr(engine, source, right)?;
            apply_binary(*op, l, r)
        }
        SqlExpr::IsNull { expr, negated } => {
            let v = eval_expr(engine, source, expr)?;
            Ok(match v {
                Evaluated::Scalar(s) => Evaluated::Scalar(SqlValue::Bool(s.is_null() != *negated)),
                Evaluated::Column(c) => {
                    let out: Vec<SqlValue> = (0..c.len())
                        .map(|i| SqlValue::Bool(c.is_null(i) != *negated))
                        .collect();
                    Evaluated::Column(Column::from_values("is_null", &out)?)
                }
            })
        }
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(engine, source, expr)?;
            let p = eval_expr(engine, source, pattern)?;
            let Evaluated::Scalar(SqlValue::Str(pat)) = p else {
                return Err(DbError::type_err("LIKE pattern must be a string literal"));
            };
            let apply = |s: &SqlValue| -> Result<SqlValue, DbError> {
                match s {
                    SqlValue::Null => Ok(SqlValue::Null),
                    SqlValue::Str(text) => Ok(SqlValue::Bool(like_match(text, &pat) != *negated)),
                    other => Err(DbError::type_err(format!(
                        "LIKE requires a string operand, got {}",
                        other.sql_type().map(|t| t.name()).unwrap_or("NULL")
                    ))),
                }
            };
            map_evaluated(v, "like", apply)
        }
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(engine, source, expr)?;
            let mut options = Vec::with_capacity(list.len());
            for item in list {
                match eval_expr(engine, source, item)? {
                    Evaluated::Scalar(s) => options.push(s),
                    Evaluated::Column(_) => {
                        return Err(DbError::type_err("IN list items must be scalars"))
                    }
                }
            }
            let apply = move |s: &SqlValue| -> Result<SqlValue, DbError> {
                if s.is_null() {
                    return Ok(SqlValue::Null);
                }
                let found = options
                    .iter()
                    .any(|o| cmp_sql(s, o) == Ordering::Equal && !o.is_null());
                Ok(SqlValue::Bool(found != *negated))
            };
            map_evaluated(v, "in", apply)
        }
        SqlExpr::Call { name, args } => eval_call(engine, source, name, args),
        SqlExpr::Cast { expr, target } => {
            let v = eval_expr(engine, source, expr)?;
            let target = *target;
            // Typed fast paths for the numeric casts the UDF inliner emits
            // (float()/int() lower to CAST); identical to `coerce` per value.
            if let Evaluated::Column(c) = &v {
                if !c.has_nulls() {
                    use crate::types::{ColumnData, SqlType};
                    match (&c.data, target) {
                        (ColumnData::Int(_), SqlType::Integer)
                        | (ColumnData::Double(_), SqlType::Double) => return Ok(v),
                        (ColumnData::Int(ints), SqlType::Double) => {
                            return Ok(Evaluated::Column(Column::new(
                                "cast",
                                ColumnData::Double(ints.iter().map(|&x| x as f64).collect()),
                            )))
                        }
                        (ColumnData::Double(ds), SqlType::Integer) => {
                            return Ok(Evaluated::Column(Column::new(
                                "cast",
                                ColumnData::Int(ds.iter().map(|d| d.trunc() as i64).collect()),
                            )))
                        }
                        _ => {}
                    }
                }
            }
            map_evaluated(v, "cast", move |s| s.coerce(target))
        }
        SqlExpr::Case { branches, else_ } => eval_case(engine, source, branches, else_),
    }
}

/// Evaluate each distinct aggregate subexpression of an inlined UDF plan
/// once and substitute its scalar result as a literal, innermost first.
///
/// Sound because the inlined subset is pure and every non-CASE position is
/// evaluated eagerly: a hoisted aggregate's value — and any error — is
/// exactly what the plain evaluation would produce, just computed once
/// instead of per occurrence (the lowering substitutes bound variables, so
/// `mean = sum(c)/len(c)` repeats its aggregates at every use site).
/// CASE subtrees are left untouched on both the collect and replace side:
/// branch values run lazily, possibly against filtered sub-tables.
pub(crate) fn hoist_aggregates(
    engine: &Engine,
    table: &Table,
    expr: &SqlExpr,
) -> Result<SqlExpr, DbError> {
    let mut expr = expr.clone();
    loop {
        let mut found: Vec<SqlExpr> = Vec::new();
        collect_innermost_aggregates(&expr, &mut found);
        if found.is_empty() {
            return Ok(expr);
        }
        for agg in found {
            let value = match eval_expr(engine, Some(table), &agg)? {
                Evaluated::Scalar(s) => s,
                Evaluated::Column(_) => return Err(DbError::exec("aggregate produced a column")),
            };
            let lit = SqlExpr::Literal(value);
            replace_subexpr(&mut expr, &agg, &lit);
        }
    }
}

/// Collect aggregate calls whose arguments contain no further aggregates
/// (outside CASE), deduplicated. Returns whether `expr` contains any
/// aggregate at a non-CASE-nested position.
fn collect_innermost_aggregates(expr: &SqlExpr, out: &mut Vec<SqlExpr>) -> bool {
    match expr {
        SqlExpr::Literal(_) | SqlExpr::Column(_) | SqlExpr::Star => false,
        SqlExpr::Unary { expr, .. } | SqlExpr::Cast { expr, .. } | SqlExpr::IsNull { expr, .. } => {
            collect_innermost_aggregates(expr, out)
        }
        SqlExpr::Like { expr, pattern, .. } => {
            let a = collect_innermost_aggregates(expr, out);
            let b = collect_innermost_aggregates(pattern, out);
            a | b
        }
        SqlExpr::Binary { left, right, .. } => {
            let a = collect_innermost_aggregates(left, out);
            let b = collect_innermost_aggregates(right, out);
            a | b
        }
        SqlExpr::InList { expr, list, .. } => {
            let mut any = collect_innermost_aggregates(expr, out);
            for item in list {
                any |= collect_innermost_aggregates(item, out);
            }
            any
        }
        // Opaque: lazy branches may see filtered sub-tables.
        SqlExpr::Case { .. } => false,
        SqlExpr::Call { name, args } => {
            let mut inner = false;
            for a in args {
                inner |= collect_innermost_aggregates(a, out);
            }
            if is_aggregate(name) {
                if !inner && !out.contains(expr) {
                    out.push(expr.clone());
                }
                return true;
            }
            inner
        }
    }
}

fn replace_subexpr(expr: &mut SqlExpr, target: &SqlExpr, replacement: &SqlExpr) {
    if expr == target {
        *expr = replacement.clone();
        return;
    }
    match expr {
        SqlExpr::Literal(_) | SqlExpr::Column(_) | SqlExpr::Star => {}
        SqlExpr::Unary { expr, .. } | SqlExpr::Cast { expr, .. } | SqlExpr::IsNull { expr, .. } => {
            replace_subexpr(expr, target, replacement)
        }
        SqlExpr::Like { expr, pattern, .. } => {
            replace_subexpr(expr, target, replacement);
            replace_subexpr(pattern, target, replacement);
        }
        SqlExpr::Binary { left, right, .. } => {
            replace_subexpr(left, target, replacement);
            replace_subexpr(right, target, replacement);
        }
        SqlExpr::InList { expr, list, .. } => {
            replace_subexpr(expr, target, replacement);
            for item in list {
                replace_subexpr(item, target, replacement);
            }
        }
        SqlExpr::Call { args, .. } => {
            for a in args {
                replace_subexpr(a, target, replacement);
            }
        }
        // Opaque, mirroring collect_innermost_aggregates: an aggregate under
        // a CASE may evaluate against a filtered sub-table, where the
        // hoisted full-table value would be wrong.
        SqlExpr::Case { .. } => {}
    }
}

/// CASE truthiness: TRUE or non-zero integer selects the branch; NULL and
/// FALSE do not; anything else is a type error.
fn case_truth(v: &SqlValue) -> Result<bool, DbError> {
    match v {
        SqlValue::Null => Ok(false),
        SqlValue::Bool(b) => Ok(*b),
        SqlValue::Int(i) => Ok(*i != 0),
        other => Err(DbError::type_err(format!(
            "CASE condition must be a boolean, got {}",
            other.render()
        ))),
    }
}

/// Lazy CASE evaluation. Conditions are checked in order; a branch value is
/// only ever evaluated for the rows that branch selects (so
/// `CASE WHEN b <> 0 THEN a / b ELSE 0 END` never divides by zero).
///
/// Scalar conditions pick one branch for the whole batch. Columnar
/// conditions evaluate each branch against the filtered sub-table and
/// scatter the per-branch results back into row order.
fn eval_case(
    engine: &Engine,
    source: Option<&Table>,
    branches: &[(SqlExpr, SqlExpr)],
    else_: &SqlExpr,
) -> Result<Evaluated, DbError> {
    // First pass: evaluate conditions until one is columnar or one scalar
    // condition is true.
    let mut cond_cols: Vec<(usize, Column)> = Vec::new();
    let mut columnar = false;
    for (idx, (cond, value)) in branches.iter().enumerate() {
        match eval_expr(engine, source, cond)? {
            Evaluated::Scalar(s) => {
                if !columnar && case_truth(&s)? {
                    return eval_expr(engine, source, value);
                }
                // A scalar false under columnar mode: contributes no rows.
                if columnar && case_truth(&s)? {
                    // Scalar true: all remaining rows take this branch.
                    let table = source
                        .ok_or_else(|| DbError::exec("columnar CASE requires a FROM clause"))?;
                    let trues = Column::new(
                        "case",
                        crate::types::ColumnData::Bool(vec![true; table.row_count()]),
                    );
                    cond_cols.push((idx, trues));
                    break;
                }
            }
            Evaluated::Column(c) => {
                columnar = true;
                cond_cols.push((idx, c));
            }
        }
    }
    if !columnar {
        // Every condition was a scalar false: the ELSE arm wins.
        return eval_expr(engine, source, else_);
    }
    let table = source.ok_or_else(|| DbError::exec("columnar CASE requires a FROM clause"))?;
    let rows = table.row_count();
    let mut out: Vec<Option<SqlValue>> = vec![None; rows];
    let mut remaining = vec![true; rows];
    for (idx, cond) in &cond_cols {
        if cond.len() != rows {
            return Err(DbError::exec("CASE condition length mismatch"));
        }
        let mut mask = vec![false; rows];
        let mut any = false;
        for i in 0..rows {
            if remaining[i] && case_truth(&cond.get(i))? {
                mask[i] = true;
                remaining[i] = false;
                any = true;
            }
        }
        if !any {
            continue;
        }
        let sub = table.filter(&mask);
        let value = eval_expr(engine, Some(&sub), &branches[*idx].1)?;
        let mut j = 0;
        for i in 0..rows {
            if mask[i] {
                out[i] = Some(value.get(j));
                j += 1;
            }
        }
    }
    if remaining.iter().any(|r| *r) {
        let sub = table.filter(&remaining);
        let value = eval_expr(engine, Some(&sub), else_)?;
        let mut j = 0;
        for i in 0..rows {
            if remaining[i] {
                out[i] = Some(value.get(j));
                j += 1;
            }
        }
    }
    let values: Vec<SqlValue> = out
        .into_iter()
        .map(|v| v.expect("every row assigned"))
        .collect();
    Ok(Evaluated::Column(Column::from_values("case", &values)?))
}

/// Resolve a (possibly qualified) column reference against a table whose
/// columns may themselves be alias-qualified (join outputs).
///
/// Resolution order: exact name match; then, for a bare name, a unique
/// `*.name` suffix match (ambiguity is an error); for a qualified name, a
/// bare-leaf match (single-table queries referenced as `t.col`).
pub fn resolve_column<'t>(table: &'t Table, name: &str) -> Result<&'t Column, DbError> {
    if let Some(c) = table
        .columns
        .iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
    {
        return Ok(c);
    }
    if !name.contains('.') {
        let suffix = format!(".{}", name.to_ascii_lowercase());
        let mut matches = table
            .columns
            .iter()
            .filter(|c| c.name.to_ascii_lowercase().ends_with(&suffix));
        match (matches.next(), matches.next()) {
            (Some(c), None) => return Ok(c),
            (Some(a), Some(b)) => {
                return Err(DbError::catalog(format!(
                    "column reference '{name}' is ambiguous ('{}' vs '{}')",
                    a.name, b.name
                )))
            }
            _ => {}
        }
    } else if let Some(leaf) = name.rsplit('.').next() {
        if let Some(c) = table
            .columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(leaf))
        {
            return Ok(c);
        }
    }
    Err(DbError::catalog(format!("no such column '{name}'")))
}

/// Map a scalar function over an evaluated value.
fn map_evaluated(
    v: Evaluated,
    name: &str,
    f: impl Fn(&SqlValue) -> Result<SqlValue, DbError>,
) -> Result<Evaluated, DbError> {
    Ok(match v {
        Evaluated::Scalar(s) => Evaluated::Scalar(f(&s)?),
        Evaluated::Column(c) => {
            let mut out = Vec::with_capacity(c.len());
            for i in 0..c.len() {
                out.push(f(&c.get(i))?);
            }
            Evaluated::Column(Column::from_values(name, &out)?)
        }
    })
}

fn apply_unary(op: UnaryOp, v: Evaluated) -> Result<Evaluated, DbError> {
    let f = move |s: &SqlValue| -> Result<SqlValue, DbError> {
        Ok(match (op, s) {
            (_, SqlValue::Null) => SqlValue::Null,
            // checked: -i64::MIN does not fit.
            (UnaryOp::Neg, SqlValue::Int(i)) => {
                SqlValue::Int(i.checked_neg().ok_or_else(overflow)?)
            }
            (UnaryOp::Neg, SqlValue::Double(d)) => SqlValue::Double(-d),
            (UnaryOp::Neg, SqlValue::Bool(b)) => SqlValue::Int(-(*b as i64)),
            (UnaryOp::Not, SqlValue::Bool(b)) => SqlValue::Bool(!b),
            (op, other) => {
                return Err(DbError::type_err(format!(
                    "cannot apply {op:?} to {}",
                    other.sql_type().map(|t| t.name()).unwrap_or("NULL")
                )))
            }
        })
    };
    map_evaluated(v, "unary", f)
}

fn apply_binary(op: BinaryOp, l: Evaluated, r: Evaluated) -> Result<Evaluated, DbError> {
    match (&l, &r) {
        (Evaluated::Scalar(a), Evaluated::Scalar(b)) => {
            Ok(Evaluated::Scalar(binary_values(op, a, b)?))
        }
        _ => {
            let len = match (l.column_len(), r.column_len()) {
                (Some(a), Some(b)) if a != b => {
                    return Err(DbError::exec(format!(
                        "operand column lengths differ ({a} vs {b})"
                    )))
                }
                (Some(a), _) => a,
                (_, Some(b)) => b,
                _ => unreachable!("scalar/scalar handled above"),
            };
            if let Some(done) = binary_fast(op, &l, &r, len) {
                return done;
            }
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                out.push(binary_values(op, &l.get(i), &r.get(i))?);
            }
            Ok(Evaluated::Column(Column::from_values(op.symbol(), &out)?))
        }
    }
}

/// Typed view of a NULL-free numeric operand for the columnar fast path.
enum NumOperand<'a> {
    IntCol(&'a [i64]),
    FloatCol(&'a [f64]),
    IntScalar(i64),
    FloatScalar(f64),
}

impl NumOperand<'_> {
    fn is_int(&self) -> bool {
        matches!(self, NumOperand::IntCol(_) | NumOperand::IntScalar(_))
    }

    fn int_at(&self, i: usize) -> i64 {
        match self {
            NumOperand::IntCol(v) => v[i],
            NumOperand::IntScalar(k) => *k,
            _ => unreachable!("int_at on a float operand"),
        }
    }

    fn f64_at(&self, i: usize) -> f64 {
        match self {
            NumOperand::IntCol(v) => v[i] as f64,
            NumOperand::FloatCol(v) => v[i],
            NumOperand::IntScalar(k) => *k as f64,
            NumOperand::FloatScalar(d) => *d,
        }
    }
}

fn num_operand(v: &Evaluated) -> Option<NumOperand<'_>> {
    match v {
        Evaluated::Scalar(SqlValue::Int(i)) => Some(NumOperand::IntScalar(*i)),
        // Booleans count as 0/1 integers, matching `as_int`.
        Evaluated::Scalar(SqlValue::Bool(b)) => Some(NumOperand::IntScalar(*b as i64)),
        Evaluated::Scalar(SqlValue::Double(d)) => Some(NumOperand::FloatScalar(*d)),
        Evaluated::Column(c) if !c.has_nulls() => match &c.data {
            crate::types::ColumnData::Int(v) => Some(NumOperand::IntCol(v)),
            crate::types::ColumnData::Double(v) => Some(NumOperand::FloatCol(v)),
            _ => None,
        },
        _ => None,
    }
}

/// Columnar fast path over NULL-free numeric operands: same semantics and
/// error strings as [`binary_values`], without boxing each element into
/// `SqlValue`. Returns `None` to fall back to the generic rowwise loop.
fn binary_fast(
    op: BinaryOp,
    l: &Evaluated,
    r: &Evaluated,
    len: usize,
) -> Option<Result<Evaluated, DbError>> {
    use BinaryOp::*;
    if matches!(op, And | Or) {
        return None;
    }
    let a = num_operand(l)?;
    let b = num_operand(r)?;
    let name = op.symbol();

    // Comparisons mirror cmp_sql: every numeric pair is ordered through f64.
    if matches!(op, Eq | NotEq | Lt | Le | Gt | Ge) {
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let ord = a
                .f64_at(i)
                .partial_cmp(&b.f64_at(i))
                .unwrap_or(Ordering::Equal);
            out.push(match op {
                Eq => ord == Ordering::Equal,
                NotEq => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                Le => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                Ge => ord != Ordering::Less,
                _ => unreachable!(),
            });
        }
        return Some(Ok(Evaluated::Column(Column::new(
            name,
            crate::types::ColumnData::Bool(out),
        ))));
    }

    if a.is_int() && b.is_int() {
        // Pow with a columnar or negative exponent can go float per row;
        // leave those shapes to the generic path.
        if op == Pow && !matches!(b, NumOperand::IntScalar(e) if e >= 0) {
            return None;
        }
        let kernel: fn(i64, i64) -> Result<i64, DbError> = match op {
            Add => |x, y| x.checked_add(y).ok_or_else(overflow),
            Sub => |x, y| x.checked_sub(y).ok_or_else(overflow),
            Mul => |x, y| x.checked_mul(y).ok_or_else(overflow),
            Div => |x, y| {
                if y == 0 {
                    return Err(DbError::exec("division by zero"));
                }
                x.checked_div(y).ok_or_else(overflow)
            },
            Mod => |x, y| {
                if y == 0 {
                    return Err(DbError::exec("modulo by zero"));
                }
                x.checked_rem(y).ok_or_else(overflow)
            },
            FloorDiv => |x, y| {
                if y == 0 {
                    return Err(DbError::exec("integer division by zero"));
                }
                x.checked_div_euclid(y).ok_or_else(overflow)
            },
            FloorMod => |x, y| {
                if y == 0 {
                    return Err(DbError::exec("modulo by zero"));
                }
                x.checked_rem_euclid(y).ok_or_else(overflow)
            },
            Pow => |x, y| {
                let exp = u32::try_from(y).map_err(|_| DbError::exec("exponent too large"))?;
                x.checked_pow(exp).ok_or_else(overflow)
            },
            _ => return None,
        };
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            match kernel(a.int_at(i), b.int_at(i)) {
                Ok(v) => out.push(v),
                Err(e) => return Some(Err(e)),
            }
        }
        return Some(Ok(Evaluated::Column(Column::new(
            name,
            crate::types::ColumnData::Int(out),
        ))));
    }

    let kernel: fn(f64, f64) -> Result<f64, DbError> = match op {
        Add => |x, y| Ok(x + y),
        Sub => |x, y| Ok(x - y),
        Mul => |x, y| Ok(x * y),
        Div => |x, y| {
            if y == 0.0 {
                return Err(DbError::exec("division by zero"));
            }
            Ok(x / y)
        },
        Mod => |x, y| {
            if y == 0.0 {
                return Err(DbError::exec("modulo by zero"));
            }
            Ok(x % y)
        },
        FloorDiv => |x, y| {
            if y == 0.0 {
                return Err(DbError::exec("float floor division by zero"));
            }
            Ok((x / y).floor())
        },
        FloorMod => |x, y| {
            if y == 0.0 {
                return Err(DbError::exec("float modulo by zero"));
            }
            Ok(x - y * (x / y).floor())
        },
        Pow => |x, y| Ok(x.powf(y)),
        _ => return None,
    };
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        match kernel(a.f64_at(i), b.f64_at(i)) {
            Ok(v) => out.push(v),
            Err(e) => return Some(Err(e)),
        }
    }
    Some(Ok(Evaluated::Column(Column::new(
        name,
        crate::types::ColumnData::Double(out),
    ))))
}

/// Scalar binary operation with SQL NULL propagation.
pub fn binary_values(op: BinaryOp, a: &SqlValue, b: &SqlValue) -> Result<SqlValue, DbError> {
    use BinaryOp::*;
    // Three-valued logic for AND/OR.
    if matches!(op, And | Or) {
        let truth = |v: &SqlValue| -> Result<Option<bool>, DbError> {
            Ok(match v {
                SqlValue::Null => None,
                SqlValue::Bool(b) => Some(*b),
                SqlValue::Int(i) => Some(*i != 0),
                other => {
                    return Err(DbError::type_err(format!(
                        "{} is not a boolean",
                        other.render()
                    )))
                }
            })
        };
        let (x, y) = (truth(a)?, truth(b)?);
        return Ok(match (op, x, y) {
            (And, Some(false), _) | (And, _, Some(false)) => SqlValue::Bool(false),
            (And, Some(true), Some(true)) => SqlValue::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => SqlValue::Bool(true),
            (Or, Some(false), Some(false)) => SqlValue::Bool(false),
            _ => SqlValue::Null,
        });
    }
    if a.is_null() || b.is_null() {
        return Ok(SqlValue::Null);
    }
    // Comparisons.
    if matches!(op, Eq | NotEq | Lt | Le | Gt | Ge) {
        let ord = cmp_sql(a, b);
        return Ok(SqlValue::Bool(match op {
            Eq => ord == Ordering::Equal,
            NotEq => ord != Ordering::Equal,
            Lt => ord == Ordering::Less,
            Le => ord != Ordering::Greater,
            Gt => ord == Ordering::Greater,
            Ge => ord != Ordering::Less,
            _ => unreachable!(),
        }));
    }
    // String concatenation via `+`.
    if let (Add, SqlValue::Str(x), SqlValue::Str(y)) = (op, a, b) {
        return Ok(SqlValue::Str(format!("{x}{y}")));
    }
    // Arithmetic with int/double promotion. Booleans count as integers
    // (0/1), matching the interpreter's numeric coercion, so an inlined
    // `(a > b) + 1` agrees with pylite instead of silently going double.
    match (as_int(a), as_int(b)) {
        (Some(x), Some(y)) => {
            Ok(match op {
                Add => SqlValue::Int(x.checked_add(y).ok_or_else(overflow)?),
                Sub => SqlValue::Int(x.checked_sub(y).ok_or_else(overflow)?),
                Mul => SqlValue::Int(x.checked_mul(y).ok_or_else(overflow)?),
                Div => {
                    if y == 0 {
                        return Err(DbError::exec("division by zero"));
                    }
                    // Integer division truncates, SQL-style. checked:
                    // i64::MIN / -1 must error, not panic.
                    SqlValue::Int(x.checked_div(y).ok_or_else(overflow)?)
                }
                Mod => {
                    if y == 0 {
                        return Err(DbError::exec("modulo by zero"));
                    }
                    SqlValue::Int(x.checked_rem(y).ok_or_else(overflow)?)
                }
                FloorDiv => {
                    if y == 0 {
                        return Err(DbError::exec("integer division by zero"));
                    }
                    SqlValue::Int(x.checked_div_euclid(y).ok_or_else(overflow)?)
                }
                FloorMod => {
                    if y == 0 {
                        return Err(DbError::exec("modulo by zero"));
                    }
                    SqlValue::Int(x.checked_rem_euclid(y).ok_or_else(overflow)?)
                }
                Pow => {
                    if y >= 0 {
                        let exp =
                            u32::try_from(y).map_err(|_| DbError::exec("exponent too large"))?;
                        SqlValue::Int(x.checked_pow(exp).ok_or_else(overflow)?)
                    } else {
                        // Negative exponent goes float, Python-style.
                        SqlValue::Double((x as f64).powf(y as f64))
                    }
                }
                _ => return Err(bad_operands(op, a, b)),
            })
        }
        _ => {
            let x = to_f64(a).ok_or_else(|| bad_operands(op, a, b))?;
            let y = to_f64(b).ok_or_else(|| bad_operands(op, a, b))?;
            Ok(match op {
                Add => SqlValue::Double(x + y),
                Sub => SqlValue::Double(x - y),
                Mul => SqlValue::Double(x * y),
                Div => {
                    if y == 0.0 {
                        return Err(DbError::exec("division by zero"));
                    }
                    SqlValue::Double(x / y)
                }
                Mod => {
                    if y == 0.0 {
                        return Err(DbError::exec("modulo by zero"));
                    }
                    SqlValue::Double(x % y)
                }
                FloorDiv => {
                    if y == 0.0 {
                        return Err(DbError::exec("float floor division by zero"));
                    }
                    SqlValue::Double((x / y).floor())
                }
                FloorMod => {
                    if y == 0.0 {
                        return Err(DbError::exec("float modulo by zero"));
                    }
                    // Floor modulo: result carries the divisor's sign.
                    SqlValue::Double(x - y * (x / y).floor())
                }
                Pow => SqlValue::Double(x.powf(y)),
                _ => return Err(bad_operands(op, a, b)),
            })
        }
    }
}

/// Integer view of a value for arithmetic: Int as-is, Bool as 0/1.
fn as_int(v: &SqlValue) -> Option<i64> {
    match v {
        SqlValue::Int(i) => Some(*i),
        SqlValue::Bool(b) => Some(*b as i64),
        _ => None,
    }
}

fn overflow() -> DbError {
    DbError::exec("integer overflow")
}

fn bad_operands(op: BinaryOp, a: &SqlValue, b: &SqlValue) -> DbError {
    DbError::type_err(format!(
        "cannot apply {} to {} and {}",
        op.symbol(),
        a.sql_type().map(|t| t.name()).unwrap_or("NULL"),
        b.sql_type().map(|t| t.name()).unwrap_or("NULL"),
    ))
}

fn to_f64(v: &SqlValue) -> Option<f64> {
    match v {
        SqlValue::Int(i) => Some(*i as f64),
        SqlValue::Double(d) => Some(*d),
        SqlValue::Bool(b) => Some(*b as i64 as f64),
        _ => None,
    }
}

/// Total order over SQL values: NULL first, then numerics, strings, bools,
/// blobs; cross-type numeric comparison promotes to double.
pub fn cmp_sql(a: &SqlValue, b: &SqlValue) -> Ordering {
    match (a, b) {
        (SqlValue::Null, SqlValue::Null) => Ordering::Equal,
        (SqlValue::Null, _) => Ordering::Less,
        (_, SqlValue::Null) => Ordering::Greater,
        (SqlValue::Str(x), SqlValue::Str(y)) => x.cmp(y),
        (SqlValue::Bool(x), SqlValue::Bool(y)) => x.cmp(y),
        (SqlValue::Blob(x), SqlValue::Blob(y)) => x.cmp(y),
        _ => {
            let (x, y) = (to_f64(a), to_f64(b));
            match (x, y) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                _ => format!("{a:?}").cmp(&format!("{b:?}")),
            }
        }
    }
}

/// Evaluate a WHERE predicate into a row mask. NULL counts as false.
pub fn predicate_mask(
    engine: &Engine,
    table: &Table,
    pred: &SqlExpr,
) -> Result<Vec<bool>, DbError> {
    match eval_expr(engine, Some(table), pred)? {
        Evaluated::Scalar(s) => {
            let keep = matches!(s, SqlValue::Bool(true) | SqlValue::Int(1));
            Ok(vec![keep; table.row_count()])
        }
        Evaluated::Column(c) => {
            if c.len() != table.row_count() {
                return Err(DbError::exec("predicate length mismatch"));
            }
            Ok((0..c.len())
                .map(|i| matches!(c.get(i), SqlValue::Bool(true)))
                .collect())
        }
    }
}

// ----------------------------------------------------------------------
// Function calls: aggregates, scalar builtins, stored UDFs
// ----------------------------------------------------------------------

fn eval_call(
    engine: &Engine,
    source: Option<&Table>,
    name: &str,
    args: &[SqlExpr],
) -> Result<Evaluated, DbError> {
    let lname = name.to_ascii_lowercase();
    if is_aggregate(&lname) {
        return eval_aggregate(engine, source, &lname, args);
    }
    if let Some(result) = eval_scalar_builtin(engine, source, &lname, args)? {
        return Ok(result);
    }
    // Stored UDF.
    let def = engine
        .get_function(name)?
        .ok_or_else(|| DbError::catalog(format!("no such function '{name}'")))?;
    if args.len() != def.params.len() {
        return Err(DbError::exec(format!(
            "function '{}' takes {} arguments, got {}",
            def.name,
            def.params.len(),
            args.len()
        )));
    }
    let mut inputs = Vec::with_capacity(args.len());
    for (arg, (pname, _)) in args.iter().zip(&def.params) {
        let input = match eval_expr(engine, source, arg)? {
            Evaluated::Column(c) => UdfInput::Column(c),
            Evaluated::Scalar(s) => UdfInput::Scalar(s),
        };
        inputs.push((pname.clone(), input));
    }

    // Input extraction interception (paper §2.2).
    if engine.extract_matches(&def.name) {
        engine.store_extracted(&inputs)?;
        return Err(DbError::exec(crate::engine::EXTRACT_SIGNAL));
    }

    // EXPLAIN ANALYZE disposition rows are recorded exactly where the
    // `monetlite.udf.*` counters bump, so plan rows and counters agree by
    // construction. "bailed"/"interpreted" is decided here but recorded
    // only after the interpreter finishes, with the full elapsed time.
    let udf_started = engine.analyze_active().then(std::time::Instant::now);
    let rows_in = inputs
        .iter()
        .map(|(_, i)| match i {
            UdfInput::Column(c) => c.len() as u64,
            UdfInput::Scalar(_) => 1,
        })
        .max()
        .unwrap_or(1);
    let record_udf = |disposition: &str, rows_out: u64| {
        if let Some(s) = udf_started {
            engine.analyze_record(
                "udf",
                format!("{} {disposition}", def.name),
                s.elapsed().as_nanos() as u64,
                rows_in,
                rows_out,
            );
        }
    };
    let rows_out_of = |v: &Evaluated| match v {
        Evaluated::Column(c) => c.len() as u64,
        Evaluated::Scalar(_) => 1,
    };
    let mut deferred_disposition: Option<&'static str> = None;

    // Froid-style inlining: straight-line bodies run as relational
    // expressions; anything else (or any runtime bail) falls through to
    // the interpreter below.
    if engine.inline_enabled() {
        let per_row = engine.model() == crate::engine::ExecutionModel::TupleAtATime;
        let plan = engine.udf_plan(&def);
        match &*plan {
            crate::inline::UdfPlan::Inlined(p) => {
                match crate::inline::run_inlined(engine, p, &inputs, per_row) {
                    crate::inline::InlineOutcome::Done(v) => {
                        obs::counter!("monetlite.udf.inlined").inc();
                        // Tuple-at-a-time calls the UDF once per source row;
                        // a row-independent body still yields one value per
                        // row, so broadcast scalar results.
                        let v = match v {
                            Evaluated::Scalar(s) if per_row => {
                                let rows = source.map(|t| t.row_count()).unwrap_or(1);
                                Evaluated::Column(Column::from_values(&def.name, &vec![s; rows])?)
                            }
                            other => other,
                        };
                        record_udf("inlined", rows_out_of(&v));
                        return Ok(v);
                    }
                    crate::inline::InlineOutcome::Bailed(_) => {
                        obs::counter!("monetlite.udf.bailed").inc();
                        deferred_disposition = Some("bailed");
                    }
                }
            }
            crate::inline::UdfPlan::Interpreted(_) => {
                obs::counter!("monetlite.udf.bailed").inc();
                deferred_disposition = Some("interpreted");
            }
        }
    }

    let result = match engine.model() {
        crate::engine::ExecutionModel::OperatorAtATime => {
            let out = udf::run_operator_at_a_time(engine, &def, &inputs)?;
            engine.append_udf_stdout(&out.stdout);
            match &out.value {
                pylite::Value::Array(_) | pylite::Value::List(_) | pylite::Value::Tuple(_) => {
                    Evaluated::Column(udf::py_to_column(&def.name, &out.value)?)
                }
                scalar => Evaluated::Scalar(udf::py_to_scalar(scalar)?),
            }
        }
        crate::engine::ExecutionModel::TupleAtATime => {
            let rows = source.map(|t| t.row_count()).unwrap_or(1);
            let (values, stdout) = udf::run_tuple_at_a_time(engine, &def, &inputs, rows)?;
            engine.append_udf_stdout(&stdout);
            let scalars: Result<Vec<SqlValue>, DbError> =
                values.iter().map(udf::py_to_scalar).collect();
            Evaluated::Column(Column::from_values(&def.name, &scalars?)?)
        }
    };
    if let Some(disposition) = deferred_disposition {
        record_udf(disposition, rows_out_of(&result));
    }
    Ok(result)
}

/// Aggregates reduce their argument column to a scalar.
fn eval_aggregate(
    engine: &Engine,
    source: Option<&Table>,
    name: &str,
    args: &[SqlExpr],
) -> Result<Evaluated, DbError> {
    let table = source
        .ok_or_else(|| DbError::exec(format!("aggregate {name}() requires a FROM clause")))?;
    // count(*) counts rows.
    if name == "count" && args.first() == Some(&SqlExpr::Star) {
        return Ok(Evaluated::Scalar(SqlValue::Int(table.row_count() as i64)));
    }
    if args.len() != 1 {
        return Err(DbError::exec(format!(
            "{name}() takes exactly one argument"
        )));
    }
    // A bare column reference folds in place; anything else materializes.
    let storage;
    let col: &Column = match &args[0] {
        SqlExpr::Column(name) => resolve_column(table, name)?,
        other => {
            storage =
                eval_expr(engine, Some(table), other)?.into_column("agg", table.row_count())?;
            &storage
        }
    };
    // Typed fast path: NULL-free numeric columns fold without boxing each
    // element into SqlValue. Semantics are bit-identical to the generic
    // loops below (same fold order, same overflow check). min/max stay
    // generic — their ordering goes through cmp_sql.
    if !col.has_nulls() && !col.is_empty() {
        use crate::types::ColumnData;
        match (&col.data, name) {
            (ColumnData::Int(_) | ColumnData::Double(_), "count") => {
                return Ok(Evaluated::Scalar(SqlValue::Int(col.len() as i64)))
            }
            (ColumnData::Int(v), "sum") => {
                let mut acc = 0i64;
                for &x in v {
                    acc = acc.checked_add(x).ok_or_else(overflow)?;
                }
                return Ok(Evaluated::Scalar(SqlValue::Int(acc)));
            }
            (ColumnData::Double(v), "sum") => {
                let mut acc = 0f64;
                for &x in v {
                    acc += x;
                }
                return Ok(Evaluated::Scalar(SqlValue::Double(acc)));
            }
            (ColumnData::Int(v), "avg") => {
                let mut acc = 0f64;
                for &x in v {
                    acc += x as f64;
                }
                return Ok(Evaluated::Scalar(SqlValue::Double(acc / v.len() as f64)));
            }
            (ColumnData::Double(v), "avg") => {
                let mut acc = 0f64;
                for &x in v {
                    acc += x;
                }
                return Ok(Evaluated::Scalar(SqlValue::Double(acc / v.len() as f64)));
            }
            _ => {}
        }
    }
    let non_null: Vec<SqlValue> = (0..col.len())
        .map(|i| col.get(i))
        .filter(|v| !v.is_null())
        .collect();
    if name == "count" {
        return Ok(Evaluated::Scalar(SqlValue::Int(non_null.len() as i64)));
    }
    if non_null.is_empty() {
        return Ok(Evaluated::Scalar(SqlValue::Null));
    }
    Ok(Evaluated::Scalar(match name {
        "sum" => {
            if non_null.iter().all(|v| matches!(v, SqlValue::Int(_))) {
                let mut acc = 0i64;
                for v in &non_null {
                    if let SqlValue::Int(i) = v {
                        acc = acc.checked_add(*i).ok_or_else(overflow)?;
                    }
                }
                SqlValue::Int(acc)
            } else {
                let mut acc = 0f64;
                for v in &non_null {
                    acc += to_f64(v)
                        .ok_or_else(|| DbError::type_err("sum() requires numeric values"))?;
                }
                SqlValue::Double(acc)
            }
        }
        "avg" => {
            let mut acc = 0f64;
            for v in &non_null {
                acc +=
                    to_f64(v).ok_or_else(|| DbError::type_err("avg() requires numeric values"))?;
            }
            SqlValue::Double(acc / non_null.len() as f64)
        }
        "min" => non_null
            .iter()
            .min_by(|a, b| cmp_sql(a, b))
            .cloned()
            .expect("non-empty"),
        "max" => non_null
            .iter()
            .max_by(|a, b| cmp_sql(a, b))
            .cloned()
            .expect("non-empty"),
        "median" => {
            let mut nums: Vec<f64> = non_null
                .iter()
                .map(|v| to_f64(v).ok_or_else(|| DbError::type_err("median() requires numbers")))
                .collect::<Result<_, _>>()?;
            nums.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
            let mid = nums.len() / 2;
            if nums.len() % 2 == 1 {
                SqlValue::Double(nums[mid])
            } else {
                SqlValue::Double((nums[mid - 1] + nums[mid]) / 2.0)
            }
        }
        _ => unreachable!("is_aggregate() gate"),
    }))
}

/// Scalar builtins evaluated rowwise. Returns Ok(None) when `name` is not a
/// builtin (the caller then tries stored UDFs).
fn eval_scalar_builtin(
    engine: &Engine,
    source: Option<&Table>,
    name: &str,
    args: &[SqlExpr],
) -> Result<Option<Evaluated>, DbError> {
    let unary =
        |f: fn(&SqlValue) -> Result<SqlValue, DbError>| -> Result<Option<Evaluated>, DbError> {
            if args.len() != 1 {
                return Err(DbError::exec(format!(
                    "{name}() takes exactly one argument"
                )));
            }
            let v = eval_expr(engine, source, &args[0])?;
            Ok(Some(map_evaluated(v, name, f)?))
        };
    match name {
        // Internal sequencing primitive used by UDF inlining: evaluate the
        // first argument only for its errors (division by zero, overflow),
        // then yield the second. Never produced by the SQL parser.
        "__seq" => {
            if args.len() != 2 {
                return Err(DbError::exec("__seq() takes exactly two arguments"));
            }
            eval_expr(engine, source, &args[0])?;
            Ok(Some(eval_expr(engine, source, &args[1])?))
        }
        "abs" => {
            if args.len() != 1 {
                return Err(DbError::exec(format!(
                    "{name}() takes exactly one argument"
                )));
            }
            let v = eval_expr(engine, source, &args[0])?;
            // Typed fast path over NULL-free numeric columns.
            if let Evaluated::Column(c) = &v {
                if !c.has_nulls() {
                    use crate::types::ColumnData;
                    match &c.data {
                        ColumnData::Int(ints) => {
                            let mut out = Vec::with_capacity(ints.len());
                            for &x in ints {
                                out.push(
                                    x.checked_abs().ok_or_else(|| {
                                        DbError::exec("integer overflow in abs()")
                                    })?,
                                );
                            }
                            return Ok(Some(Evaluated::Column(Column::new(
                                "abs",
                                ColumnData::Int(out),
                            ))));
                        }
                        ColumnData::Double(ds) => {
                            return Ok(Some(Evaluated::Column(Column::new(
                                "abs",
                                ColumnData::Double(ds.iter().map(|d| d.abs()).collect()),
                            ))));
                        }
                        _ => {}
                    }
                }
            }
            Ok(Some(map_evaluated(v, name, |v| {
                Ok(match v {
                    SqlValue::Null => SqlValue::Null,
                    SqlValue::Int(i) => SqlValue::Int(
                        i.checked_abs()
                            .ok_or_else(|| DbError::exec("integer overflow in abs()"))?,
                    ),
                    SqlValue::Double(d) => SqlValue::Double(d.abs()),
                    other => {
                        return Err(DbError::type_err(format!(
                            "abs({}) is invalid",
                            other.render()
                        )))
                    }
                })
            })?))
        }
        "length" => unary(|v| {
            Ok(match v {
                SqlValue::Null => SqlValue::Null,
                SqlValue::Str(s) => SqlValue::Int(s.chars().count() as i64),
                SqlValue::Blob(b) => SqlValue::Int(b.len() as i64),
                other => {
                    return Err(DbError::type_err(format!(
                        "length({}) is invalid",
                        other.render()
                    )))
                }
            })
        }),
        "upper" => unary(|v| {
            Ok(match v {
                SqlValue::Null => SqlValue::Null,
                SqlValue::Str(s) => SqlValue::Str(s.to_uppercase()),
                other => {
                    return Err(DbError::type_err(format!(
                        "upper({}) is invalid",
                        other.render()
                    )))
                }
            })
        }),
        "lower" => unary(|v| {
            Ok(match v {
                SqlValue::Null => SqlValue::Null,
                SqlValue::Str(s) => SqlValue::Str(s.to_lowercase()),
                other => {
                    return Err(DbError::type_err(format!(
                        "lower({}) is invalid",
                        other.render()
                    )))
                }
            })
        }),
        "sqrt" => unary(|v| {
            Ok(match v {
                SqlValue::Null => SqlValue::Null,
                other => {
                    let x = to_f64(other)
                        .ok_or_else(|| DbError::type_err("sqrt() requires a number"))?;
                    if x < 0.0 {
                        return Err(DbError::exec("sqrt() of a negative number"));
                    }
                    SqlValue::Double(x.sqrt())
                }
            })
        }),
        "floor" => unary(|v| {
            Ok(match v {
                SqlValue::Null => SqlValue::Null,
                other => SqlValue::Int(
                    to_f64(other)
                        .ok_or_else(|| DbError::type_err("floor() requires a number"))?
                        .floor() as i64,
                ),
            })
        }),
        "ceil" | "ceiling" => unary(|v| {
            Ok(match v {
                SqlValue::Null => SqlValue::Null,
                other => SqlValue::Int(
                    to_f64(other)
                        .ok_or_else(|| DbError::type_err("ceil() requires a number"))?
                        .ceil() as i64,
                ),
            })
        }),
        "round" => unary(|v| {
            Ok(match v {
                SqlValue::Null => SqlValue::Null,
                other => SqlValue::Double(
                    to_f64(other)
                        .ok_or_else(|| DbError::type_err("round() requires a number"))?
                        .round(),
                ),
            })
        }),
        _ => Ok(None),
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (single char).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn matches(t: &[char], p: &[char]) -> bool {
        match (t.first(), p.first()) {
            (_, None) => t.is_empty(),
            (_, Some('%')) => {
                // Try consuming zero or more characters.
                (0..=t.len()).any(|skip| matches(&t[skip..], &p[1..]))
            }
            (None, _) => false,
            (Some(tc), Some('_')) => {
                let _ = tc;
                matches(&t[1..], &p[1..])
            }
            (Some(tc), Some(pc)) => tc.eq_ignore_ascii_case(pc) && matches(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    matches(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_patterns() {
        assert!(like_match("mean_deviation", "mean%"));
        assert!(like_match("mean_deviation", "%deviation"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("anything", "%"));
        assert!(!like_match("short", "longer%pattern"));
        assert!(like_match("MiXeD", "mixed"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn binary_value_semantics() {
        use BinaryOp::*;
        assert_eq!(
            binary_values(Add, &SqlValue::Int(2), &SqlValue::Int(3)).unwrap(),
            SqlValue::Int(5)
        );
        assert_eq!(
            binary_values(Div, &SqlValue::Int(7), &SqlValue::Int(2)).unwrap(),
            SqlValue::Int(3)
        );
        assert_eq!(
            binary_values(Add, &SqlValue::Int(1), &SqlValue::Double(0.5)).unwrap(),
            SqlValue::Double(1.5)
        );
        assert_eq!(
            binary_values(Add, &SqlValue::Null, &SqlValue::Int(1)).unwrap(),
            SqlValue::Null
        );
        assert_eq!(
            binary_values(Eq, &SqlValue::Int(1), &SqlValue::Double(1.0)).unwrap(),
            SqlValue::Bool(true)
        );
        assert_eq!(
            binary_values(Add, &SqlValue::Str("a".into()), &SqlValue::Str("b".into())).unwrap(),
            SqlValue::Str("ab".into())
        );
        assert!(binary_values(Div, &SqlValue::Int(1), &SqlValue::Int(0)).is_err());
    }

    #[test]
    fn three_valued_logic() {
        use BinaryOp::*;
        let t = SqlValue::Bool(true);
        let f = SqlValue::Bool(false);
        let n = SqlValue::Null;
        assert_eq!(binary_values(And, &f, &n).unwrap(), SqlValue::Bool(false));
        assert_eq!(binary_values(And, &t, &n).unwrap(), SqlValue::Null);
        assert_eq!(binary_values(Or, &t, &n).unwrap(), SqlValue::Bool(true));
        assert_eq!(binary_values(Or, &f, &n).unwrap(), SqlValue::Null);
    }

    #[test]
    fn cmp_orders_nulls_first() {
        assert_eq!(
            cmp_sql(&SqlValue::Null, &SqlValue::Int(-999)),
            Ordering::Less
        );
        assert_eq!(
            cmp_sql(&SqlValue::Int(2), &SqlValue::Double(1.5)),
            Ordering::Greater
        );
        assert_eq!(
            cmp_sql(&SqlValue::Str("a".into()), &SqlValue::Str("b".into())),
            Ordering::Less
        );
    }
}
