//! Read/write classification of SQL commands.
//!
//! The wire server splits execution: read-only commands run concurrently
//! against an epoch-stamped catalog snapshot, mutating commands serialize on
//! the writer thread. The split is only sound if classification never calls
//! a mutating statement "read-only", so every rule here errs toward the
//! writer:
//!
//! * `SELECT` / `VALUES` / `EXPLAIN` are read-only **unless** they invoke a
//!   stored UDF whose body could observe or produce side effects (loopback
//!   `_conn` queries can execute DML; `os`/`pickle`/file IO touches the
//!   hosting engine's virtual filesystem, which snapshots do not carry).
//! * `EXPLAIN ANALYZE` executes its inner statement for real, so it is
//!   classified by the inner statement.
//! * Statements that fail to parse are read-only: they produce the same
//!   deterministic error on any engine and never reach the catalog.
//! * Everything else (INSERT/UPDATE/DELETE/DDL/COPY) is a write.
//!
//! A false "write" answer costs only latency (the command serializes); a
//! false "read-only" answer would corrupt the split, so the UDF purity scan
//! is a coarse substring check over the stored body rather than a precise
//! dataflow analysis.

use crate::catalog::Catalog;
use crate::engine::collect_call_names;
use crate::sql::{parse_statement, Statement};

/// Where the scheduler must run a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandClass {
    /// Safe to execute concurrently against a catalog snapshot.
    Read,
    /// Must serialize on the writer thread.
    Write,
}

/// Substrings whose presence in a UDF body forces writer classification.
/// `_conn` is the loopback connection (can execute arbitrary DML); the rest
/// reach the engine's virtual filesystem, which snapshots do not share.
const IMPURE_TOKENS: &[&str] = &["_conn", "os.", "open(", "pickle.dump", "pickle.load"];

/// Classify a SQL string against the given catalog (used for stored-UDF
/// purity lookups).
pub fn classify_sql(sql: &str, catalog: &Catalog) -> CommandClass {
    match parse_statement(sql) {
        // Parse errors are deterministic and touch nothing: any engine —
        // including a snapshot reader — produces the identical error.
        Err(_) => CommandClass::Read,
        Ok(stmt) => classify_statement(&stmt, catalog),
    }
}

/// Classify a parsed statement.
pub fn classify_statement(stmt: &Statement, catalog: &Catalog) -> CommandClass {
    classify_excluding(stmt, catalog, None)
}

/// Classify the query of an extraction request. Extraction *intercepts*
/// the target UDF — its body never executes — so only the purity of
/// *other* stored UDFs reachable from the query matters. Without this
/// carve-out, extracting an impure UDF (the common devUDF debugging case:
/// the UDF misbehaves precisely because it does IO) would needlessly
/// serialize on the writer.
pub fn classify_extract(query: &str, target_udf: &str, catalog: &Catalog) -> CommandClass {
    match parse_statement(query) {
        Err(_) => CommandClass::Read,
        Ok(stmt) => classify_excluding(&stmt, catalog, Some(target_udf)),
    }
}

fn classify_excluding(stmt: &Statement, catalog: &Catalog, exclude: Option<&str>) -> CommandClass {
    if !kind_is_read_only(stmt) {
        return CommandClass::Write;
    }
    // A read-only statement shape can still mutate through a stored UDF
    // (loopback `_conn`) or depend on engine-local filesystem state.
    let impure = collect_call_names(stmt).iter().any(|name| {
        if exclude.is_some_and(|x| name.eq_ignore_ascii_case(x)) {
            return false;
        }
        catalog
            .function(name)
            .is_some_and(|def| udf_body_is_impure(&def.body))
    });
    if impure {
        CommandClass::Write
    } else {
        CommandClass::Read
    }
}

/// Statement-shape check (ignoring UDF bodies). `EXPLAIN` only plans, so it
/// is read-only whatever it wraps; `EXPLAIN ANALYZE` executes for real and
/// inherits its inner statement's class.
fn kind_is_read_only(stmt: &Statement) -> bool {
    match stmt {
        Statement::Select(_) => true,
        Statement::Explain(_) => true,
        Statement::ExplainAnalyze(inner) => kind_is_read_only(inner),
        _ => false,
    }
}

/// Coarse purity scan of a stored UDF body.
fn udf_body_is_impure(body: &str) -> bool {
    IMPURE_TOKENS.iter().any(|t| body.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn catalog_with(udf_body: &str) -> Engine {
        let db = Engine::new();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute(&format!(
            "CREATE FUNCTION f(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {{\n{udf_body}\n}}"
        ))
        .unwrap();
        db
    }

    fn classify_on(db: &Engine, sql: &str) -> CommandClass {
        db.with_catalog(|c| classify_sql(sql, c))
    }

    #[test]
    fn plain_reads_are_reads() {
        let db = catalog_with("return i");
        for sql in [
            "SELECT i FROM t",
            "SELECT f(i) FROM t",
            "SELECT * FROM sys.functions",
            "SELECT * FROM sys.sessions",
            "EXPLAIN SELECT i FROM t",
            "EXPLAIN ANALYZE SELECT i FROM t",
        ] {
            assert_eq!(classify_on(&db, sql), CommandClass::Read, "{sql}");
        }
    }

    #[test]
    fn mutations_are_writes() {
        let db = catalog_with("return i");
        for sql in [
            "INSERT INTO t VALUES (1)",
            "UPDATE t SET i = 2",
            "DELETE FROM t",
            "CREATE TABLE u (i INTEGER)",
            "DROP TABLE t",
            "DROP FUNCTION f",
            "COPY INTO t FROM 'x.csv'",
            "EXPLAIN ANALYZE INSERT INTO t VALUES (1)",
        ] {
            assert_eq!(classify_on(&db, sql), CommandClass::Write, "{sql}");
        }
    }

    #[test]
    fn explain_of_a_write_only_plans() {
        let db = catalog_with("return i");
        assert_eq!(
            classify_on(&db, "EXPLAIN INSERT INTO t VALUES (1)"),
            CommandClass::Read
        );
    }

    #[test]
    fn loopback_udfs_route_to_the_writer() {
        let db = catalog_with("res = _conn.execute('SELECT 1')\nreturn i");
        assert_eq!(classify_on(&db, "SELECT f(i) FROM t"), CommandClass::Write);
        // Same SELECT shape without the impure UDF stays a read.
        assert_eq!(classify_on(&db, "SELECT i FROM t"), CommandClass::Read);
    }

    #[test]
    fn file_io_udfs_route_to_the_writer() {
        let db = catalog_with("import pickle\npickle.dump(i, 'out.bin')\nreturn i");
        assert_eq!(classify_on(&db, "SELECT f(i) FROM t"), CommandClass::Write);
    }

    #[test]
    fn parse_errors_are_reads() {
        let db = catalog_with("return i");
        assert_eq!(classify_on(&db, "SELEC nonsense"), CommandClass::Read);
    }

    #[test]
    fn extraction_targets_are_exempt_from_the_purity_scan() {
        // The extracted UDF is intercepted, never executed: its impure body
        // must not force the writer...
        let db = catalog_with("res = _conn.execute('SELECT 1')\nreturn i");
        let class = db.with_catalog(|c| classify_extract("SELECT f(i) FROM t", "f", c));
        assert_eq!(class, CommandClass::Read);
        // ...but another impure UDF in the same query still does.
        let class = db.with_catalog(|c| classify_extract("SELECT f(i) FROM t", "g", c));
        assert_eq!(class, CommandClass::Write);
    }

    #[test]
    fn unknown_call_names_do_not_force_writes() {
        // Builtins/aggregates are not in the catalog; they must not trip the
        // purity scan.
        let db = catalog_with("return i");
        assert_eq!(classify_on(&db, "SELECT sum(i) FROM t"), CommandClass::Read);
    }
}
