//! The database engine facade.

use std::cell::RefCell;
use std::rc::Rc;

use pylite::fs::{FsProvider, MemFs};
use pylite::value::Dict;
use pylite::Value;

use crate::catalog::{Catalog, FunctionDef, FunctionReturn};
use crate::error::{DbError, ErrorCode};
use crate::exec;
use crate::inline::{self, UdfPlan};
use crate::sql::ast::{FunctionReturnAst, Statement};
use crate::sql::parse_statement;
use crate::table::Table;
use crate::types::SqlValue;
use crate::udf::UdfInput;

/// UDF invocation model (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionModel {
    /// MonetDB style: the UDF runs once with whole columns.
    #[default]
    OperatorAtATime,
    /// Postgres/MySQL style: the UDF runs once per input row.
    TupleAtATime,
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A SELECT result.
    Table(Table),
    /// DDL/DML acknowledgement.
    Affected { rows: usize, message: String },
}

impl QueryResult {
    /// The result table, if this was a query.
    pub fn table(&self) -> Option<&Table> {
        match self {
            QueryResult::Table(t) => Some(t),
            QueryResult::Affected { .. } => None,
        }
    }

    /// Consume into a table, erroring for non-queries.
    pub fn into_table(self) -> Result<Table, DbError> {
        match self {
            QueryResult::Table(t) => Ok(t),
            QueryResult::Affected { message, .. } => Err(DbError::exec(format!(
                "statement produced no result set ({message})"
            ))),
        }
    }
}

/// Marker error message used to abort execution once extraction captured
/// the UDF inputs (never surfaces to callers).
pub(crate) const EXTRACT_SIGNAL: &str = "__devudf_extract_complete__";

struct Inner {
    catalog: Catalog,
    model: ExecutionModel,
    exec_mode: pylite::ExecMode,
    fs: Rc<dyn FsProvider>,
    rng_seed: u64,
    udf_step_budget: u64,
    /// Lower-cased UDF name whose inputs should be captured instead of
    /// executing it.
    extract_request: Option<String>,
    extracted: Option<Vec<(String, UdfInput)>>,
    /// `print` output of UDFs during the last statement.
    udf_stdout: String,
    /// Current UDF nesting depth (loopback queries re-enter the engine with
    /// a fresh interpreter, so the interpreter's own recursion guard cannot
    /// see engine-level cycles).
    udf_depth: usize,
    /// Froid-style UDF inlining toggle (`--interp=inline`, the default).
    /// When off, every UDF goes through the interpreter.
    inline: bool,
    /// Cached per-function inlining decisions, keyed by lower-cased name
    /// and validated against `Catalog::functions_epoch` so CREATE OR
    /// REPLACE / DROP invalidate them.
    plan_cache: std::collections::HashMap<String, (u64, Rc<UdfPlan>)>,
    /// Live `EXPLAIN ANALYZE` collection; `None` (the steady state) makes
    /// every executor probe a single boolean check.
    analyze: Option<AnalyzeState>,
}

/// One recorded plan operator of an `EXPLAIN ANALYZE` run.
#[derive(Debug, Clone)]
pub(crate) struct AnalyzeRow {
    /// Operator kind (`scan`, `filter`, `project`, `group`, `distinct`,
    /// `order`, `limit`, `udf`).
    pub op: &'static str,
    /// Operator-specific annotation (source name, key count, UDF
    /// disposition).
    pub detail: String,
    /// Wall-clock nanoseconds spent in the operator.
    pub ns: u64,
    pub rows_in: u64,
    pub rows_out: u64,
}

/// Rows accumulated while an `EXPLAIN ANALYZE` statement executes.
#[derive(Debug, Default)]
pub(crate) struct AnalyzeState {
    rows: Vec<AnalyzeRow>,
}

/// Operator rows kept per ANALYZE run — a loopback-recursive statement
/// must not buffer unbounded plan rows.
const ANALYZE_ROW_CAP: usize = 4096;

/// Maximum engine-level UDF nesting (loopback-driven recursion guard).
const MAX_UDF_DEPTH: usize = 12;

/// The engine. Cheap to clone (shared state); single-threaded by design —
/// the wire server owns one engine on a dedicated thread.
#[derive(Clone)]
pub struct Engine {
    inner: Rc<RefCell<Inner>>,
    /// When active, every `get_table` records the (lower-cased) table name —
    /// the dependency set behind `extract_inputs_with_deps`. Kept outside
    /// `Inner` so logging a read never contends with an engine borrow.
    read_log: Rc<RefCell<Option<std::collections::BTreeSet<String>>>>,
    /// The WAL/snapshot pair of a persistent engine ([`Engine::open`]);
    /// `None` for the usual in-memory engine. Kept outside `Inner` so a
    /// WAL append after a statement never contends with an engine borrow.
    storage: Rc<RefCell<Option<crate::storage::Storage>>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// New empty engine with an in-memory filesystem for COPY INTO / UDF IO.
    pub fn new() -> Self {
        Self::with_fs(Rc::new(MemFs::new()))
    }

    /// New engine over a caller-provided filesystem.
    pub fn with_fs(fs: Rc<dyn FsProvider>) -> Self {
        Engine {
            inner: Rc::new(RefCell::new(Inner {
                catalog: Catalog::new(),
                model: ExecutionModel::OperatorAtATime,
                exec_mode: pylite::ExecMode::default(),
                fs,
                rng_seed: 0x5eed_cafe,
                udf_step_budget: 50_000_000,
                extract_request: None,
                extracted: None,
                udf_stdout: String::new(),
                udf_depth: 0,
                inline: true,
                plan_cache: std::collections::HashMap::new(),
                analyze: None,
            })),
            read_log: Rc::new(RefCell::new(None)),
            storage: Rc::new(RefCell::new(None)),
        }
    }

    /// Open (creating if needed) a **persistent** engine on a directory
    /// with default [`StorageOptions`](crate::storage::StorageOptions): load the snapshot if one exists,
    /// replay the WAL tail, then start logging new mutations. See
    /// [`crate::storage`] for file formats and recovery rules.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Engine, DbError> {
        Self::open_with(dir, crate::storage::StorageOptions::default())
    }

    /// [`Engine::open`] with explicit fsync policy and snapshot cadence.
    pub fn open_with(
        dir: impl AsRef<std::path::Path>,
        options: crate::storage::StorageOptions,
    ) -> Result<Engine, DbError> {
        let (storage, recovery) = crate::storage::Storage::open(dir.as_ref(), options)?;
        let engine = Engine::new();
        if let Some(catalog) = recovery.catalog {
            engine.inner.borrow_mut().catalog = catalog;
        }
        // Replay runs *before* the storage handle is attached, so replayed
        // statements are never re-logged.
        for sql in &recovery.wal {
            engine
                .execute(sql)
                .map_err(|e| DbError::storage(format!("WAL replay failed for {sql:?}: {e}")))?;
        }
        *engine.storage.borrow_mut() = Some(storage);
        Ok(engine)
    }

    /// Whether this engine persists to a storage directory.
    pub fn is_persistent(&self) -> bool {
        self.storage.borrow().is_some()
    }

    /// Persistence counters of a persistent engine (`None` otherwise).
    pub fn storage_stats(&self) -> Option<crate::storage::StorageStats> {
        self.storage.borrow().as_ref().map(|s| s.stats())
    }

    /// Fold the catalog into a snapshot and truncate the WAL. Errors on an
    /// in-memory engine — checkpointing nothing is a caller bug.
    pub fn checkpoint(&self) -> Result<crate::storage::StorageStats, DbError> {
        let mut slot = self.storage.borrow_mut();
        let storage = slot.as_mut().ok_or_else(|| {
            DbError::storage("engine has no storage directory (use Engine::open)")
        })?;
        let inner = self.inner.borrow();
        storage.checkpoint(&inner.catalog)?;
        Ok(storage.stats())
    }

    /// WAL hook: called after a successful top-level statement that moved
    /// the catalog version. No-op for in-memory engines.
    fn persist(&self, sql: &str) -> Result<(), DbError> {
        let mut slot = self.storage.borrow_mut();
        let Some(storage) = slot.as_mut() else {
            return Ok(());
        };
        storage.append(sql)?;
        if storage.should_checkpoint() {
            let inner = self.inner.borrow();
            storage.checkpoint(&inner.catalog)?;
        }
        Ok(())
    }

    /// Capture an epoch-stamped, `Send + Sync` snapshot of the catalog and
    /// engine settings for concurrent readers (see [`crate::snapshot`]).
    pub fn snapshot(&self) -> crate::snapshot::EngineSnapshot {
        let inner = self.inner.borrow();
        crate::snapshot::EngineSnapshot {
            epoch: inner.catalog.version(),
            catalog: inner.catalog.clone(),
            model: inner.model,
            exec_mode: inner.exec_mode,
            rng_seed: inner.rng_seed,
            udf_step_budget: inner.udf_step_budget,
            inline: inner.inline,
        }
    }

    /// Build a private engine over a snapshot's state (reader hydration).
    pub fn from_snapshot(snap: &crate::snapshot::EngineSnapshot) -> Engine {
        let engine = Engine::new();
        {
            let mut inner = engine.inner.borrow_mut();
            inner.catalog = snap.catalog.clone();
            inner.model = snap.model;
            inner.exec_mode = snap.exec_mode;
            inner.rng_seed = snap.rng_seed;
            inner.udf_step_budget = snap.udf_step_budget;
            inner.inline = snap.inline;
        }
        engine
    }

    /// The catalog's global mutation counter (the snapshot epoch).
    pub fn catalog_version(&self) -> u64 {
        self.inner.borrow().catalog.version()
    }

    /// Run `f` with a shared borrow of the live catalog (command
    /// classification, the wire server's scheduler).
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.inner.borrow().catalog)
    }

    /// Install the live-session source backing `sys.sessions`.
    pub fn set_session_source(&self, source: crate::catalog::SessionSource) {
        self.inner.borrow_mut().catalog.set_session_source(source);
    }

    /// Switch the UDF invocation model.
    pub fn set_model(&self, model: ExecutionModel) {
        self.inner.borrow_mut().model = model;
    }

    pub fn model(&self) -> ExecutionModel {
        self.inner.borrow().model
    }

    /// Switch the pylite engine UDF bodies run on (bytecode VM vs. AST
    /// walker). The walker is kept as a differential-testing oracle.
    pub fn set_exec_mode(&self, mode: pylite::ExecMode) {
        self.inner.borrow_mut().exec_mode = mode;
    }

    pub fn exec_mode(&self) -> pylite::ExecMode {
        self.inner.borrow().exec_mode
    }

    /// Toggle Froid-style UDF inlining (on by default). Off means every
    /// call runs through the pylite interpreter configured by
    /// [`Engine::set_exec_mode`].
    pub fn set_inline(&self, enabled: bool) {
        self.inner.borrow_mut().inline = enabled;
    }

    pub fn inline_enabled(&self) -> bool {
        self.inner.borrow().inline
    }

    /// The cached inlining decision for a stored function. Plans are
    /// recomputed whenever the function catalog's epoch moves (CREATE OR
    /// REPLACE, DROP).
    pub fn udf_plan(&self, def: &FunctionDef) -> Rc<UdfPlan> {
        let key = def.name.to_ascii_lowercase();
        let epoch = self.inner.borrow().catalog.functions_epoch();
        if let Some((cached_epoch, plan)) = self.inner.borrow().plan_cache.get(&key) {
            if *cached_epoch == epoch {
                return plan.clone();
            }
        }
        let plan = Rc::new(inline::plan_udf(def));
        self.inner
            .borrow_mut()
            .plan_cache
            .insert(key, (epoch, plan.clone()));
        plan
    }

    /// Seed consumed by UDFs' `random` module and the mini-sklearn forest.
    pub fn set_rng_seed(&self, seed: u64) {
        self.inner.borrow_mut().rng_seed = seed;
    }

    pub fn rng_seed(&self) -> u64 {
        self.inner.borrow().rng_seed
    }

    /// Statement budget applied to each UDF run (infinite-loop guard).
    pub fn udf_step_budget(&self) -> u64 {
        self.inner.borrow().udf_step_budget
    }

    pub fn set_udf_step_budget(&self, budget: u64) {
        self.inner.borrow_mut().udf_step_budget = budget;
    }

    /// The filesystem visible to UDFs and COPY INTO.
    pub fn fs(&self) -> Rc<dyn FsProvider> {
        self.inner.borrow().fs.clone()
    }

    /// `print` output produced by UDFs during the last `execute` call — the
    /// paper's "print debugging" channel (§2.5 step 3).
    pub fn take_udf_stdout(&self) -> String {
        std::mem::take(&mut self.inner.borrow_mut().udf_stdout)
    }

    pub(crate) fn append_udf_stdout(&self, text: &str) {
        self.inner.borrow_mut().udf_stdout.push_str(text);
    }

    /// Enter a UDF execution; errors when loopback nesting runs away.
    pub(crate) fn enter_udf(&self) -> Result<UdfDepthGuard, DbError> {
        let mut inner = self.inner.borrow_mut();
        if inner.udf_depth >= MAX_UDF_DEPTH {
            return Err(DbError::exec(format!(
                "maximum UDF nesting depth exceeded ({MAX_UDF_DEPTH}) — loopback recursion?"
            )));
        }
        inner.udf_depth += 1;
        Ok(UdfDepthGuard {
            engine: self.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Catalog access (scoped borrows so UDF execution can re-enter)
    // ------------------------------------------------------------------

    pub fn get_table(&self, name: &str) -> Result<Table, DbError> {
        if let Some(log) = self.read_log.borrow_mut().as_mut() {
            log.insert(name.to_ascii_lowercase());
        }
        self.inner.borrow().catalog.table(name)
    }

    /// The invalidation epoch for `name` (see [`Catalog::table_epoch`]).
    pub fn table_epoch(&self, name: &str) -> Option<u64> {
        self.inner.borrow().catalog.table_epoch(name)
    }

    pub fn get_function(&self, name: &str) -> Result<Option<FunctionDef>, DbError> {
        Ok(self.inner.borrow().catalog.function(name).cloned())
    }

    pub fn function_names(&self) -> Vec<String> {
        self.inner.borrow().catalog.function_names()
    }

    pub fn table_names(&self) -> Vec<String> {
        self.inner.borrow().catalog.table_names()
    }

    /// Whether an `EXPLAIN ANALYZE` is collecting operator rows. Executor
    /// probes check this once per stage and skip all timing when false.
    pub(crate) fn analyze_active(&self) -> bool {
        self.inner.borrow().analyze.is_some()
    }

    /// Record one operator row for the live `EXPLAIN ANALYZE` (no-op when
    /// none is active; rows beyond [`ANALYZE_ROW_CAP`] are dropped).
    pub(crate) fn analyze_record(
        &self,
        op: &'static str,
        detail: String,
        ns: u64,
        rows_in: u64,
        rows_out: u64,
    ) {
        if let Some(state) = self.inner.borrow_mut().analyze.as_mut() {
            if state.rows.len() < ANALYZE_ROW_CAP {
                state.rows.push(AnalyzeRow {
                    op,
                    detail,
                    ns,
                    rows_in,
                    rows_out,
                });
            }
        }
    }

    pub(crate) fn extract_matches(&self, fn_name: &str) -> bool {
        self.inner
            .borrow()
            .extract_request
            .as_deref()
            .map(|r| r.eq_ignore_ascii_case(fn_name))
            .unwrap_or(false)
    }

    pub(crate) fn store_extracted(&self, inputs: &[(String, UdfInput)]) -> Result<(), DbError> {
        self.inner.borrow_mut().extracted = Some(inputs.to_vec());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = parse_statement(sql)?;
        obs::counter!("monet.queries.parsed").inc();
        // Logical WAL logging: record the SQL text of every successful
        // *top-level* statement that moved the catalog version. Loopback
        // statements (depth ≥ 1) are excluded — replaying the outer
        // statement re-runs the UDF and reproduces them; logging both
        // would double-apply.
        let (version_before, depth) = {
            let inner = self.inner.borrow();
            (inner.catalog.version(), inner.udf_depth)
        };
        let result = self.run(&stmt);
        if result.is_ok() {
            obs::counter!("monet.queries.executed").inc();
            if depth == 0 && self.catalog_version() != version_before {
                self.persist(sql)?;
            }
        }
        result
    }

    fn run(&self, stmt: &Statement) -> Result<QueryResult, DbError> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let table = Table::new(name.clone(), columns);
                self.inner.borrow_mut().catalog.create_table(table)?;
                Ok(QueryResult::Affected {
                    rows: 0,
                    message: format!("table '{name}' created"),
                })
            }
            Statement::DropTable { name, if_exists } => {
                self.inner
                    .borrow_mut()
                    .catalog
                    .drop_table(name, *if_exists)?;
                Ok(QueryResult::Affected {
                    rows: 0,
                    message: format!("table '{name}' dropped"),
                })
            }
            Statement::CreateFunction {
                or_replace,
                name,
                params,
                returns,
                language,
                body,
            } => {
                if language != "PYTHON" {
                    return Err(DbError::catalog(format!(
                        "unsupported UDF language '{language}' (only PYTHON)"
                    )));
                }
                // Validate that the body at least parses, so syntax errors
                // surface at CREATE time like MonetDB does.
                pylite::parse_module(&normalize_body(body)).map_err(|e| DbError {
                    code: ErrorCode::Parse,
                    message: format!("function body: {e}"),
                    traceback: Some(e.render()),
                })?;
                let def = FunctionDef {
                    name: name.clone(),
                    params: params.clone(),
                    returns: match returns {
                        FunctionReturnAst::Scalar(t) => FunctionReturn::Scalar(*t),
                        FunctionReturnAst::Table(cols) => FunctionReturn::Table(cols.clone()),
                    },
                    language: language.clone(),
                    body: normalize_body(body),
                };
                self.inner
                    .borrow_mut()
                    .catalog
                    .create_function(def, *or_replace)?;
                Ok(QueryResult::Affected {
                    rows: 0,
                    message: format!("function '{name}' created"),
                })
            }
            Statement::DropFunction { name, if_exists } => {
                self.inner
                    .borrow_mut()
                    .catalog
                    .drop_function(name, *if_exists)?;
                Ok(QueryResult::Affected {
                    rows: 0,
                    message: format!("function '{name}' dropped"),
                })
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.run_insert(table, columns.as_deref(), rows),
            Statement::Delete { table, predicate } => self.run_delete(table, predicate.as_ref()),
            Statement::Update {
                table,
                assignments,
                predicate,
            } => self.run_update(table, assignments, predicate.as_ref()),
            Statement::CopyInto {
                table,
                path,
                delimiter,
            } => self.run_copy_into(table, path, *delimiter),
            Statement::Select(sel) => {
                self.inner.borrow_mut().udf_stdout.clear();
                Ok(QueryResult::Table(exec::run_select(self, sel)?))
            }
            Statement::Explain(inner_stmt) => self.run_explain(inner_stmt),
            Statement::ExplainAnalyze(inner_stmt) => self.run_explain_analyze(inner_stmt),
        }
    }

    /// `EXPLAIN ANALYZE <stmt>`: execute the statement for real with the
    /// operator probes armed, then render the annotated plan — one row
    /// per executed operator with wall time and row counts, plus a `udf`
    /// row per stored-UDF call carrying its inlined/bailed/interpreted
    /// disposition — as the result table. The leading `query` row carries
    /// the end-to-end total, so every operator time is ≤ it.
    fn run_explain_analyze(&self, stmt: &Statement) -> Result<QueryResult, DbError> {
        if matches!(stmt, Statement::Explain(_) | Statement::ExplainAnalyze(_)) {
            return Err(DbError::parse("EXPLAIN ANALYZE cannot wrap EXPLAIN"));
        }
        {
            let mut inner = self.inner.borrow_mut();
            if inner.analyze.is_some() {
                // A loopback query inside an analyzed statement must not
                // reset the outer collection.
                return Err(DbError::exec("EXPLAIN ANALYZE cannot nest"));
            }
            inner.analyze = Some(AnalyzeState::default());
        }
        let started = std::time::Instant::now();
        let run = self.run(stmt);
        let total_ns = started.elapsed().as_nanos() as u64;
        let state = self.inner.borrow_mut().analyze.take().unwrap_or_default();
        let result = run?;
        let mut table = Table::new(
            "explain analyze".to_string(),
            &[
                ("op".to_string(), crate::types::SqlType::String),
                ("detail".to_string(), crate::types::SqlType::String),
                ("time_ns".to_string(), crate::types::SqlType::Integer),
                ("rows_in".to_string(), crate::types::SqlType::Integer),
                ("rows_out".to_string(), crate::types::SqlType::Integer),
            ],
        );
        let result_rows = match &result {
            QueryResult::Table(t) => t.row_count() as u64,
            QueryResult::Affected { rows, .. } => *rows as u64,
        };
        table.push_row(&[
            SqlValue::Str("query".to_string()),
            SqlValue::Str(statement_kind(stmt).to_string()),
            SqlValue::Int(total_ns as i64),
            SqlValue::Int(0),
            SqlValue::Int(result_rows as i64),
        ])?;
        for row in state.rows {
            table.push_row(&[
                SqlValue::Str(row.op.to_string()),
                SqlValue::Str(row.detail),
                SqlValue::Int(row.ns as i64),
                SqlValue::Int(row.rows_in as i64),
                SqlValue::Int(row.rows_out as i64),
            ])?;
        }
        Ok(QueryResult::Table(table))
    }

    /// `EXPLAIN <stmt>`: one row per stored UDF the statement references,
    /// annotated with the Inlined/Interpreted plan decision.
    fn run_explain(&self, stmt: &Statement) -> Result<QueryResult, DbError> {
        let mut table = Table::new(
            "explain".to_string(),
            &[
                ("object".to_string(), crate::types::SqlType::String),
                ("plan".to_string(), crate::types::SqlType::String),
            ],
        );
        table.push_row(&[
            SqlValue::Str("statement".to_string()),
            SqlValue::Str(statement_kind(stmt).to_string()),
        ])?;
        let inline_on = self.inline_enabled();
        let mut seen = std::collections::BTreeSet::new();
        for name in collect_call_names(stmt) {
            let Some(def) = self.get_function(&name)? else {
                continue;
            };
            if !seen.insert(def.name.to_ascii_lowercase()) {
                continue;
            }
            let decision = if inline_on {
                self.udf_plan(&def).describe()
            } else {
                "interpreted (bail: disabled)".to_string()
            };
            table.push_row(&[
                SqlValue::Str(format!("udf {}", def.name)),
                SqlValue::Str(decision),
            ])?;
        }
        Ok(QueryResult::Table(table))
    }

    fn run_insert(
        &self,
        table_name: &str,
        columns: Option<&[String]>,
        rows: &[Vec<crate::sql::ast::SqlExpr>],
    ) -> Result<QueryResult, DbError> {
        // Evaluate row expressions first (no source table).
        let mut evaluated: Vec<Vec<SqlValue>> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut out = Vec::with_capacity(row.len());
            for e in row {
                match exec::eval::eval_expr(self, None, e)? {
                    exec::Evaluated::Scalar(s) => out.push(s),
                    exec::Evaluated::Column(_) => {
                        return Err(DbError::exec("INSERT values must be scalars"))
                    }
                }
            }
            evaluated.push(out);
        }
        let mut inner = self.inner.borrow_mut();
        let table = inner.catalog.table_mut(table_name)?;
        let count = evaluated.len();
        match columns {
            None => {
                for row in &evaluated {
                    table.push_row(row)?;
                }
            }
            Some(cols) => {
                // Reorder values to the table's column order; unnamed
                // columns get NULL.
                let idx: Vec<usize> = cols
                    .iter()
                    .map(|c| {
                        table.column_index(c).ok_or_else(|| {
                            DbError::catalog(format!("no such column '{c}' in '{table_name}'"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                for row in &evaluated {
                    if row.len() != idx.len() {
                        return Err(DbError::exec("INSERT value count mismatch"));
                    }
                    let mut full = vec![SqlValue::Null; table.column_count()];
                    for (value, &slot) in row.iter().zip(&idx) {
                        full[slot] = value.clone();
                    }
                    table.push_row(&full)?;
                }
            }
        }
        Ok(QueryResult::Affected {
            rows: count,
            message: format!("{count} row(s) inserted"),
        })
    }

    fn run_delete(
        &self,
        table_name: &str,
        predicate: Option<&crate::sql::ast::SqlExpr>,
    ) -> Result<QueryResult, DbError> {
        let table = self.get_table(table_name)?;
        let keep: Vec<bool> = match predicate {
            None => vec![false; table.row_count()],
            Some(p) => exec::eval::predicate_mask(self, &table, p)?
                .into_iter()
                .map(|m| !m)
                .collect(),
        };
        let removed = keep.iter().filter(|k| !**k).count();
        let filtered = table.filter(&keep);
        let mut inner = self.inner.borrow_mut();
        *inner.catalog.table_mut(table_name)? = filtered;
        Ok(QueryResult::Affected {
            rows: removed,
            message: format!("{removed} row(s) deleted"),
        })
    }

    fn run_update(
        &self,
        table_name: &str,
        assignments: &[(String, crate::sql::ast::SqlExpr)],
        predicate: Option<&crate::sql::ast::SqlExpr>,
    ) -> Result<QueryResult, DbError> {
        let table = self.get_table(table_name)?;
        let mask = match predicate {
            None => vec![true; table.row_count()],
            Some(p) => exec::eval::predicate_mask(self, &table, p)?,
        };
        // Evaluate each assignment columnar against the full table.
        let mut new_columns = (*table.columns).clone();
        for (col_name, expr) in assignments {
            let idx = table
                .column_index(col_name)
                .ok_or_else(|| DbError::catalog(format!("no such column '{col_name}'")))?;
            let evaluated = exec::eval::eval_expr(self, Some(&table), expr)?;
            let target_type = table.columns[idx].sql_type();
            let mut rebuilt = crate::types::Column::empty(col_name.clone(), target_type);
            for (row, selected) in mask.iter().enumerate() {
                let v = if *selected {
                    match &evaluated {
                        exec::Evaluated::Scalar(s) => s.clone(),
                        exec::Evaluated::Column(c) => c.get(row),
                    }
                } else {
                    table.columns[idx].get(row)
                };
                rebuilt.push(&v)?;
            }
            new_columns[idx] = rebuilt;
        }
        let updated = mask.iter().filter(|m| **m).count();
        let mut inner = self.inner.borrow_mut();
        let slot = inner.catalog.table_mut(table_name)?;
        slot.set_columns(new_columns);
        Ok(QueryResult::Affected {
            rows: updated,
            message: format!("{updated} row(s) updated"),
        })
    }

    /// CSV ingestion (`COPY INTO t FROM 'path'`), reading from the engine fs.
    fn run_copy_into(
        &self,
        table_name: &str,
        path: &str,
        delimiter: char,
    ) -> Result<QueryResult, DbError> {
        let data = self
            .fs()
            .read(path)
            .map_err(|e| DbError::load(format!("COPY INTO: {e}")))?;
        let text = String::from_utf8(data)
            .map_err(|_| DbError::load("COPY INTO: file is not valid UTF-8"))?;
        let mut inner = self.inner.borrow_mut();
        let table = inner.catalog.table_mut(table_name)?;
        let mut count = 0usize;
        for (line_no, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(delimiter).collect();
            if fields.len() != table.column_count() {
                return Err(DbError::load(format!(
                    "COPY INTO: line {} has {} fields, table '{}' has {} columns",
                    line_no + 1,
                    fields.len(),
                    table_name,
                    table.column_count()
                )));
            }
            let row: Vec<SqlValue> = fields
                .iter()
                .map(|f| {
                    let t = f.trim();
                    if t.is_empty() || t.eq_ignore_ascii_case("null") {
                        SqlValue::Null
                    } else {
                        SqlValue::Str(t.to_string())
                    }
                })
                .collect();
            table.push_row(&row)?;
            count += 1;
        }
        Ok(QueryResult::Affected {
            rows: count,
            message: format!("{count} row(s) loaded from '{path}'"),
        })
    }

    // ------------------------------------------------------------------
    // Input extraction (the paper's predefined extract function, §2.2)
    // ------------------------------------------------------------------

    /// Evaluate `query` but *intercept* the call to `udf_name`: instead of
    /// executing the UDF, capture its input columns/scalars and return them
    /// as a dict value `{param_name: column-or-scalar}` ready for pickling
    /// into `input.bin`.
    pub fn extract_inputs(&self, query: &str, udf_name: &str) -> Result<Value, DbError> {
        {
            let mut inner = self.inner.borrow_mut();
            inner.extract_request = Some(udf_name.to_string());
            inner.extracted = None;
        }
        let run = self.execute(query);
        let captured = {
            let mut inner = self.inner.borrow_mut();
            inner.extract_request = None;
            inner.extracted.take()
        };
        match run {
            Err(e) if e.message == EXTRACT_SIGNAL => {
                let inputs = captured
                    .ok_or_else(|| DbError::exec("extraction signal without captured inputs"))?;
                let mut dict = Dict::new();
                for (name, input) in &inputs {
                    dict.insert(Value::str(name.clone()), input.to_py()?)
                        .map_err(|e| DbError::udf(&e))?;
                }
                Ok(Value::dict(dict))
            }
            Err(e) => Err(e),
            Ok(_) => Err(DbError::exec(format!(
                "query does not invoke UDF '{udf_name}'"
            ))),
        }
    }

    /// [`Engine::extract_inputs`] plus the extraction's dependency set: the
    /// `(table name, epoch)` pairs the delta cache must match for the result
    /// to still be valid. The UDF's own definition is always a dependency
    /// (reported as `sys.functions` at the function-catalog epoch).
    ///
    /// If the query read anything without a stable epoch (a volatile view
    /// such as `sys.metrics`, or a table dropped mid-query), the dependency
    /// set comes back **empty**, which callers must treat as "never provably
    /// unchanged" — the conservative answer, never the stale one.
    pub fn extract_inputs_with_deps(
        &self,
        query: &str,
        udf_name: &str,
    ) -> Result<(Value, Vec<(String, u64)>), DbError> {
        *self.read_log.borrow_mut() = Some(std::collections::BTreeSet::new());
        let result = self.extract_inputs(query, udf_name);
        let reads = self.read_log.borrow_mut().take().unwrap_or_default();
        let value = result?;
        let inner = self.inner.borrow();
        let mut deps = std::collections::BTreeMap::new();
        deps.insert("sys.functions".to_string(), inner.catalog.functions_epoch());
        for name in reads {
            match inner.catalog.table_epoch(&name) {
                Some(epoch) => {
                    deps.insert(name, epoch);
                }
                None => return Ok((value, Vec::new())),
            }
        }
        Ok((value, deps.into_iter().collect()))
    }
}

/// RAII guard decrementing the engine's UDF nesting depth.
pub(crate) struct UdfDepthGuard {
    engine: Engine,
}

impl Drop for UdfDepthGuard {
    fn drop(&mut self) {
        let mut inner = self.engine.inner.borrow_mut();
        inner.udf_depth = inner.udf_depth.saturating_sub(1);
    }
}

/// Human-readable statement kind (shared by EXPLAIN and EXPLAIN ANALYZE).
fn statement_kind(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::Select(_) => "SELECT",
        Statement::Insert { .. } => "INSERT",
        Statement::Update { .. } => "UPDATE",
        Statement::Delete { .. } => "DELETE",
        Statement::Explain(_) | Statement::ExplainAnalyze(_) => "EXPLAIN",
        Statement::CreateTable { .. } | Statement::DropTable { .. } => "DDL",
        Statement::CreateFunction { .. } | Statement::DropFunction { .. } => "DDL",
        Statement::CopyInto { .. } => "COPY",
    }
}

/// Collect every function-call name appearing in a statement (EXPLAIN uses
/// this to look up stored UDFs; builtin/aggregate names are filtered out by
/// the catalog lookup).
pub(crate) fn collect_call_names(stmt: &Statement) -> Vec<String> {
    use crate::sql::ast::{FromClause, SelectItem, SelectStmt, SqlExpr, TableFuncArg};

    fn from_expr(e: &SqlExpr, out: &mut Vec<String>) {
        match e {
            SqlExpr::Literal(_) | SqlExpr::Column(_) | SqlExpr::Star => {}
            SqlExpr::Unary { expr, .. } => from_expr(expr, out),
            SqlExpr::Binary { left, right, .. } => {
                from_expr(left, out);
                from_expr(right, out);
            }
            SqlExpr::Call { name, args } => {
                out.push(name.clone());
                for a in args {
                    from_expr(a, out);
                }
            }
            SqlExpr::Cast { expr, .. } => from_expr(expr, out),
            SqlExpr::IsNull { expr, .. } => from_expr(expr, out),
            SqlExpr::Like { expr, pattern, .. } => {
                from_expr(expr, out);
                from_expr(pattern, out);
            }
            SqlExpr::InList { expr, list, .. } => {
                from_expr(expr, out);
                for e in list {
                    from_expr(e, out);
                }
            }
            SqlExpr::Case { branches, else_ } => {
                for (c, v) in branches {
                    from_expr(c, out);
                    from_expr(v, out);
                }
                from_expr(else_, out);
            }
        }
    }

    fn from_from(f: &FromClause, out: &mut Vec<String>) {
        match f {
            FromClause::Table(_) => {}
            FromClause::TableFunction { name, args } => {
                out.push(name.clone());
                for a in args {
                    match a {
                        TableFuncArg::Query(q) => from_select(q, out),
                        TableFuncArg::Expr(e) => from_expr(e, out),
                    }
                }
            }
            FromClause::Subquery(q) => from_select(q, out),
            FromClause::Join {
                left, right, on, ..
            } => {
                from_from(left, out);
                from_from(right, out);
                from_expr(on, out);
            }
        }
    }

    fn from_select(sel: &SelectStmt, out: &mut Vec<String>) {
        for item in &sel.items {
            if let SelectItem::Expr { expr, .. } = item {
                from_expr(expr, out);
            }
        }
        if let Some(f) = &sel.from {
            from_from(f, out);
        }
        if let Some(p) = &sel.predicate {
            from_expr(p, out);
        }
        for g in &sel.group_by {
            from_expr(g, out);
        }
        if let Some(h) = &sel.having {
            from_expr(h, out);
        }
        for (o, _) in &sel.order_by {
            from_expr(o, out);
        }
    }

    let mut out = Vec::new();
    match stmt {
        Statement::Select(sel) => from_select(sel, &mut out),
        Statement::Insert { rows, .. } => {
            for row in rows {
                for e in row {
                    from_expr(e, &mut out);
                }
            }
        }
        Statement::Update {
            assignments,
            predicate,
            ..
        } => {
            for (_, e) in assignments {
                from_expr(e, &mut out);
            }
            if let Some(p) = predicate {
                from_expr(p, &mut out);
            }
        }
        Statement::Delete {
            predicate: Some(p), ..
        } => from_expr(p, &mut out),
        Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => {
            out.extend(collect_call_names(inner))
        }
        _ => {}
    }
    out
}

/// Normalize a stored function body: strip a uniform leading indent and
/// surrounding blank lines so line numbers are stable and the body parses
/// regardless of how the CREATE FUNCTION statement was indented.
pub fn normalize_body(body: &str) -> String {
    let lines: Vec<&str> = body.lines().collect();
    // Trim leading/trailing blank lines.
    let first = lines.iter().position(|l| !l.trim().is_empty());
    let last = lines.iter().rposition(|l| !l.trim().is_empty());
    let (Some(first), Some(last)) = (first, last) else {
        return String::new();
    };
    let content = &lines[first..=last];
    let indent = content
        .iter()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.len() - l.trim_start().len())
        .min()
        .unwrap_or(0);
    let mut out = String::new();
    for line in content {
        if line.len() >= indent {
            out.push_str(&line[indent..]);
        } else {
            out.push_str(line.trim_start());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_numbers() -> Engine {
        let db = Engine::new();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5)")
            .unwrap();
        db
    }

    #[test]
    fn create_insert_select() {
        let db = engine_with_numbers();
        let r = db.execute("SELECT i FROM t WHERE i > 2").unwrap();
        let t = r.into_table().unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column(0).unwrap().get(0), SqlValue::Int(3));
    }

    #[test]
    fn expressions_and_aliases() {
        let db = engine_with_numbers();
        let t = db
            .execute("SELECT i * 2 AS doubled, i + 0.5 FROM t WHERE i <= 2")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.columns[0].name, "doubled");
        assert_eq!(t.column(0).unwrap().get(1), SqlValue::Int(4));
        assert_eq!(t.column(1).unwrap().get(0), SqlValue::Double(1.5));
    }

    #[test]
    fn aggregates() {
        let db = engine_with_numbers();
        let t = db
            .execute("SELECT count(*), sum(i), avg(i), min(i), max(i), median(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.row(0)[0], SqlValue::Int(5));
        assert_eq!(t.row(0)[1], SqlValue::Int(15));
        assert_eq!(t.row(0)[2], SqlValue::Double(3.0));
        assert_eq!(t.row(0)[3], SqlValue::Int(1));
        assert_eq!(t.row(0)[4], SqlValue::Int(5));
        assert_eq!(t.row(0)[5], SqlValue::Double(3.0));
    }

    #[test]
    fn group_by() {
        let db = Engine::new();
        db.execute("CREATE TABLE s (g STRING, v INTEGER)").unwrap();
        db.execute("INSERT INTO s VALUES ('a', 1), ('b', 10), ('a', 2), ('b', 20)")
            .unwrap();
        let t = db
            .execute("SELECT g, sum(v) AS total FROM s GROUP BY g ORDER BY g")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(0), vec![SqlValue::Str("a".into()), SqlValue::Int(3)]);
        assert_eq!(t.row(1), vec![SqlValue::Str("b".into()), SqlValue::Int(30)]);
    }

    #[test]
    fn order_by_and_limit() {
        let db = engine_with_numbers();
        let t = db
            .execute("SELECT i FROM t ORDER BY i DESC LIMIT 2")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(
            t.rows(),
            vec![vec![SqlValue::Int(5)], vec![SqlValue::Int(4)]]
        );
    }

    #[test]
    fn select_without_from() {
        let db = Engine::new();
        let t = db
            .execute("SELECT 1 + 1, 'hi'")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.row(0)[0], SqlValue::Int(2));
    }

    #[test]
    fn delete_and_update() {
        let db = engine_with_numbers();
        db.execute("DELETE FROM t WHERE i > 3").unwrap();
        let t = db
            .execute("SELECT count(*) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Int(3));
        db.execute("UPDATE t SET i = i * 10 WHERE i >= 2").unwrap();
        let t = db
            .execute("SELECT sum(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Int(51)); // 1 + 20 + 30
    }

    #[test]
    fn scalar_python_udf_operator_at_a_time() {
        let db = engine_with_numbers();
        db.execute(
            "CREATE FUNCTION triple(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 3 }",
        )
        .unwrap();
        let t = db
            .execute("SELECT triple(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.column(0).unwrap().get(4), SqlValue::Int(15));
    }

    #[test]
    fn scalar_udf_reducing_column_yields_one_row() {
        let db = engine_with_numbers();
        db.execute(
            "CREATE FUNCTION colsum(i INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return sum(i) / 1.0 }",
        )
        .unwrap();
        let t = db
            .execute("SELECT colsum(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.row(0)[0], SqlValue::Double(15.0));
    }

    #[test]
    fn tuple_at_a_time_model() {
        let db = engine_with_numbers();
        db.set_model(ExecutionModel::TupleAtATime);
        db.execute(
            "CREATE FUNCTION inc(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i + 1 }",
        )
        .unwrap();
        let t = db
            .execute("SELECT inc(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.column(0).unwrap().get(0), SqlValue::Int(2));
    }

    #[test]
    fn udf_error_carries_traceback_line() {
        let db = engine_with_numbers();
        db.execute(
            "CREATE FUNCTION bad(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nx = 1\nreturn x / 0\n}",
        )
        .unwrap();
        let err = db.execute("SELECT bad(i) FROM t").unwrap_err();
        assert_eq!(err.code, ErrorCode::Udf);
        assert!(err.traceback.unwrap().contains("line 2"));
    }

    #[test]
    fn udf_syntax_error_rejected_at_create_time() {
        let db = Engine::new();
        let err = db
            .execute(
                "CREATE FUNCTION oops(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return ((( }",
            )
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Parse);
    }

    #[test]
    fn meta_tables_queryable() {
        let db = Engine::new();
        db.execute("CREATE FUNCTION f1(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i }")
            .unwrap();
        let t = db
            .execute("SELECT name, func FROM sys.functions WHERE language = 'PYTHON'")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 1);
        let t = db
            .execute("SELECT name FROM sys.args WHERE function = 'f1' ORDER BY position")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Str("i".into()));
    }

    #[test]
    fn table_function_with_subquery_args() {
        let db = Engine::new();
        db.execute("CREATE TABLE pairs (a INTEGER, b INTEGER)")
            .unwrap();
        db.execute("INSERT INTO pairs VALUES (1, 10), (2, 20)")
            .unwrap();
        db.execute(
            "CREATE FUNCTION addtab(a INTEGER, b INTEGER, k INTEGER) RETURNS TABLE(s INTEGER) LANGUAGE PYTHON { return {'s': a + b + k} }",
        )
        .unwrap();
        let t = db
            .execute("SELECT * FROM addtab((SELECT a, b FROM pairs), 100)")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column(0).unwrap().get(1), SqlValue::Int(122));
    }

    #[test]
    fn loopback_query_from_udf() {
        let db = engine_with_numbers();
        db.execute(
            "CREATE FUNCTION via_loopback() RETURNS INTEGER LANGUAGE PYTHON {\nres = _conn.execute('SELECT sum(i) FROM t')\nreturn res['sum']\n}",
        )
        .unwrap();
        let t = db
            .execute("SELECT via_loopback()")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Int(15));
    }

    #[test]
    fn copy_into_loads_csv() {
        let fs = Rc::new(MemFs::with_files(&[("data.csv", "1,x\n2,y\n3,z\n")]));
        let db = Engine::with_fs(fs);
        db.execute("CREATE TABLE c (i INTEGER, s STRING)").unwrap();
        let r = db.execute("COPY INTO c FROM 'data.csv'").unwrap();
        assert!(matches!(r, QueryResult::Affected { rows: 3, .. }));
        let t = db
            .execute("SELECT sum(i) FROM c")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Int(6));
    }

    #[test]
    fn copy_into_field_count_mismatch() {
        let fs = Rc::new(MemFs::with_files(&[("bad.csv", "1,2\n")]));
        let db = Engine::with_fs(fs);
        db.execute("CREATE TABLE c (i INTEGER)").unwrap();
        let err = db.execute("COPY INTO c FROM 'bad.csv'").unwrap_err();
        assert_eq!(err.code, ErrorCode::Load);
    }

    #[test]
    fn extract_inputs_captures_udf_arguments() {
        let db = engine_with_numbers();
        db.execute(
            "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return 0.0 }",
        )
        .unwrap();
        let v = db
            .extract_inputs("SELECT mean_deviation(i) FROM t", "mean_deviation")
            .unwrap();
        let Value::Dict(d) = v else {
            panic!("expected dict")
        };
        let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
        match col {
            Value::Array(a) => assert_eq!(a.len(), 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extract_inputs_without_udf_call_errors() {
        let db = engine_with_numbers();
        db.execute("CREATE FUNCTION f(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i }")
            .unwrap();
        let err = db.extract_inputs("SELECT i FROM t", "f").unwrap_err();
        assert!(err.message.contains("does not invoke"));
        // Engine still works afterwards.
        assert!(db.execute("SELECT f(i) FROM t").is_ok());
    }

    #[test]
    fn extract_inputs_for_table_function() {
        let db = Engine::new();
        db.execute("CREATE TABLE train (data INTEGER, labels INTEGER)")
            .unwrap();
        db.execute("INSERT INTO train VALUES (1, 0), (2, 1)")
            .unwrap();
        db.execute(
            "CREATE FUNCTION train_rf(data INTEGER, labels INTEGER, n INTEGER) RETURNS TABLE(m BLOB) LANGUAGE PYTHON { return {'m': pickle.dumps(1)} }",
        )
        .unwrap();
        let v = db
            .extract_inputs(
                "SELECT * FROM train_rf((SELECT data, labels FROM train), 10)",
                "train_rf",
            )
            .unwrap();
        let Value::Dict(d) = v else { panic!() };
        let d = d.borrow();
        assert!(matches!(
            d.get(&Value::str("n")).unwrap().unwrap(),
            Value::Int(10)
        ));
        assert!(matches!(
            d.get(&Value::str("data")).unwrap().unwrap(),
            Value::Array(_)
        ));
    }

    #[test]
    fn extract_with_deps_reports_read_tables_and_function_epoch() {
        let db = engine_with_numbers();
        db.execute(
            "CREATE FUNCTION md(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return 0.0 }",
        )
        .unwrap();
        let (_, deps) = db
            .extract_inputs_with_deps("SELECT md(i) FROM t", "md")
            .unwrap();
        let names: Vec<&str> = deps.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"t"), "deps {names:?} must include 't'");
        assert!(names.contains(&"sys.functions"));
        // The reported epochs match the live catalog, so an unchanged
        // database re-validates exactly.
        for (name, epoch) in &deps {
            assert_eq!(db.table_epoch(name), Some(*epoch));
        }
        // A mutation invalidates: the epoch moves past the recorded one.
        db.execute("INSERT INTO t VALUES (6)").unwrap();
        let recorded = deps.iter().find(|(n, _)| n == "t").unwrap().1;
        assert!(db.table_epoch("t").unwrap() > recorded);
    }

    #[test]
    fn extract_with_deps_over_volatile_view_reports_no_deps() {
        let db = Engine::new();
        db.execute(
            "CREATE FUNCTION probe(value INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return 0 }",
        )
        .unwrap();
        let (_, deps) = db
            .extract_inputs_with_deps("SELECT probe(value) FROM sys.metrics", "probe")
            .unwrap();
        assert!(
            deps.is_empty(),
            "volatile reads must yield an empty (never-valid) dep set, got {deps:?}"
        );
    }

    #[test]
    fn udf_print_output_captured() {
        let db = engine_with_numbers();
        db.execute(
            "CREATE FUNCTION noisy(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nprint('seen', len(i))\nreturn i\n}",
        )
        .unwrap();
        db.execute("SELECT noisy(i) FROM t").unwrap();
        assert_eq!(db.take_udf_stdout(), "seen 5\n");
    }

    #[test]
    fn normalize_body_strips_uniform_indent() {
        let body = "\n    x = 1\n    if x:\n        y = 2\n";
        assert_eq!(normalize_body(body), "x = 1\nif x:\n    y = 2\n");
        assert_eq!(normalize_body("  \n \n"), "");
    }

    #[test]
    fn between_and_cast_evaluate() {
        let db = engine_with_numbers();
        let t = db
            .execute("SELECT count(*) FROM t WHERE i BETWEEN 2 AND 4")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Int(3));
        let t = db
            .execute("SELECT CAST(i AS DOUBLE), CAST(i AS STRING) FROM t WHERE i = 2")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Double(2.0));
        assert_eq!(t.row(0)[1], SqlValue::Str("2".into()));
        let t = db
            .execute("SELECT count(*) FROM t WHERE i NOT BETWEEN 2 AND 4")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Int(2));
    }

    #[test]
    fn like_filter_on_meta_tables() {
        let db = Engine::new();
        for name in ["mean_deviation", "load_numbers", "mean_abs"] {
            db.execute(&format!(
                "CREATE FUNCTION {name}(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {{ return i }}"
            ))
            .unwrap();
        }
        let t = db
            .execute("SELECT name FROM sys.functions WHERE name LIKE 'mean%' ORDER BY name")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(0)[0], SqlValue::Str("mean_abs".into()));
    }

    /// Extract a named Int column from an EXPLAIN ANALYZE result.
    fn analyze_ints(t: &Table, col: &str) -> Vec<i64> {
        (0..t.row_count())
            .map(|i| match t.column_by_name(col).unwrap().get(i) {
                SqlValue::Int(v) => v,
                other => panic!("{col}: {other:?}"),
            })
            .collect()
    }

    fn analyze_strs(t: &Table, col: &str) -> Vec<String> {
        (0..t.row_count())
            .map(|i| match t.column_by_name(col).unwrap().get(i) {
                SqlValue::Str(v) => v,
                other => panic!("{col}: {other:?}"),
            })
            .collect()
    }

    #[test]
    fn explain_analyze_reports_operators_within_the_total() {
        let db = engine_with_numbers();
        let t = db
            .execute("EXPLAIN ANALYZE SELECT DISTINCT i FROM t WHERE i > 1 ORDER BY i LIMIT 3")
            .unwrap()
            .into_table()
            .unwrap();
        let ops = analyze_strs(&t, "op");
        assert_eq!(ops[0], "query");
        for expected in ["scan", "filter", "project", "distinct", "order", "limit"] {
            assert!(
                ops.contains(&expected.to_string()),
                "missing {expected} in {ops:?}"
            );
        }
        let times = analyze_ints(&t, "time_ns");
        let total = times[0];
        assert!(total > 0, "total time must be non-zero");
        for (op, ns) in ops.iter().zip(&times).skip(1) {
            assert!(*ns <= total, "{op} time {ns} exceeds total {total}");
        }
        // The query row reports the real result's row count: 2,3,4.
        assert_eq!(analyze_ints(&t, "rows_out")[0], 3);
        // The filter row saw 5 rows and kept 4.
        let fi = ops.iter().position(|o| o == "filter").unwrap();
        assert_eq!(analyze_ints(&t, "rows_in")[fi], 5);
        assert_eq!(analyze_ints(&t, "rows_out")[fi], 4);
    }

    #[test]
    fn explain_analyze_udf_rows_agree_with_the_inline_counters() {
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        let db = engine_with_numbers();
        db.execute(
            "CREATE FUNCTION straight(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
        )
        .unwrap();
        db.execute(
            "CREATE FUNCTION loopy(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\ns = 0\nfor v in i:\n    s = s + v\nreturn s\n}",
        )
        .unwrap();
        let inlined_before = obs::counter!("monetlite.udf.inlined").get();
        let bailed_before = obs::counter!("monetlite.udf.bailed").get();
        let t = db
            .execute("EXPLAIN ANALYZE SELECT straight(i), loopy(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        let inlined_delta = obs::counter!("monetlite.udf.inlined").get() - inlined_before;
        let bailed_delta = obs::counter!("monetlite.udf.bailed").get() - bailed_before;
        let ops = analyze_strs(&t, "op");
        let details = analyze_strs(&t, "detail");
        let udf_rows: Vec<&String> = ops
            .iter()
            .zip(&details)
            .filter(|(op, _)| op.as_str() == "udf")
            .map(|(_, d)| d)
            .collect();
        let inlined_rows = udf_rows.iter().filter(|d| d.ends_with(" inlined")).count() as u64;
        let fallback_rows = udf_rows
            .iter()
            .filter(|d| d.ends_with(" bailed") || d.ends_with(" interpreted"))
            .count() as u64;
        assert_eq!(inlined_rows, inlined_delta);
        assert_eq!(fallback_rows, bailed_delta);
        assert!(
            udf_rows.iter().any(|d| d.as_str() == "straight inlined"),
            "{udf_rows:?}"
        );
        assert!(
            udf_rows.iter().any(|d| d.as_str() == "loopy interpreted"),
            "{udf_rows:?}"
        );
    }

    #[test]
    fn explain_analyze_rejects_wrapping_explain() {
        let db = engine_with_numbers();
        let err = db
            .execute("EXPLAIN ANALYZE EXPLAIN SELECT i FROM t")
            .unwrap_err();
        assert!(err.to_string().contains("cannot wrap EXPLAIN"), "{err}");
    }
}
