//! Property-based tests for the interpreter's core invariants.

use proptest::prelude::*;
use pylite::{pickle, Array, Interp, Value};

/// Strategy producing arbitrary picklable values up to a small depth.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::None),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_filter("NaN breaks py_eq", |f| !f.is_nan()).prop_map(Value::Float),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::str),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::bytes),
        proptest::collection::vec(any::<i64>(), 0..32).prop_map(|v| Value::array(Array::Int(v))),
        proptest::collection::vec(any::<bool>(), 0..32).prop_map(|v| Value::array(Array::Bool(v))),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..8).prop_map(Value::list),
            proptest::collection::vec(inner.clone(), 0..8).prop_map(Value::tuple),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pickle_round_trip(v in value_strategy()) {
        let blob = pickle::dumps(&v).unwrap();
        let back = pickle::loads(&blob).unwrap();
        prop_assert!(back.py_eq(&v), "{:?} != {:?}", back, v);
    }

    #[test]
    fn pickle_loads_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = pickle::loads(&data);
    }

    #[test]
    fn parser_never_panics(src in "[a-z0-9 +\\-*/()\\[\\]{}:,.'\"=<>\n]{0,200}") {
        let _ = pylite::parse_module(&src);
    }

    #[test]
    fn int_arithmetic_matches_rust(a in -10_000i64..10_000, b in 1i64..1000) {
        let mut interp = Interp::new();
        interp.set_global("a", Value::Int(a));
        interp.set_global("b", Value::Int(b));
        interp.eval_module("s = a + b\nd = a - b\nm = a * b\nq = a // b\nr = a % b\n").unwrap();
        prop_assert_eq!(interp.get_global("s").unwrap(), Value::Int(a + b));
        prop_assert_eq!(interp.get_global("d").unwrap(), Value::Int(a - b));
        prop_assert_eq!(interp.get_global("m").unwrap(), Value::Int(a * b));
        prop_assert_eq!(interp.get_global("q").unwrap(), Value::Int(a.div_euclid(b)));
        prop_assert_eq!(interp.get_global("r").unwrap(), Value::Int(a.rem_euclid(b)));
    }

    #[test]
    fn sum_over_array_matches_rust(v in proptest::collection::vec(-1000i64..1000, 0..100)) {
        let mut interp = Interp::new();
        let expected: i64 = v.iter().sum();
        interp.set_global("col", Value::array(Array::Int(v)));
        interp.eval_module("total = sum(col)\n").unwrap();
        prop_assert_eq!(interp.get_global("total").unwrap(), Value::Int(expected));
    }

    #[test]
    fn sorted_output_is_sorted_permutation(v in proptest::collection::vec(-1000i64..1000, 0..50)) {
        let mut interp = Interp::new();
        interp.set_global("v", Value::list(v.iter().map(|&x| Value::Int(x)).collect()));
        interp.eval_module("s = sorted(v)\n").unwrap();
        let Value::List(s) = interp.get_global("s").unwrap() else { panic!() };
        let got: Vec<i64> = s.borrow().iter().map(|x| match x { Value::Int(i) => *i, _ => panic!() }).collect();
        let mut expected = v.clone();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn interpreter_mean_deviation_matches_rust(v in proptest::collection::vec(-100i64..100, 1..60)) {
        // The *correct* mean-deviation UDF (Scenario A, fixed) must agree
        // with a Rust reference implementation.
        let src = "\
def mean_deviation(column):
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += abs(column[i] - mean)
    return distance / len(column)
result = mean_deviation(col)
";
        let mut interp = Interp::new();
        interp.set_global("col", Value::array(Array::Int(v.clone())));
        interp.eval_module(src).unwrap();
        let mean = v.iter().sum::<i64>() as f64 / v.len() as f64;
        let expected = v.iter().map(|&x| (x as f64 - mean).abs()).sum::<f64>() / v.len() as f64;
        match interp.get_global("result").unwrap() {
            Value::Float(f) => prop_assert!((f - expected).abs() < 1e-9, "{f} vs {expected}"),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}
