//! Property-based tests for the interpreter's core invariants
//! (devharness::prop).

use devharness::prop::{self, Config, Strategy};
use devharness::Rng;
use devharness::{prop_assert, prop_assert_eq};
use pylite::{pickle, Array, Interp, Value};

fn cfg() -> Config {
    Config::cases(128)
}

const IDENT_CHARS: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-";

/// Arbitrary picklable values up to a small depth. Recursive and generated
/// with `from_fn` (no shrinking): failing trees are small enough to read.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop::from_fn(|rng| gen_value(rng, 3))
}

fn gen_leaf(rng: &mut Rng) -> Value {
    match rng.u64_below(8) {
        0 => Value::None,
        1 => Value::Bool(rng.bool()),
        2 => Value::Int(rng.i64_in(i64::MIN, i64::MAX)),
        3 => {
            // Finite floats only: NaN breaks py_eq.
            let mut f = f64::from_bits(rng.next_u64());
            if !f.is_finite() {
                f = rng.f64_unit();
            }
            Value::Float(f)
        }
        4 => {
            let chars: Vec<char> = IDENT_CHARS.chars().collect();
            let len = rng.usize_below(25);
            let s: String = (0..len).map(|_| *rng.choose(&chars).unwrap()).collect();
            Value::str(s)
        }
        5 => {
            let mut bytes = vec![0u8; rng.usize_below(32)];
            rng.fill_bytes(&mut bytes);
            Value::bytes(bytes)
        }
        6 => Value::array(Array::Int(
            (0..rng.usize_below(32))
                .map(|_| rng.i64_in(i64::MIN, i64::MAX))
                .collect(),
        )),
        _ => Value::array(Array::Bool(
            (0..rng.usize_below(32)).map(|_| rng.bool()).collect(),
        )),
    }
}

fn gen_value(rng: &mut Rng, depth: u32) -> Value {
    if depth == 0 || rng.u64_below(3) == 0 {
        return gen_leaf(rng);
    }
    let items: Vec<Value> = (0..rng.usize_below(8))
        .map(|_| gen_value(rng, depth - 1))
        .collect();
    if rng.bool() {
        Value::list(items)
    } else {
        Value::tuple(items)
    }
}

#[test]
fn pickle_round_trip() {
    prop::check(cfg(), value_strategy(), |v| {
        let blob = pickle::dumps(v).unwrap();
        let back = pickle::loads(&blob).unwrap();
        prop_assert!(back.py_eq(v), "{:?} != {:?}", back, v);
        Ok(())
    });
}

#[test]
fn pickle_loads_never_panics_on_garbage() {
    prop::check(cfg(), prop::vec_of(prop::any_u8(), 0..256), |data| {
        let _ = pickle::loads(data);
        Ok(())
    });
}

#[test]
fn parser_never_panics() {
    prop::check(
        cfg(),
        prop::string_of(
            "abcdefghijklmnopqrstuvwxyz0123456789 +-*/()[]{}:,.'\"=<>\n",
            0..200,
        ),
        |src| {
            let _ = pylite::parse_module(src);
            Ok(())
        },
    );
}

#[test]
fn int_arithmetic_matches_rust() {
    let strategy = (prop::i64_in(-10_000..10_000), prop::i64_in(1..1000));
    prop::check(cfg(), strategy, |&(a, b)| {
        let mut interp = Interp::new();
        interp.set_global("a", Value::Int(a));
        interp.set_global("b", Value::Int(b));
        interp
            .eval_module("s = a + b\nd = a - b\nm = a * b\nq = a // b\nr = a % b\n")
            .unwrap();
        prop_assert_eq!(interp.get_global("s").unwrap(), Value::Int(a + b));
        prop_assert_eq!(interp.get_global("d").unwrap(), Value::Int(a - b));
        prop_assert_eq!(interp.get_global("m").unwrap(), Value::Int(a * b));
        prop_assert_eq!(interp.get_global("q").unwrap(), Value::Int(a.div_euclid(b)));
        prop_assert_eq!(interp.get_global("r").unwrap(), Value::Int(a.rem_euclid(b)));
        Ok(())
    });
}

#[test]
fn sum_over_array_matches_rust() {
    prop::check(
        cfg(),
        prop::vec_of(prop::i64_in(-1000..1000), 0..100),
        |v| {
            let mut interp = Interp::new();
            let expected: i64 = v.iter().sum();
            interp.set_global("col", Value::array(Array::Int(v.clone())));
            interp.eval_module("total = sum(col)\n").unwrap();
            prop_assert_eq!(interp.get_global("total").unwrap(), Value::Int(expected));
            Ok(())
        },
    );
}

#[test]
fn sorted_output_is_sorted_permutation() {
    prop::check(cfg(), prop::vec_of(prop::i64_in(-1000..1000), 0..50), |v| {
        let mut interp = Interp::new();
        interp.set_global("v", Value::list(v.iter().map(|&x| Value::Int(x)).collect()));
        interp.eval_module("s = sorted(v)\n").unwrap();
        let Value::List(s) = interp.get_global("s").unwrap() else {
            return Err("sorted() did not return a list".to_string());
        };
        let got: Vec<i64> = s
            .borrow()
            .iter()
            .map(|x| match x {
                Value::Int(i) => *i,
                _ => i64::MIN,
            })
            .collect();
        let mut expected = v.clone();
        expected.sort();
        prop_assert_eq!(got, expected);
        Ok(())
    });
}

#[test]
fn interpreter_mean_deviation_matches_rust() {
    prop::check(cfg(), prop::vec_of(prop::i64_in(-100..100), 1..60), |v| {
        // The *correct* mean-deviation UDF (Scenario A, fixed) must agree
        // with a Rust reference implementation.
        let src = "\
def mean_deviation(column):
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += abs(column[i] - mean)
    return distance / len(column)
result = mean_deviation(col)
";
        let mut interp = Interp::new();
        interp.set_global("col", Value::array(Array::Int(v.clone())));
        interp.eval_module(src).unwrap();
        let mean = v.iter().sum::<i64>() as f64 / v.len() as f64;
        let expected = v.iter().map(|&x| (x as f64 - mean).abs()).sum::<f64>() / v.len() as f64;
        match interp.get_global("result").unwrap() {
            Value::Float(f) => prop_assert!((f - expected).abs() < 1e-9, "{f} vs {expected}"),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        Ok(())
    });
}
