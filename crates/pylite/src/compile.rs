//! AST → bytecode lowering (the compile half of the bytecode VM).
//!
//! The tree-walking interpreter in [`crate::interp`] is the *reference
//! semantics* for pylite; this module lowers the same AST into a flat
//! instruction stream that [`crate::vm`] executes several times faster.
//! The two engines are selected by [`crate::ExecMode`] and are kept
//! observably identical — values, errors, tracebacks, captured stdout,
//! statement counts and debugger pauses — which is what lets the AST
//! walker serve as a differential-testing oracle (see DESIGN.md §13).
//!
//! A [`CodeObject`] carries:
//!
//! * `instrs` — the flat [`Instr`] stream with absolute jump targets,
//!   patched in a single pass as control flow is lowered;
//! * `consts` — the constant pool (deduplicated literals);
//! * `names` — the interned name table; [`Instr::Load`]/[`Instr::Store`]
//!   index it, and the VM keeps a per-frame slot cache parallel to it so
//!   hot loops avoid repeated hash-map lookups;
//! * `funcs` — nested [`FunctionDef`]s referenced by
//!   [`Instr::MakeFunction`] (function bodies compile lazily, on first
//!   call, and are cached per definition);
//! * `lines` — the line-number table, one source line per instruction.
//!   [`Instr::Trace`] marks statement boundaries: the VM consults the
//!   debug hook there, which is how breakpoints and stepping keep
//!   working identically in both execution modes
//!   ([`CodeObject::statement_lines`] exposes the breakpoint-able set).
//!
//! Statement-level control flow (`if`/`while`/`for`/`break`/`continue`)
//! lowers to conditional jumps; `try`/`except`/`finally` lowers to a
//! runtime handler stack ([`Instr::SetupTry`]) plus a *pending-action*
//! stack that routes `return`/`break`/`continue` through `finally`
//! blocks the same way the walker's `Flow` enum does.
//!
//! # Example: compile and run a snippet
//!
//! ```
//! use pylite::{compile, Interp, Value};
//!
//! let module = pylite::parse_module("total = 0\nfor i in range(5):\n    total += i\n").unwrap();
//! let code = compile::compile_module(&module);
//! let mut interp = Interp::new();
//! interp.run_code(&code).unwrap();
//! assert_eq!(interp.get_global("total"), Some(Value::Int(10)));
//! ```

use std::rc::Rc;
use std::time::Instant;

use crate::ast::*;
use crate::error::ErrorKind;
use crate::value::Value;

/// A compiled block of statements: flat instructions plus the constant
/// pool, name table and line-number table they index.
pub struct CodeObject {
    /// `<module>` for module bodies, the function name otherwise.
    pub name: String,
    /// Module bodies allow top-level `return` and treat stray
    /// `break`/`continue` as an early exit (walker parity).
    pub is_module: bool,
    pub instrs: Vec<Instr>,
    /// Source line per instruction, parallel to `instrs`.
    pub lines: Vec<u32>,
    pub consts: Vec<Value>,
    /// Interned names: variables, attributes, modules, exception classes.
    pub names: Vec<String>,
    /// Nested function definitions for [`Instr::MakeFunction`].
    pub funcs: Vec<Rc<FunctionDef>>,
    /// Keyword-name lists for calls (indices into `names`); entry 0 is
    /// always the shared empty list.
    pub kwlists: Vec<Vec<u16>>,
}

impl CodeObject {
    /// The source line of the instruction at `pc`.
    pub fn line_for_pc(&self, pc: usize) -> u32 {
        self.lines.get(pc).copied().unwrap_or(0)
    }

    /// The line-number table as the debugger sees it: source lines that
    /// start a statement, in first-execution order, deduplicated. A
    /// breakpoint on any of these lines will pause the VM.
    pub fn statement_lines(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (pc, instr) in self.instrs.iter().enumerate() {
            if matches!(instr, Instr::Trace) {
                let line = self.lines[pc];
                if !out.contains(&line) {
                    out.push(line);
                }
            }
        }
        out
    }
}

/// What a pending-action slot records while a `finally` block runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingKind {
    /// Normal fall-through into the `finally`.
    Normal,
    /// A `return` is suspended; its value rides the pending stack.
    Return,
    Break,
    Continue,
    /// An exception is suspended and re-raised after the `finally`.
    Err,
}

/// One bytecode instruction. Jump targets are absolute instruction
/// indices, patched during compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Statement boundary: bump the statement counter, update the frame
    /// line, charge the step budget and consult the debug hook.
    Trace,
    LoadConst(u16),
    /// Read a name through the frame's slot cache (falling back to the
    /// walker's locals → closure → globals → builtins lookup).
    Load(u16),
    /// Bind a name in the frame's slot cache (written back to the real
    /// scope at the next barrier).
    Store(u16),
    /// `del name`.
    Delete(u16),
    Pop,
    Dup,
    BuildTuple(u16),
    BuildList(u16),
    BuildDict(u16),
    BinOp(BinOp),
    /// Fused `Load(rhs); BinOp` for `<expr> op name` shapes — skips a
    /// stack round-trip for the loop-carried operand (`x - mean`).
    BinOpName {
        op: BinOp,
        rhs: u16,
    },
    /// Fused `BinOp; Store(slot)` — the combine-and-rebind tail of an
    /// augmented assignment to a plain name (`total += …`).
    BinOpStore {
        op: BinOp,
        slot: u16,
    },
    /// Fused `LoadIndex(obj, idx); BinOpName` for `name[name] op name`
    /// (`column[i] - mean`): the subscript read and the combine share
    /// one dispatch. `rhs` resolves after the read, like the walker.
    IndexBinOpName {
        obj: u16,
        idx: u16,
        op: BinOp,
        rhs: u16,
    },
    /// The fully fused columnar reduction statement
    /// `name op= name[name]` (`total += column[i]`): one dispatch for
    /// read-target, index, combine, rebind.
    AugIndex {
        target: u16,
        op: BinOp,
        obj: u16,
        idx: u16,
    },
    UnaryOp(UnaryOp),
    /// Single comparison, array-aware (vectorizes like the walker).
    Compare(CmpOp),
    /// Non-final link of a chained comparison: on false, push `False`
    /// and jump; on true, leave the right operand as the next left.
    CmpChain(CmpOp, u32),
    /// Final link of a chained comparison: push the boolean result.
    CmpLast(CmpOp),
    Jump(u32),
    PopJumpIfFalse(u32),
    PopJumpIfTrue(u32),
    /// Short-circuit `and`: jump keeping the value if falsy.
    JumpIfFalseKeep(u32),
    /// Short-circuit `or`: jump keeping the value if truthy.
    JumpIfTrueKeep(u32),
    /// `[obj, idx] → [obj[idx]]`.
    GetItem,
    /// Fused `Load(a); Load(b); GetItem` for `name[name]` subscripts —
    /// the hot shape of columnar UDF loops (`column[i]`). Slot loads
    /// happen in source order so `NameError`s report like the walker.
    LoadIndex(u16, u16),
    /// `[value, obj, idx] → []` (walker evaluation order).
    SetItem,
    /// `[obj, idx] → []`, `del obj[idx]`.
    DelItem,
    /// Peek the sliceable object and push its length (type-checked
    /// before the bound expressions evaluate, like the walker).
    SliceLen,
    /// `[obj, len, step?, lo?, hi?] → [slice]`.
    SliceGet {
        has_step: bool,
        has_lo: bool,
        has_hi: bool,
    },
    LoadAttr(u16),
    /// `[value, obj] → []`, `obj.attr = value`.
    SetAttr(u16),
    /// `[args…, kwvalues…, callee] → [result]`.
    Call {
        argc: u16,
        kwlist: u16,
    },
    /// Fused `Load(func); Call` for keyword-less calls of a plain-name
    /// callee with ≤ 4 arguments (`abs(…)`, `len(…)`, `range(…)`) —
    /// arguments stay in a fixed buffer, never a heap `Vec`.
    CallName {
        func: u16,
        argc: u16,
    },
    /// `[args…, kwvalues…, obj] → [result]`, `obj.name(…)`.
    CallMethod {
        name: u16,
        argc: u16,
        kwlist: u16,
    },
    /// Instantiate `funcs[i]` capturing the current closure scopes.
    MakeFunction(u16),
    /// Pop an iterable and push an iterator (lazy for `range`).
    GetIter,
    /// Advance the top iterator; push the next item, or pop the
    /// iterator and jump when exhausted.
    ForIter(u32),
    /// Fused `ForIter; Store` for `for <name> in …` loops: the next
    /// item goes straight into the slot instead of across the stack.
    ForIterStore {
        slot: u16,
        exit: u32,
    },
    /// Discard the top iterator (`break` out of a `for`).
    PopIter,
    /// Pop a sequence, length-check, push its items in reverse.
    UnpackSeq(u16),
    /// `[list, item] → [list]` (list-comprehension accumulator).
    ListAppend,
    /// Import by dotted name and push the module value.
    LoadModule(u16),
    /// Peek a module value and push attribute `name` (from-import).
    FromAttr {
        module: u16,
        name: u16,
    },
    /// Push an exception handler at the given target.
    SetupTry(u32),
    PopTry,
    /// Peek the caught error; push whether the handler class matches
    /// (`None` = bare `except`).
    ErrMatch(Option<u16>),
    /// Peek the caught error; push its message as a string.
    PushErrMsg,
    /// Drop the caught error (a handler matched).
    PopErr,
    /// Re-raise the caught error (no handler matched).
    Reraise,
    /// Push a pending action before entering a `finally` block.
    /// `Return` pops the return value; `Err` pops the caught error.
    PushPending(PendingKind),
    /// Cancel the innermost pending action (the `finally` body replaced
    /// it with its own control flow — walker: "finally wins").
    PopPending,
    /// Dispatch the pending action after a `finally` block.
    PendingJump {
        on_return: u32,
        on_break: u32,
        on_continue: u32,
    },
    /// Pop the return value and leave the frame.
    Return,
    /// `break`/`continue` escaping the frame: leave with the walker's
    /// `Flow::Break` (the caller decides — early exit for a module,
    /// `SyntaxError` for a function, exactly like `exec_block`).
    FlowBreak,
    /// `raise Class(message?)` — message popped when `has_msg`.
    RaiseClass {
        class: u16,
        has_msg: bool,
    },
    /// `raise <expr>` for non-class expressions: pop and stringify.
    RaiseValue,
    /// Bare `raise` outside an except block.
    RaiseBare,
    /// `assert` failed — message popped when `has_msg`.
    AssertFail {
        has_msg: bool,
    },
    /// Raise a statically known error (e.g. unsupported slice delete).
    StaticErr {
        kind: ErrorKind,
        msg: u16,
    },
}

/// Compile a parsed module body. Records `pylite.compile_ns`.
pub fn compile_module(module: &Module) -> Rc<CodeObject> {
    let start = Instant::now();
    let code = Compiler::compile("<module>", true, &module.body);
    obs::histogram!("pylite.compile_ns").record(start.elapsed().as_nanos() as u64);
    Rc::new(code)
}

/// Compile a function body (called lazily on first bytecode-mode call;
/// the result is cached per definition by the interpreter).
pub fn compile_function(def: &FunctionDef) -> Rc<CodeObject> {
    let start = Instant::now();
    let code = Compiler::compile(&def.name, false, &def.body);
    obs::histogram!("pylite.compile_ns").record(start.elapsed().as_nanos() as u64);
    Rc::new(code)
}

/// Lexical context stack entries used to lower `break`/`continue`/
/// `return` across loops and `try` blocks.
enum Ctx {
    Loop {
        /// Jump sites to patch to the loop exit.
        breaks: Vec<usize>,
        /// Absolute target of `continue` (the `ForIter`/test).
        cont: u32,
        /// Whether `break` must pop a runtime iterator.
        has_iter: bool,
    },
    /// An active `SetupTry` for handlers: jumping out pops it.
    Guard,
    /// An active `finally` guard: control flow out of the region is
    /// diverted through the `finally` body via the pending stack.
    Finally { jumps: Vec<usize> },
    /// Currently compiling a `finally` body: flow out cancels pending.
    InFinally,
}

struct Compiler {
    code: CodeObject,
    ctx: Vec<Ctx>,
    cur_line: u32,
}

impl Compiler {
    fn compile(name: &str, is_module: bool, body: &[Stmt]) -> CodeObject {
        let mut c = Compiler {
            code: CodeObject {
                name: name.to_string(),
                is_module,
                instrs: Vec::new(),
                lines: Vec::new(),
                consts: Vec::new(),
                names: Vec::new(),
                funcs: Vec::new(),
                kwlists: vec![Vec::new()],
            },
            ctx: Vec::new(),
            cur_line: body.first().map(|s| s.line).unwrap_or(0),
        };
        c.block(body);
        // Fall off the end: return None (walker: Flow::Normal).
        let none = c.const_idx(Value::None);
        c.emit(Instr::LoadConst(none));
        c.emit(Instr::Return);
        c.code
    }

    // -- emission helpers ------------------------------------------------

    fn emit(&mut self, instr: Instr) -> usize {
        self.code.instrs.push(instr);
        self.code.lines.push(self.cur_line);
        self.code.instrs.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.instrs.len() as u32
    }

    /// Patch the jump target of the instruction at `at` to `target`.
    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code.instrs[at] {
            Instr::Jump(t)
            | Instr::PopJumpIfFalse(t)
            | Instr::PopJumpIfTrue(t)
            | Instr::JumpIfFalseKeep(t)
            | Instr::JumpIfTrueKeep(t)
            | Instr::CmpChain(_, t)
            | Instr::ForIter(t)
            | Instr::ForIterStore { exit: t, .. }
            | Instr::SetupTry(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn patch_here(&mut self, at: usize) {
        let target = self.here();
        self.patch(at, target);
    }

    fn name_idx(&mut self, name: &str) -> u16 {
        if let Some(i) = self.code.names.iter().position(|n| n == name) {
            return i as u16;
        }
        self.code.names.push(name.to_string());
        (self.code.names.len() - 1) as u16
    }

    fn const_idx(&mut self, v: Value) -> u16 {
        let found = self.code.consts.iter().position(|c| match (c, &v) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::None, Value::None) => true,
            _ => false,
        });
        if let Some(i) = found {
            return i as u16;
        }
        self.code.consts.push(v);
        (self.code.consts.len() - 1) as u16
    }

    fn str_const(&mut self, s: &str) -> u16 {
        self.const_idx(Value::str(s))
    }

    // -- statements ------------------------------------------------------

    fn block(&mut self, body: &[Stmt]) {
        for stmt in body {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        self.cur_line = stmt.line;
        self.emit(Instr::Trace);
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.expr(e);
                self.emit(Instr::Pop);
            }
            StmtKind::Assign { targets, value } => {
                self.expr(value);
                for (i, target) in targets.iter().enumerate() {
                    if i < targets.len() - 1 {
                        self.emit(Instr::Dup);
                    }
                    self.store_target(target);
                }
            }
            StmtKind::AugAssign { target, op, value } => {
                if self.try_fuse_aug_index(stmt.line, target, *op, value) {
                    return;
                }
                // Walker order: read target, eval value, combine at the
                // statement line, then re-evaluate the target for the
                // store (subscript bases/indices evaluate twice).
                self.expr(target);
                self.expr(value);
                self.cur_line = stmt.line;
                if let ExprKind::Name(name) = &target.kind {
                    let slot = self.name_idx(name);
                    self.emit(Instr::BinOpStore { op: *op, slot });
                } else {
                    self.emit(Instr::BinOp(*op));
                    self.store_target(target);
                }
            }
            StmtKind::Return(expr) => {
                match expr {
                    Some(e) => self.expr(e),
                    None => {
                        let none = self.const_idx(Value::None);
                        self.emit(Instr::LoadConst(none));
                    }
                }
                self.cur_line = stmt.line;
                self.emit_return();
            }
            StmtKind::If { branches, orelse } => {
                let mut end_jumps = Vec::new();
                for (test, body) in branches {
                    self.expr(test);
                    let skip = self.emit(Instr::PopJumpIfFalse(0));
                    self.block(body);
                    end_jumps.push(self.emit(Instr::Jump(0)));
                    self.patch_here(skip);
                }
                self.block(orelse);
                for j in end_jumps {
                    self.patch_here(j);
                }
            }
            StmtKind::While { test, body } => {
                let test_at = self.here();
                self.expr(test);
                let exit = self.emit(Instr::PopJumpIfFalse(0));
                self.ctx.push(Ctx::Loop {
                    breaks: Vec::new(),
                    cont: test_at,
                    has_iter: false,
                });
                self.block(body);
                self.cur_line = stmt.line;
                self.emit(Instr::Jump(test_at));
                self.patch_here(exit);
                let Some(Ctx::Loop { breaks, .. }) = self.ctx.pop() else {
                    unreachable!("loop ctx mismatch");
                };
                for b in breaks {
                    self.patch_here(b);
                }
            }
            StmtKind::For { target, iter, body } => {
                self.expr(iter);
                self.cur_line = stmt.line;
                self.emit(Instr::GetIter);
                let loop_at = self.here();
                let for_at = self.emit_for_head(target);
                self.ctx.push(Ctx::Loop {
                    breaks: Vec::new(),
                    cont: loop_at,
                    has_iter: true,
                });
                self.block(body);
                self.cur_line = stmt.line;
                self.emit(Instr::Jump(loop_at));
                self.patch_here(for_at);
                let Some(Ctx::Loop { breaks, .. }) = self.ctx.pop() else {
                    unreachable!("loop ctx mismatch");
                };
                for b in breaks {
                    self.patch_here(b);
                }
            }
            StmtKind::Break => self.emit_break(),
            StmtKind::Continue => self.emit_continue(),
            StmtKind::Pass | StmtKind::Global(_) => {}
            StmtKind::FunctionDef(def) => {
                self.code.funcs.push(def.clone());
                let idx = (self.code.funcs.len() - 1) as u16;
                self.emit(Instr::MakeFunction(idx));
                let slot = self.name_idx(&def.name);
                self.emit(Instr::Store(slot));
            }
            StmtKind::Import { module, alias } => {
                let full = self.name_idx(module);
                match alias {
                    Some(a) => {
                        self.emit(Instr::LoadModule(full));
                        let slot = self.name_idx(a);
                        self.emit(Instr::Store(slot));
                    }
                    None => {
                        let top = module.split('.').next().unwrap().to_string();
                        if top != *module {
                            // `import a.b` loads both but binds `a`.
                            self.emit(Instr::LoadModule(full));
                            self.emit(Instr::Pop);
                            let top_idx = self.name_idx(&top);
                            self.emit(Instr::LoadModule(top_idx));
                            self.emit(Instr::Store(top_idx));
                        } else {
                            self.emit(Instr::LoadModule(full));
                            self.emit(Instr::Store(full));
                        }
                    }
                }
            }
            StmtKind::FromImport { module, names } => {
                let midx = self.name_idx(module);
                self.emit(Instr::LoadModule(midx));
                for (name, alias) in names {
                    let nidx = self.name_idx(name);
                    self.emit(Instr::FromAttr {
                        module: midx,
                        name: nidx,
                    });
                    let slot = self.name_idx(alias.as_ref().unwrap_or(name));
                    self.emit(Instr::Store(slot));
                }
                self.emit(Instr::Pop);
            }
            StmtKind::Del(targets) => {
                for target in targets {
                    self.cur_line = target.line;
                    match &target.kind {
                        ExprKind::Name(name) => {
                            let slot = self.name_idx(name);
                            self.emit(Instr::Delete(slot));
                        }
                        ExprKind::Subscript { value, index } => match index.as_ref() {
                            Index::Item(idx_expr) => {
                                self.expr(value);
                                self.expr(idx_expr);
                                self.cur_line = target.line;
                                self.emit(Instr::DelItem);
                            }
                            Index::Slice { .. } => {
                                let msg = self.str_const("slice deletion is not supported");
                                self.emit(Instr::StaticErr {
                                    kind: ErrorKind::Type,
                                    msg,
                                });
                            }
                        },
                        _ => {
                            let msg = self.str_const("invalid del target");
                            self.emit(Instr::StaticErr {
                                kind: ErrorKind::Syntax,
                                msg,
                            });
                        }
                    }
                }
            }
            StmtKind::Try {
                body,
                handlers,
                finally,
            } => self.try_stmt(body, handlers, finally, stmt.line),
            StmtKind::Raise(expr) => match expr {
                None => {
                    self.emit(Instr::RaiseBare);
                }
                Some(e) => match &e.kind {
                    ExprKind::Call { func, args, .. } => {
                        if let ExprKind::Name(class) = &func.kind {
                            let has_msg = !args.is_empty();
                            if let Some(first) = args.first() {
                                self.expr(first);
                            }
                            let cidx = self.name_idx(class);
                            self.cur_line = e.line;
                            self.emit(Instr::RaiseClass {
                                class: cidx,
                                has_msg,
                            });
                        } else {
                            self.expr(e);
                            self.emit(Instr::RaiseValue);
                        }
                    }
                    ExprKind::Name(class) => {
                        let cidx = self.name_idx(class);
                        self.cur_line = e.line;
                        self.emit(Instr::RaiseClass {
                            class: cidx,
                            has_msg: false,
                        });
                    }
                    _ => {
                        self.expr(e);
                        self.emit(Instr::RaiseValue);
                    }
                },
            },
            StmtKind::Assert { test, message } => {
                self.expr(test);
                let ok = self.emit(Instr::PopJumpIfTrue(0));
                let has_msg = message.is_some();
                if let Some(m) = message {
                    self.expr(m);
                }
                self.cur_line = stmt.line;
                self.emit(Instr::AssertFail { has_msg });
                self.patch_here(ok);
            }
        }
    }

    fn try_stmt(
        &mut self,
        body: &[Stmt],
        handlers: &[(Option<String>, Option<String>, Vec<Stmt>)],
        finally: &[Stmt],
        line: u32,
    ) {
        let has_f = !finally.is_empty();
        let has_h = !handlers.is_empty();
        self.cur_line = line;
        let guard_at = has_f.then(|| self.emit(Instr::SetupTry(0)));
        if has_f {
            self.ctx.push(Ctx::Finally { jumps: Vec::new() });
        }
        let inner_at = has_h.then(|| self.emit(Instr::SetupTry(0)));
        if has_h {
            self.ctx.push(Ctx::Guard);
        }
        self.block(body);
        self.cur_line = line;
        let mut end_jumps = Vec::new();
        let mut fin_jumps = Vec::new();
        if has_h {
            self.emit(Instr::PopTry);
            self.ctx.pop(); // Guard
        }
        if has_f {
            self.emit(Instr::PopTry);
            self.emit(Instr::PushPending(PendingKind::Normal));
            fin_jumps.push(self.emit(Instr::Jump(0)));
        } else {
            end_jumps.push(self.emit(Instr::Jump(0)));
        }
        if has_h {
            self.patch_here(inner_at.expect("handlers present"));
            for (class, alias, hbody) in handlers {
                self.cur_line = line;
                let cidx = class.as_ref().map(|c| self.name_idx(c));
                self.emit(Instr::ErrMatch(cidx));
                let next = self.emit(Instr::PopJumpIfFalse(0));
                if let Some(a) = alias {
                    self.emit(Instr::PushErrMsg);
                    let slot = self.name_idx(a);
                    self.emit(Instr::Store(slot));
                }
                self.emit(Instr::PopErr);
                self.block(hbody);
                self.cur_line = line;
                if has_f {
                    self.emit(Instr::PopTry);
                    self.emit(Instr::PushPending(PendingKind::Normal));
                    fin_jumps.push(self.emit(Instr::Jump(0)));
                } else {
                    end_jumps.push(self.emit(Instr::Jump(0)));
                }
                self.patch_here(next);
            }
            self.emit(Instr::Reraise);
        }
        if has_f {
            let Some(Ctx::Finally { jumps }) = self.ctx.pop() else {
                unreachable!("finally ctx mismatch");
            };
            fin_jumps.extend(jumps);
            // Any error from the body (post-handler) or handlers lands
            // here with the finally guard popped by the unwinder.
            self.patch_here(guard_at.expect("finally present"));
            self.emit(Instr::PushPending(PendingKind::Err));
            for j in fin_jumps {
                self.patch_here(j);
            }
            self.ctx.push(Ctx::InFinally);
            self.block(finally);
            self.ctx.pop(); // InFinally
            self.cur_line = line;
            let pj = self.emit(Instr::PendingJump {
                on_return: 0,
                on_break: 0,
                on_continue: 0,
            });
            end_jumps.push(self.emit(Instr::Jump(0)));
            // Suspended-flow stubs, compiled against the surrounding
            // context (the walker's "finally ran; deliver the flow").
            let ret_at = self.here();
            self.emit_return();
            let brk_at = self.here();
            self.emit_break();
            let cont_at = self.here();
            self.emit_continue();
            if let Instr::PendingJump {
                on_return,
                on_break,
                on_continue,
            } = &mut self.code.instrs[pj]
            {
                *on_return = ret_at;
                *on_break = brk_at;
                *on_continue = cont_at;
            }
        }
        for j in end_jumps {
            self.patch_here(j);
        }
    }

    /// Lower `return` (value already on the stack), routing through any
    /// enclosing `finally` blocks.
    fn emit_return(&mut self) {
        for i in (0..self.ctx.len()).rev() {
            match &self.ctx[i] {
                Ctx::Guard => {
                    self.emit(Instr::PopTry);
                }
                Ctx::InFinally => {
                    self.emit(Instr::PopPending);
                }
                Ctx::Finally { .. } => {
                    self.emit(Instr::PopTry);
                    self.emit(Instr::PushPending(PendingKind::Return));
                    let j = self.emit(Instr::Jump(0));
                    if let Ctx::Finally { jumps } = &mut self.ctx[i] {
                        jumps.push(j);
                    }
                    return;
                }
                Ctx::Loop { .. } => {}
            }
        }
        self.emit(Instr::Return);
    }

    fn emit_break(&mut self) {
        for i in (0..self.ctx.len()).rev() {
            match &self.ctx[i] {
                Ctx::Guard => {
                    self.emit(Instr::PopTry);
                }
                Ctx::InFinally => {
                    self.emit(Instr::PopPending);
                }
                Ctx::Finally { .. } => {
                    self.emit(Instr::PopTry);
                    self.emit(Instr::PushPending(PendingKind::Break));
                    let j = self.emit(Instr::Jump(0));
                    if let Ctx::Finally { jumps } = &mut self.ctx[i] {
                        jumps.push(j);
                    }
                    return;
                }
                Ctx::Loop { has_iter, .. } => {
                    if *has_iter {
                        self.emit(Instr::PopIter);
                    }
                    let j = self.emit(Instr::Jump(0));
                    if let Ctx::Loop { breaks, .. } = &mut self.ctx[i] {
                        breaks.push(j);
                    }
                    return;
                }
            }
        }
        self.emit(Instr::FlowBreak);
    }

    fn emit_continue(&mut self) {
        for i in (0..self.ctx.len()).rev() {
            match &self.ctx[i] {
                Ctx::Guard => {
                    self.emit(Instr::PopTry);
                }
                Ctx::InFinally => {
                    self.emit(Instr::PopPending);
                }
                Ctx::Finally { .. } => {
                    self.emit(Instr::PopTry);
                    self.emit(Instr::PushPending(PendingKind::Continue));
                    let j = self.emit(Instr::Jump(0));
                    if let Ctx::Finally { jumps } = &mut self.ctx[i] {
                        jumps.push(j);
                    }
                    return;
                }
                Ctx::Loop { cont, .. } => {
                    let target = *cont;
                    self.emit(Instr::Jump(target));
                    return;
                }
            }
        }
        self.emit(Instr::FlowBreak);
    }

    /// Emit the loop-head advance for a `for` target: the fused
    /// [`Instr::ForIterStore`] for plain-name targets, otherwise
    /// `ForIter` followed by a full target store. Returns the
    /// instruction index whose exit target must be patched.
    fn emit_for_head(&mut self, target: &Expr) -> usize {
        if let ExprKind::Name(name) = &target.kind {
            let slot = self.name_idx(name);
            return self.emit(Instr::ForIterStore { slot, exit: 0 });
        }
        let at = self.emit(Instr::ForIter(0));
        self.store_target(target);
        at
    }

    /// Emit [`Instr::AugIndex`] when an augmented assignment has the
    /// `name op= name[name]` shape on a single source line (the line
    /// guard keeps NameError locations identical to the unfused form).
    fn try_fuse_aug_index(&mut self, line: u32, target: &Expr, op: BinOp, value: &Expr) -> bool {
        let ExprKind::Name(tname) = &target.kind else {
            return false;
        };
        let ExprKind::Subscript {
            value: obj_e,
            index,
        } = &value.kind
        else {
            return false;
        };
        let Index::Item(idx_e) = index.as_ref() else {
            return false;
        };
        let (ExprKind::Name(oname), ExprKind::Name(iname)) = (&obj_e.kind, &idx_e.kind) else {
            return false;
        };
        if [target.line, value.line, obj_e.line, idx_e.line] != [line; 4] {
            return false;
        }
        let target = self.name_idx(tname);
        let obj = self.name_idx(oname);
        let idx = self.name_idx(iname);
        self.cur_line = line;
        self.emit(Instr::AugIndex {
            target,
            op,
            obj,
            idx,
        });
        true
    }

    /// Lower an assignment target; the value to store is on the stack.
    fn store_target(&mut self, target: &Expr) {
        self.cur_line = target.line;
        match &target.kind {
            ExprKind::Name(name) => {
                let slot = self.name_idx(name);
                self.emit(Instr::Store(slot));
            }
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                self.emit(Instr::UnpackSeq(items.len() as u16));
                for item in items {
                    self.store_target(item);
                }
            }
            ExprKind::Subscript { value, index } => match index.as_ref() {
                Index::Item(idx_expr) => {
                    self.expr(value);
                    self.expr(idx_expr);
                    self.cur_line = target.line;
                    self.emit(Instr::SetItem);
                }
                Index::Slice { .. } => {
                    let msg = self.str_const("slice assignment is not supported");
                    self.emit(Instr::StaticErr {
                        kind: ErrorKind::Type,
                        msg,
                    });
                }
            },
            ExprKind::Attribute { value, attr } => {
                self.expr(value);
                let aidx = self.name_idx(attr);
                self.cur_line = target.line;
                self.emit(Instr::SetAttr(aidx));
            }
            _ => {
                let msg = self.str_const("invalid assignment target");
                self.emit(Instr::StaticErr {
                    kind: ErrorKind::Syntax,
                    msg,
                });
            }
        }
    }

    // -- expressions -----------------------------------------------------

    fn expr(&mut self, e: &Expr) {
        self.cur_line = e.line;
        match &e.kind {
            ExprKind::Int(v) => {
                let c = self.const_idx(Value::Int(*v));
                self.emit(Instr::LoadConst(c));
            }
            ExprKind::Float(v) => {
                let c = self.const_idx(Value::Float(*v));
                self.emit(Instr::LoadConst(c));
            }
            ExprKind::Str(s) => {
                let c = self.const_idx(Value::Str(s.clone()));
                self.emit(Instr::LoadConst(c));
            }
            ExprKind::Bool(b) => {
                let c = self.const_idx(Value::Bool(*b));
                self.emit(Instr::LoadConst(c));
            }
            ExprKind::NoneLit => {
                let c = self.const_idx(Value::None);
                self.emit(Instr::LoadConst(c));
            }
            ExprKind::Name(name) => {
                let slot = self.name_idx(name);
                self.emit(Instr::Load(slot));
            }
            ExprKind::Tuple(items) => {
                for item in items {
                    self.expr(item);
                }
                self.cur_line = e.line;
                self.emit(Instr::BuildTuple(items.len() as u16));
            }
            ExprKind::List(items) => {
                for item in items {
                    self.expr(item);
                }
                self.cur_line = e.line;
                self.emit(Instr::BuildList(items.len() as u16));
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    self.expr(k);
                    self.expr(v);
                }
                self.cur_line = e.line;
                self.emit(Instr::BuildDict(pairs.len() as u16));
            }
            ExprKind::BinOp { left, op, right } => {
                // `name[name] op name` fuses the subscript read into the
                // operator (line guards keep NameError parity with the
                // unfused `LoadIndex; BinOpName` pair).
                if let (ExprKind::Subscript { value, index }, ExprKind::Name(rhs)) =
                    (&left.kind, &right.kind)
                {
                    if let Index::Item(idx_expr) = index.as_ref() {
                        if let (ExprKind::Name(obj), ExprKind::Name(idx)) =
                            (&value.kind, &idx_expr.kind)
                        {
                            if [left.line, right.line, value.line, idx_expr.line] == [e.line; 4] {
                                let o = self.name_idx(obj);
                                let i = self.name_idx(idx);
                                let r = self.name_idx(rhs);
                                self.cur_line = e.line;
                                self.emit(Instr::IndexBinOpName {
                                    obj: o,
                                    idx: i,
                                    op: *op,
                                    rhs: r,
                                });
                                return;
                            }
                        }
                    }
                }
                self.expr(left);
                // A plain-name right operand loads straight from its
                // slot inside the operator (line guard: NameError parity).
                if let ExprKind::Name(name) = &right.kind {
                    if right.line == e.line {
                        let rhs = self.name_idx(name);
                        self.cur_line = e.line;
                        self.emit(Instr::BinOpName { op: *op, rhs });
                        return;
                    }
                }
                self.expr(right);
                self.cur_line = e.line;
                self.emit(Instr::BinOp(*op));
            }
            ExprKind::UnaryOp { op, operand } => {
                self.expr(operand);
                self.cur_line = e.line;
                self.emit(Instr::UnaryOp(*op));
            }
            ExprKind::BoolOp { op, values } => {
                let mut jumps = Vec::new();
                for (i, v) in values.iter().enumerate() {
                    self.expr(v);
                    if i < values.len() - 1 {
                        self.cur_line = e.line;
                        let j = match op {
                            BoolOpKind::And => self.emit(Instr::JumpIfFalseKeep(0)),
                            BoolOpKind::Or => self.emit(Instr::JumpIfTrueKeep(0)),
                        };
                        jumps.push(j);
                        self.emit(Instr::Pop);
                    }
                }
                for j in jumps {
                    self.patch_here(j);
                }
            }
            ExprKind::Compare {
                left,
                ops,
                comparators,
            } => {
                self.expr(left);
                if ops.len() == 1 {
                    self.expr(&comparators[0]);
                    self.cur_line = e.line;
                    self.emit(Instr::Compare(ops[0]));
                } else {
                    let mut false_jumps = Vec::new();
                    for (i, (op, comp)) in ops.iter().zip(comparators.iter()).enumerate() {
                        self.expr(comp);
                        self.cur_line = e.line;
                        if i < ops.len() - 1 {
                            false_jumps.push(self.emit(Instr::CmpChain(*op, 0)));
                        } else {
                            self.emit(Instr::CmpLast(*op));
                        }
                    }
                    for j in false_jumps {
                        self.patch_here(j);
                    }
                }
            }
            ExprKind::Call { func, args, kwargs } => {
                // Walker order: arguments first, then keyword values,
                // then the callee / method receiver.
                for a in args {
                    self.expr(a);
                }
                // Small keyword-less calls of a plain-name callee fuse
                // the callee load into the call itself.
                if kwargs.is_empty() && args.len() <= 4 {
                    if let ExprKind::Name(name) = &func.kind {
                        if func.line == e.line {
                            let f = self.name_idx(name);
                            self.cur_line = e.line;
                            self.emit(Instr::CallName {
                                func: f,
                                argc: args.len() as u16,
                            });
                            return;
                        }
                    }
                }
                let kwlist = if kwargs.is_empty() {
                    0
                } else {
                    let idxs: Vec<u16> = kwargs.iter().map(|(n, _)| self.name_idx(n)).collect();
                    self.code.kwlists.push(idxs);
                    (self.code.kwlists.len() - 1) as u16
                };
                for (_, v) in kwargs {
                    self.expr(v);
                }
                if let ExprKind::Attribute { value, attr } = &func.kind {
                    self.expr(value);
                    let nidx = self.name_idx(attr);
                    self.cur_line = e.line;
                    self.emit(Instr::CallMethod {
                        name: nidx,
                        argc: args.len() as u16,
                        kwlist,
                    });
                } else {
                    self.expr(func);
                    self.cur_line = e.line;
                    self.emit(Instr::Call {
                        argc: args.len() as u16,
                        kwlist,
                    });
                }
            }
            ExprKind::Attribute { value, attr } => {
                self.expr(value);
                let aidx = self.name_idx(attr);
                self.cur_line = e.line;
                self.emit(Instr::LoadAttr(aidx));
            }
            ExprKind::Subscript { value, index } => {
                // `name[name]` fuses into a single LoadIndex (the hot
                // columnar shape); guard on matching lines so NameError
                // locations stay identical to the unfused form.
                if let Index::Item(idx_expr) = index.as_ref() {
                    if let (ExprKind::Name(obj), ExprKind::Name(idx)) =
                        (&value.kind, &idx_expr.kind)
                    {
                        if value.line == e.line && idx_expr.line == e.line {
                            let o = self.name_idx(obj);
                            let i = self.name_idx(idx);
                            self.cur_line = e.line;
                            self.emit(Instr::LoadIndex(o, i));
                            return;
                        }
                    }
                }
                self.expr(value);
                match index.as_ref() {
                    Index::Item(idx_expr) => {
                        self.expr(idx_expr);
                        self.cur_line = e.line;
                        self.emit(Instr::GetItem);
                    }
                    Index::Slice { lower, upper, step } => {
                        self.cur_line = e.line;
                        self.emit(Instr::SliceLen);
                        // Walker evaluation order: step, lower, upper.
                        if let Some(s) = step {
                            self.expr(s);
                        }
                        if let Some(l) = lower {
                            self.expr(l);
                        }
                        if let Some(u) = upper {
                            self.expr(u);
                        }
                        self.cur_line = e.line;
                        self.emit(Instr::SliceGet {
                            has_step: step.is_some(),
                            has_lo: lower.is_some(),
                            has_hi: upper.is_some(),
                        });
                    }
                }
            }
            ExprKind::Lambda(def) => {
                self.code.funcs.push(def.clone());
                let idx = (self.code.funcs.len() - 1) as u16;
                self.emit(Instr::MakeFunction(idx));
            }
            ExprKind::IfExp { test, body, orelse } => {
                self.expr(test);
                let to_else = self.emit(Instr::PopJumpIfFalse(0));
                self.expr(body);
                let to_end = self.emit(Instr::Jump(0));
                self.patch_here(to_else);
                self.expr(orelse);
                self.patch_here(to_end);
            }
            ExprKind::ListComp {
                elt,
                target,
                iter,
                conds,
            } => {
                self.emit(Instr::BuildList(0));
                self.expr(iter);
                self.cur_line = e.line;
                self.emit(Instr::GetIter);
                let loop_at = self.here();
                let for_at = self.emit_for_head(target);
                for cond in conds {
                    self.expr(cond);
                    self.cur_line = e.line;
                    self.emit(Instr::PopJumpIfFalse(loop_at));
                }
                self.expr(elt);
                self.cur_line = e.line;
                self.emit(Instr::ListAppend);
                self.emit(Instr::Jump(loop_at));
                self.patch_here(for_at);
            }
        }
    }
}
