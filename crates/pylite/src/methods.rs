//! Methods on built-in types (`list.append`, `str.split`, `dict.keys`, …)
//! and Python-2-style `%` string formatting (used by paper Listing 3).

use crate::error::{ErrorKind, PyError};
use crate::interp::Interp;
use crate::value::{Dict, Value};

fn err(kind: ErrorKind, msg: impl Into<String>) -> PyError {
    PyError::new(kind, msg)
}

fn arity(name: &str, args: &[Value], min: usize, max: usize) -> Result<(), PyError> {
    if args.len() < min || args.len() > max {
        return Err(err(
            ErrorKind::Type,
            format!("{name}() takes {min}..{max} arguments, got {}", args.len()),
        ));
    }
    Ok(())
}

/// Dispatch `obj.method(args)` for non-native receivers.
pub fn call_builtin_method(
    interp: &mut Interp,
    obj: &Value,
    name: &str,
    args: &[Value],
    _kwargs: &[(String, Value)],
    line: u32,
) -> Result<Value, PyError> {
    match obj {
        Value::List(list) => match name {
            "append" => {
                arity("append", args, 1, 1)?;
                list.borrow_mut().push(args[0].clone());
                Ok(Value::None)
            }
            "extend" => {
                arity("extend", args, 1, 1)?;
                let items = interp.iter_values(&args[0], line)?;
                list.borrow_mut().extend(items);
                Ok(Value::None)
            }
            "insert" => {
                arity("insert", args, 2, 2)?;
                let Value::Int(i) = &args[0] else {
                    return Err(err(ErrorKind::Type, "insert() index must be int"));
                };
                let mut l = list.borrow_mut();
                let idx = (*i).clamp(0, l.len() as i64) as usize;
                l.insert(idx, args[1].clone());
                Ok(Value::None)
            }
            "pop" => {
                arity("pop", args, 0, 1)?;
                let mut l = list.borrow_mut();
                if l.is_empty() {
                    return Err(err(ErrorKind::Index, "pop from empty list"));
                }
                let idx = match args.first() {
                    Some(Value::Int(i)) => {
                        let adj = if *i < 0 { *i + l.len() as i64 } else { *i };
                        if adj < 0 || adj as usize >= l.len() {
                            return Err(err(ErrorKind::Index, "pop index out of range"));
                        }
                        adj as usize
                    }
                    None => l.len() - 1,
                    Some(other) => {
                        return Err(err(
                            ErrorKind::Type,
                            format!("pop() index must be int, not '{}'", other.type_name()),
                        ))
                    }
                };
                Ok(l.remove(idx))
            }
            "remove" => {
                arity("remove", args, 1, 1)?;
                let mut l = list.borrow_mut();
                let pos = l.iter().position(|v| v.py_eq(&args[0]));
                match pos {
                    Some(i) => {
                        l.remove(i);
                        Ok(Value::None)
                    }
                    None => Err(err(ErrorKind::Value, "list.remove(x): x not in list")),
                }
            }
            "index" => {
                arity("index", args, 1, 1)?;
                let l = list.borrow();
                l.iter()
                    .position(|v| v.py_eq(&args[0]))
                    .map(|i| Value::Int(i as i64))
                    .ok_or_else(|| err(ErrorKind::Value, "value not in list"))
            }
            "count" => {
                arity("count", args, 1, 1)?;
                let l = list.borrow();
                Ok(Value::Int(
                    l.iter().filter(|v| v.py_eq(&args[0])).count() as i64
                ))
            }
            "sort" => {
                arity("sort", args, 0, 0)?;
                let snapshot = list.borrow().clone();
                let mut sort_err = None;
                let mut sorted = snapshot;
                sorted.sort_by(|a, b| {
                    if sort_err.is_some() {
                        return std::cmp::Ordering::Equal;
                    }
                    match interp.order_values(a, b, line) {
                        Ok(o) => o,
                        Err(e) => {
                            sort_err = Some(e);
                            std::cmp::Ordering::Equal
                        }
                    }
                });
                if let Some(e) = sort_err {
                    return Err(e);
                }
                *list.borrow_mut() = sorted;
                Ok(Value::None)
            }
            "reverse" => {
                arity("reverse", args, 0, 0)?;
                list.borrow_mut().reverse();
                Ok(Value::None)
            }
            "clear" => {
                arity("clear", args, 0, 0)?;
                list.borrow_mut().clear();
                Ok(Value::None)
            }
            "copy" => {
                arity("copy", args, 0, 0)?;
                Ok(Value::list(list.borrow().clone()))
            }
            _ => Err(no_method("list", name)),
        },
        Value::Dict(dict) => match name {
            "keys" => Ok(Value::list(dict.borrow().keys())),
            "values" => Ok(Value::list(dict.borrow().values())),
            "items" => Ok(Value::list(
                dict.borrow()
                    .entries()
                    .iter()
                    .map(|(k, v)| Value::tuple(vec![k.clone(), v.clone()]))
                    .collect(),
            )),
            "get" => {
                arity("get", args, 1, 2)?;
                let found = dict.borrow().get(&args[0])?;
                Ok(found.unwrap_or_else(|| args.get(1).cloned().unwrap_or(Value::None)))
            }
            "pop" => {
                arity("pop", args, 1, 2)?;
                let removed = dict.borrow_mut().remove(&args[0])?;
                match removed {
                    Some(v) => Ok(v),
                    None => args
                        .get(1)
                        .cloned()
                        .ok_or_else(|| err(ErrorKind::Key, args[0].repr())),
                }
            }
            "update" => {
                arity("update", args, 1, 1)?;
                let Value::Dict(other) = &args[0] else {
                    return Err(err(ErrorKind::Type, "update() argument must be a dict"));
                };
                let pairs: Vec<(Value, Value)> = other.borrow().entries().to_vec();
                let mut d = dict.borrow_mut();
                for (k, v) in pairs {
                    d.insert(k, v)?;
                }
                Ok(Value::None)
            }
            "clear" => {
                dict.borrow_mut().clear_all();
                Ok(Value::None)
            }
            "copy" => {
                let mut d = Dict::new();
                for (k, v) in dict.borrow().entries() {
                    d.insert(k.clone(), v.clone())?;
                }
                Ok(Value::dict(d))
            }
            _ => Err(no_method("dict", name)),
        },
        Value::Str(s) => match name {
            "split" => {
                arity("split", args, 0, 1)?;
                let parts: Vec<Value> = match args.first() {
                    Some(Value::Str(sep)) => {
                        if sep.is_empty() {
                            return Err(err(ErrorKind::Value, "empty separator"));
                        }
                        s.split(sep.as_ref()).map(Value::str).collect()
                    }
                    None => s.split_whitespace().map(Value::str).collect(),
                    Some(other) => {
                        return Err(err(
                            ErrorKind::Type,
                            format!("split() separator must be str, not '{}'", other.type_name()),
                        ))
                    }
                };
                Ok(Value::list(parts))
            }
            "join" => {
                arity("join", args, 1, 1)?;
                let items = interp.iter_values(&args[0], line)?;
                let mut parts = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Str(piece) => parts.push(piece.to_string()),
                        other => {
                            return Err(err(
                                ErrorKind::Type,
                                format!(
                                    "sequence item for join() must be str, not '{}'",
                                    other.type_name()
                                ),
                            ))
                        }
                    }
                }
                Ok(Value::str(parts.join(s)))
            }
            "strip" => {
                arity("strip", args, 0, 0)?;
                Ok(Value::str(s.trim()))
            }
            "lstrip" => Ok(Value::str(s.trim_start())),
            "rstrip" => Ok(Value::str(s.trim_end())),
            "upper" => Ok(Value::str(s.to_uppercase())),
            "lower" => Ok(Value::str(s.to_lowercase())),
            "replace" => {
                arity("replace", args, 2, 2)?;
                let (Value::Str(from), Value::Str(to)) = (&args[0], &args[1]) else {
                    return Err(err(ErrorKind::Type, "replace() arguments must be strings"));
                };
                Ok(Value::str(s.replace(from.as_ref(), to)))
            }
            "startswith" => {
                arity("startswith", args, 1, 1)?;
                let Value::Str(prefix) = &args[0] else {
                    return Err(err(ErrorKind::Type, "startswith() argument must be str"));
                };
                Ok(Value::Bool(s.starts_with(prefix.as_ref())))
            }
            "endswith" => {
                arity("endswith", args, 1, 1)?;
                let Value::Str(suffix) = &args[0] else {
                    return Err(err(ErrorKind::Type, "endswith() argument must be str"));
                };
                Ok(Value::Bool(s.ends_with(suffix.as_ref())))
            }
            "find" => {
                arity("find", args, 1, 1)?;
                let Value::Str(needle) = &args[0] else {
                    return Err(err(ErrorKind::Type, "find() argument must be str"));
                };
                // Return a character index, consistent with our len()/slicing.
                match s.find(needle.as_ref()) {
                    Some(byte_idx) => Ok(Value::Int(s[..byte_idx].chars().count() as i64)),
                    None => Ok(Value::Int(-1)),
                }
            }
            "count" => {
                arity("count", args, 1, 1)?;
                let Value::Str(needle) = &args[0] else {
                    return Err(err(ErrorKind::Type, "count() argument must be str"));
                };
                if needle.is_empty() {
                    return Ok(Value::Int(s.chars().count() as i64 + 1));
                }
                Ok(Value::Int(s.matches(needle.as_ref()).count() as i64))
            }
            "splitlines" => {
                arity("splitlines", args, 0, 0)?;
                Ok(Value::list(s.lines().map(Value::str).collect()))
            }
            "format" => Err(err(
                ErrorKind::Type,
                "str.format() is not supported; use '%' formatting",
            )),
            "isdigit" => Ok(Value::Bool(
                !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
            )),
            _ => Err(no_method("str", name)),
        },
        Value::Tuple(t) => match name {
            "index" => {
                arity("index", args, 1, 1)?;
                t.iter()
                    .position(|v| v.py_eq(&args[0]))
                    .map(|i| Value::Int(i as i64))
                    .ok_or_else(|| err(ErrorKind::Value, "value not in tuple"))
            }
            "count" => {
                arity("count", args, 1, 1)?;
                Ok(Value::Int(
                    t.iter().filter(|v| v.py_eq(&args[0])).count() as i64
                ))
            }
            _ => Err(no_method("tuple", name)),
        },
        Value::Array(a) => match name {
            // numpy-style convenience methods.
            "sum" => {
                let total: f64 = a.as_f64()?.iter().sum();
                match a.as_ref() {
                    crate::value::Array::Int(v) => Ok(Value::Int(v.iter().sum())),
                    _ => Ok(Value::Float(total)),
                }
            }
            "mean" => {
                let v = a.as_f64()?;
                if v.is_empty() {
                    return Err(err(ErrorKind::Value, "mean of empty array"));
                }
                Ok(Value::Float(v.iter().sum::<f64>() / v.len() as f64))
            }
            "tolist" => Ok(Value::list((0..a.len()).map(|i| a.get(i)).collect())),
            _ => Err(no_method("ndarray", name)),
        },
        other => Err(no_method(other.type_name(), name)),
    }
}

fn no_method(type_name: &str, method: &str) -> PyError {
    err(
        ErrorKind::Attribute,
        format!("'{type_name}' object has no method '{method}'"),
    )
}

/// Python-2-style `%` formatting: `"%d apples" % 3`, `"%s/%s" % (a, b)`.
///
/// Supports `%d`, `%i`, `%s`, `%r`, `%f` (with optional precision `%.3f`)
/// and `%%`.
pub fn percent_format(
    _interp: &mut Interp,
    fmt: &str,
    arg: &Value,
    _line: u32,
) -> Result<Value, PyError> {
    let values: Vec<Value> = match arg {
        Value::Tuple(t) => t.to_vec(),
        other => vec![other.clone()],
    };
    let mut out = String::with_capacity(fmt.len() + 16);
    let mut chars = fmt.chars().peekable();
    let mut next = 0usize;
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let Some(&spec) = chars.peek() else {
            return Err(err(ErrorKind::Value, "incomplete format"));
        };
        if spec == '%' {
            chars.next();
            out.push('%');
            continue;
        }
        // Optional precision for floats: %.3f
        let mut precision: Option<usize> = None;
        if spec == '.' {
            chars.next();
            let mut digits = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() {
                    digits.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            precision = Some(
                digits
                    .parse()
                    .map_err(|_| err(ErrorKind::Value, "bad precision in format string"))?,
            );
        }
        let Some(kind) = chars.next() else {
            return Err(err(ErrorKind::Value, "incomplete format"));
        };
        let value = values
            .get(next)
            .ok_or_else(|| err(ErrorKind::Type, "not enough arguments for format string"))?;
        next += 1;
        match kind {
            'd' | 'i' => match value {
                Value::Int(i) => out.push_str(&i.to_string()),
                Value::Bool(b) => out.push_str(if *b { "1" } else { "0" }),
                Value::Float(f) => out.push_str(&(f.trunc() as i64).to_string()),
                other => {
                    return Err(err(
                        ErrorKind::Type,
                        format!("%d format: a number is required, not {}", other.type_name()),
                    ))
                }
            },
            's' => out.push_str(&value.py_str()),
            'r' => out.push_str(&value.repr()),
            'f' => {
                let f = match value {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    Value::Bool(b) => *b as i64 as f64,
                    other => {
                        return Err(err(
                            ErrorKind::Type,
                            format!("%f format: a number is required, not {}", other.type_name()),
                        ))
                    }
                };
                out.push_str(&format!("{:.*}", precision.unwrap_or(6), f));
            }
            other => {
                return Err(err(
                    ErrorKind::Value,
                    format!("unsupported format character '{other}'"),
                ))
            }
        }
    }
    if next < values.len() {
        return Err(err(
            ErrorKind::Type,
            "not all arguments converted during string formatting",
        ));
    }
    Ok(Value::str(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Interp {
        let mut interp = Interp::new();
        interp.eval_module(src).unwrap();
        interp
    }

    fn g(i: &Interp, name: &str) -> Value {
        i.get_global(name).unwrap()
    }

    #[test]
    fn list_methods() {
        let i = run("l = [3, 1]\nl.append(2)\nl.sort()\nl.reverse()\np = l.pop()\nc = l.count(3)\nix = l.index(2)\n");
        assert_eq!(g(&i, "p"), Value::Int(1));
        assert_eq!(g(&i, "c"), Value::Int(1));
        assert_eq!(g(&i, "ix"), Value::Int(1));
        assert_eq!(g(&i, "l"), Value::list(vec![Value::Int(3), Value::Int(2)]));
    }

    #[test]
    fn list_extend_insert_remove() {
        let i = run("l = [1]\nl.extend([2, 3])\nl.insert(0, 0)\nl.remove(2)\n");
        assert_eq!(
            g(&i, "l"),
            Value::list(vec![Value::Int(0), Value::Int(1), Value::Int(3)])
        );
    }

    #[test]
    fn dict_methods() {
        let i = run("d = {'a': 1, 'b': 2}\nks = d.keys()\nvs = d.values()\nit = d.items()\ng1 = d.get('a')\ng2 = d.get('z', 99)\np = d.pop('a')\n");
        assert_eq!(g(&i, "g1"), Value::Int(1));
        assert_eq!(g(&i, "g2"), Value::Int(99));
        assert_eq!(g(&i, "p"), Value::Int(1));
        assert_eq!(
            g(&i, "ks"),
            Value::list(vec![Value::str("a"), Value::str("b")])
        );
        let i2 = run("d = {'a': 1}\nd.update({'b': 2})\nn = len(d)\n");
        assert_eq!(g(&i2, "n"), Value::Int(2));
    }

    #[test]
    fn dict_pop_missing_errors_without_default() {
        let mut i = Interp::new();
        let e = i.eval_module("d = {}\nd.pop('x')\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Key);
    }

    #[test]
    fn str_methods() {
        let i = run("s = '  a,b,c  '\nt = s.strip()\nparts = t.split(',')\nj = '-'.join(parts)\nu = 'ab'.upper()\nr = 'aXa'.replace('X', 'b')\nw = 'one two'.split()\n");
        assert_eq!(g(&i, "t"), Value::str("a,b,c"));
        assert_eq!(g(&i, "j"), Value::str("a-b-c"));
        assert_eq!(g(&i, "u"), Value::str("AB"));
        assert_eq!(g(&i, "r"), Value::str("aba"));
        assert_eq!(
            g(&i, "w"),
            Value::list(vec![Value::str("one"), Value::str("two")])
        );
    }

    #[test]
    fn str_predicates() {
        let i = run("a = 'select'.startswith('sel')\nb = 'file.csv'.endswith('.csv')\nc = '123'.isdigit()\nd = 'ab1'.isdigit()\nf = 'hello'.find('ll')\nn = 'hello'.find('zz')\n");
        assert_eq!(g(&i, "a"), Value::Bool(true));
        assert_eq!(g(&i, "b"), Value::Bool(true));
        assert_eq!(g(&i, "c"), Value::Bool(true));
        assert_eq!(g(&i, "d"), Value::Bool(false));
        assert_eq!(g(&i, "f"), Value::Int(2));
        assert_eq!(g(&i, "n"), Value::Int(-1));
    }

    #[test]
    fn percent_format_basics() {
        let i = run("a = 'x=%d' % 42\nb = '%s and %s' % ('a', 'b')\nc = 'pi=%.2f' % 3.14159\nd = '100%%' % ()\ne = '%r' % 'quoted'\n");
        assert_eq!(g(&i, "a"), Value::str("x=42"));
        assert_eq!(g(&i, "b"), Value::str("a and b"));
        assert_eq!(g(&i, "c"), Value::str("pi=3.14"));
        assert_eq!(g(&i, "d"), Value::str("100%"));
        assert_eq!(g(&i, "e"), Value::str("'quoted'"));
    }

    #[test]
    fn percent_format_argument_count_errors() {
        let mut i = Interp::new();
        assert!(i.eval_module("'%d %d' % 1\n").is_err());
        let mut i = Interp::new();
        assert!(i.eval_module("'%d' % (1, 2)\n").is_err());
    }

    #[test]
    fn percent_format_listing3_query() {
        // The exact pattern from paper Listing 3.
        let i = run("estimator = 32\nq = \"\"\"\n    SELECT *\n    FROM train_rnforest(\n        (SELECT data, labels\n        FROM trainingset), %d);\n\"\"\" % estimator\n");
        let q = g(&i, "q").py_str();
        assert!(q.contains("train_rnforest"));
        assert!(q.contains("32);"));
    }

    #[test]
    fn array_methods() {
        let mut i = Interp::new();
        i.set_global(
            "a",
            Value::array(crate::value::Array::Int(vec![1, 2, 3, 4])),
        );
        i.eval_module("s = a.sum()\nm = a.mean()\nl = a.tolist()\n")
            .unwrap();
        assert_eq!(g(&i, "s"), Value::Int(10));
        assert_eq!(g(&i, "m"), Value::Float(2.5));
        assert_eq!(i.value_len(&g(&i, "l"), 0).unwrap(), 4);
    }

    #[test]
    fn unknown_method_is_attribute_error() {
        let mut i = Interp::new();
        let e = i.eval_module("[].frobnicate()\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Attribute);
    }
}
