//! Runtime values for the interpreter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::ast::FunctionDef;
use crate::error::{ErrorKind, PyError};

/// A dynamically typed runtime value.
///
/// Reference-typed variants (`List`, `Dict`, …) share their payload via `Rc`,
/// matching Python's aliasing semantics (`b = a; b.append(1)` mutates `a`).
#[derive(Clone)]
pub enum Value {
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Rc<str>),
    Bytes(Rc<[u8]>),
    List(Rc<RefCell<Vec<Value>>>),
    Tuple(Rc<[Value]>),
    Dict(Rc<RefCell<Dict>>),
    /// Columnar numeric/string vector, the UDF input/output type (numpy
    /// stand-in). See [`Array`].
    Array(Rc<Array>),
    /// Lazy integer range produced by `range(...)`.
    Range {
        start: i64,
        stop: i64,
        step: i64,
    },
    Function(Rc<PyFunction>),
    Builtin(Rc<Builtin>),
    /// Native (Rust-implemented) object: file handles, `_conn`, classifiers…
    Native(Rc<dyn NativeObject>),
    Module(Rc<Module>),
}

/// A user-defined function with its captured defining environment.
pub struct PyFunction {
    pub def: Rc<FunctionDef>,
    /// Captured enclosing local scopes, innermost last (for closures).
    pub closure: Vec<Rc<RefCell<HashMap<String, Value>>>>,
}

/// A Rust-implemented callable.
pub struct Builtin {
    pub name: &'static str,
    #[allow(clippy::type_complexity)]
    pub func: Box<
        dyn Fn(&mut crate::interp::Interp, &[Value], &[(String, Value)]) -> Result<Value, PyError>,
    >,
}

/// A named bag of attributes produced by `import`.
pub struct Module {
    pub name: String,
    pub attrs: RefCell<HashMap<String, Value>>,
}

/// Trait implemented by native objects exposed to interpreted code.
pub trait NativeObject {
    /// Python-style type name (used in error messages and `repr`).
    fn type_name(&self) -> &'static str;

    /// Invoke a method. The default rejects every method.
    fn call_method(
        &self,
        name: &str,
        interp: &mut crate::interp::Interp,
        args: &[Value],
        kwargs: &[(String, Value)],
    ) -> Result<Value, PyError> {
        let _ = (interp, args, kwargs);
        Err(PyError::new(
            ErrorKind::Attribute,
            format!("'{}' object has no method '{}'", self.type_name(), name),
        ))
    }

    /// Read an attribute (non-method). The default has none.
    fn get_attr(&self, name: &str) -> Option<Value> {
        let _ = name;
        None
    }

    /// Values yielded when the object is iterated (`for x in obj`).
    fn iterate(&self) -> Option<Vec<Value>> {
        None
    }

    /// Human-readable representation.
    fn repr(&self) -> String {
        format!("<{} object>", self.type_name())
    }

    /// Serialize for `pickle.dumps`; `None` means unpicklable.
    fn pickle(&self) -> Option<(String, Vec<u8>)> {
        None
    }
}

/// Insertion-ordered dictionary with Python-style hashable keys.
#[derive(Default)]
pub struct Dict {
    entries: Vec<(Value, Value)>,
    index: HashMap<DictKey, usize>,
}

/// Hashable projection of a `Value` usable as a dict key.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum DictKey {
    None,
    Bool(bool),
    Int(i64),
    /// Bit pattern of the float (Python hashes equal int/float the same; we
    /// normalize integral floats to `Int`).
    Float(u64),
    Str(String),
    Tuple(Vec<DictKey>),
    Bytes(Vec<u8>),
}

impl DictKey {
    /// Project a value to its key form, rejecting unhashable types.
    pub fn from_value(v: &Value) -> Result<DictKey, PyError> {
        Ok(match v {
            Value::None => DictKey::None,
            Value::Bool(b) => DictKey::Bool(*b),
            Value::Int(i) => DictKey::Int(*i),
            Value::Float(f) => {
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    DictKey::Int(*f as i64)
                } else {
                    DictKey::Float(f.to_bits())
                }
            }
            Value::Str(s) => DictKey::Str(s.to_string()),
            Value::Bytes(b) => DictKey::Bytes(b.to_vec()),
            Value::Tuple(items) => DictKey::Tuple(
                items
                    .iter()
                    .map(DictKey::from_value)
                    .collect::<Result<_, _>>()?,
            ),
            other => {
                return Err(PyError::new(
                    ErrorKind::Type,
                    format!("unhashable type: '{}'", other.type_name()),
                ))
            }
        })
    }
}

impl Dict {
    pub fn new() -> Self {
        Dict::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, key: &Value) -> Result<Option<Value>, PyError> {
        let k = DictKey::from_value(key)?;
        Ok(self.index.get(&k).map(|&i| self.entries[i].1.clone()))
    }

    pub fn insert(&mut self, key: Value, value: Value) -> Result<(), PyError> {
        let k = DictKey::from_value(&key)?;
        if let Some(&i) = self.index.get(&k) {
            self.entries[i].1 = value;
        } else {
            self.index.insert(k, self.entries.len());
            self.entries.push((key, value));
        }
        Ok(())
    }

    pub fn remove(&mut self, key: &Value) -> Result<Option<Value>, PyError> {
        let k = DictKey::from_value(key)?;
        let Some(i) = self.index.remove(&k) else {
            return Ok(None);
        };
        let (_, v) = self.entries.remove(i);
        // Reindex entries after the removed slot.
        for (slot, (key, _)) in self.entries.iter().enumerate().skip(i) {
            let kk = DictKey::from_value(key).expect("stored keys are hashable");
            self.index.insert(kk, slot);
        }
        Ok(Some(v))
    }

    pub fn contains(&self, key: &Value) -> Result<bool, PyError> {
        let k = DictKey::from_value(key)?;
        Ok(self.index.contains_key(&k))
    }

    pub fn entries(&self) -> &[(Value, Value)] {
        &self.entries
    }

    /// Remove every entry.
    pub fn clear_all(&mut self) {
        self.entries.clear();
        self.index.clear();
    }

    pub fn keys(&self) -> Vec<Value> {
        self.entries.iter().map(|(k, _)| k.clone()).collect()
    }

    pub fn values(&self) -> Vec<Value> {
        self.entries.iter().map(|(_, v)| v.clone()).collect()
    }
}

/// Typed columnar vector — the stand-in for a numpy array, and the shape in
/// which MonetDB-style operator-at-a-time execution hands columns to UDFs.
#[derive(Debug, Clone, PartialEq)]
pub enum Array {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
}

impl Array {
    pub fn len(&self) -> usize {
        match self {
            Array::Int(v) => v.len(),
            Array::Float(v) => v.len(),
            Array::Bool(v) => v.len(),
            Array::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type name (for errors and reprs).
    pub fn dtype(&self) -> &'static str {
        match self {
            Array::Int(_) => "int64",
            Array::Float(_) => "float64",
            Array::Bool(_) => "bool",
            Array::Str(_) => "str",
        }
    }

    /// Fetch element `i` as a scalar value. Caller bounds-checks.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Array::Int(v) => Value::Int(v[i]),
            Array::Float(v) => Value::Float(v[i]),
            Array::Bool(v) => Value::Bool(v[i]),
            Array::Str(v) => Value::Str(Rc::from(v[i].as_str())),
        }
    }

    /// Slice `[start, end)` into a new array.
    pub fn slice(&self, start: usize, end: usize, step: usize) -> Array {
        fn pick<T: Clone>(v: &[T], start: usize, end: usize, step: usize) -> Vec<T> {
            v[start.min(v.len())..end.min(v.len())]
                .iter()
                .step_by(step.max(1))
                .cloned()
                .collect()
        }
        match self {
            Array::Int(v) => Array::Int(pick(v, start, end, step)),
            Array::Float(v) => Array::Float(pick(v, start, end, step)),
            Array::Bool(v) => Array::Bool(pick(v, start, end, step)),
            Array::Str(v) => Array::Str(pick(v, start, end, step)),
        }
    }

    /// View as f64s (bools become 0/1); errors on string arrays.
    pub fn as_f64(&self) -> Result<Vec<f64>, PyError> {
        Ok(match self {
            Array::Int(v) => v.iter().map(|&x| x as f64).collect(),
            Array::Float(v) => v.clone(),
            Array::Bool(v) => v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
            Array::Str(_) => {
                return Err(PyError::new(
                    ErrorKind::Type,
                    "cannot convert string array to float",
                ))
            }
        })
    }

    /// Build the most specific array that holds all `values`.
    ///
    /// Int-only → Int; numeric mix → Float; bool-only → Bool; str-only → Str.
    pub fn from_values(values: &[Value]) -> Result<Array, PyError> {
        let mut all_int = true;
        let mut all_bool = true;
        let mut all_str = true;
        let mut numeric = true;
        for v in values {
            match v {
                Value::Int(_) => {
                    all_bool = false;
                    all_str = false;
                }
                Value::Bool(_) => {
                    all_int = false;
                    all_str = false;
                }
                Value::Float(_) => {
                    all_int = false;
                    all_bool = false;
                    all_str = false;
                }
                Value::Str(_) => {
                    all_int = false;
                    all_bool = false;
                    numeric = false;
                }
                other => {
                    return Err(PyError::new(
                        ErrorKind::Type,
                        format!("cannot put '{}' into an array", other.type_name()),
                    ))
                }
            }
        }
        if values.is_empty() {
            return Ok(Array::Float(Vec::new()));
        }
        if all_bool {
            return Ok(Array::Bool(
                values
                    .iter()
                    .map(|v| matches!(v, Value::Bool(true)))
                    .collect(),
            ));
        }
        if all_int {
            return Ok(Array::Int(
                values
                    .iter()
                    .map(|v| if let Value::Int(i) = v { *i } else { 0 })
                    .collect(),
            ));
        }
        if all_str {
            return Ok(Array::Str(
                values
                    .iter()
                    .map(|v| {
                        if let Value::Str(s) = v {
                            s.to_string()
                        } else {
                            String::new()
                        }
                    })
                    .collect(),
            ));
        }
        if numeric {
            let mut out = Vec::with_capacity(values.len());
            for v in values {
                out.push(match v {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    Value::Bool(b) => {
                        if *b {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    _ => unreachable!("numeric flag checked"),
                });
            }
            return Ok(Array::Float(out));
        }
        Err(PyError::new(
            ErrorKind::Type,
            "mixed string/numeric values cannot form an array",
        ))
    }
}

impl Value {
    /// Python-style type name.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Dict(_) => "dict",
            Value::Array(_) => "ndarray",
            Value::Range { .. } => "range",
            Value::Function(_) => "function",
            Value::Builtin(_) => "builtin_function_or_method",
            Value::Native(n) => n.type_name(),
            Value::Module(_) => "module",
        }
    }

    /// Convenience constructors.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(Rc::from(items))
    }

    pub fn dict(d: Dict) -> Value {
        Value::Dict(Rc::new(RefCell::new(d)))
    }

    pub fn array(a: Array) -> Value {
        Value::Array(Rc::new(a))
    }

    pub fn bytes(b: Vec<u8>) -> Value {
        Value::Bytes(Rc::from(b))
    }

    /// `True` if the value is the `None` singleton.
    pub fn is_none_value(&self) -> bool {
        matches!(self, Value::None)
    }

    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Tuple(t) => !t.is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            Value::Array(a) => !a.is_empty(),
            Value::Range { start, stop, step } => {
                if *step > 0 {
                    start < stop
                } else {
                    start > stop
                }
            }
            _ => true,
        }
    }

    /// Structural equality following Python semantics (`1 == 1.0` is true;
    /// containers compare element-wise; functions compare by identity).
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Bool(a), Value::Int(b)) | (Value::Int(b), Value::Bool(a)) => (*a as i64) == *b,
            (Value::Bool(a), Value::Float(b)) | (Value::Float(b), Value::Bool(a)) => {
                (*a as i64 as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let (a, b) = (a.borrow(), b.borrow());
                if a.len() != b.len() {
                    return false;
                }
                a.entries()
                    .iter()
                    .all(|(k, v)| matches!(b.get(k), Ok(Some(ref bv)) if v.py_eq(bv)))
            }
            (Value::Array(a), Value::Array(b)) => a == b,
            (
                Value::Range { start, stop, step },
                Value::Range {
                    start: s2,
                    stop: e2,
                    step: st2,
                },
            ) => start == s2 && stop == e2 && step == st2,
            (Value::Function(a), Value::Function(b)) => Rc::ptr_eq(a, b),
            (Value::Builtin(a), Value::Builtin(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Rc::ptr_eq(a, b),
            (Value::Module(a), Value::Module(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Identity comparison (`is`).
    pub fn py_is(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::List(a), Value::List(b)) => Rc::ptr_eq(a, b),
            (Value::Dict(a), Value::Dict(b)) => Rc::ptr_eq(a, b),
            (Value::Tuple(a), Value::Tuple(b)) => Rc::ptr_eq(a, b),
            (Value::Str(a), Value::Str(b)) => Rc::ptr_eq(a, b),
            (Value::Function(a), Value::Function(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Rc::ptr_eq(a, b),
            (Value::Int(a), Value::Int(b)) => a == b,
            _ => false,
        }
    }

    /// Python `repr`.
    pub fn repr(&self) -> String {
        match self {
            Value::None => "None".to_string(),
            Value::Bool(true) => "True".to_string(),
            Value::Bool(false) => "False".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
            Value::Bytes(b) => format!("b'{}'", escape_bytes(b)),
            Value::List(l) => {
                let items: Vec<String> = l.borrow().iter().map(|v| v.repr()).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Tuple(t) => {
                let items: Vec<String> = t.iter().map(|v| v.repr()).collect();
                if items.len() == 1 {
                    format!("({},)", items[0])
                } else {
                    format!("({})", items.join(", "))
                }
            }
            Value::Dict(d) => {
                let items: Vec<String> = d
                    .borrow()
                    .entries()
                    .iter()
                    .map(|(k, v)| format!("{}: {}", k.repr(), v.repr()))
                    .collect();
                format!("{{{}}}", items.join(", "))
            }
            Value::Array(a) => {
                let n = a.len();
                let shown = n.min(8);
                let mut items = Vec::with_capacity(shown + 1);
                for i in 0..shown {
                    items.push(a.get(i).repr());
                }
                if n > shown {
                    items.push("...".to_string());
                }
                format!("array([{}], dtype={})", items.join(", "), a.dtype())
            }
            Value::Range { start, stop, step } => {
                if *step == 1 {
                    format!("range({start}, {stop})")
                } else {
                    format!("range({start}, {stop}, {step})")
                }
            }
            Value::Function(f) => format!("<function {}>", f.def.name),
            Value::Builtin(b) => format!("<built-in function {}>", b.name),
            Value::Native(n) => n.repr(),
            Value::Module(m) => format!("<module '{}'>", m.name),
        }
    }

    /// Python `str()` — like repr except strings are unquoted.
    pub fn py_str(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            other => other.repr(),
        }
    }
}

/// Format a float the way Python's `repr` does for common cases: integral
/// floats get a trailing `.0`.
pub fn format_float(f: f64) -> String {
    if f.is_nan() {
        return "nan".to_string();
    }
    if f.is_infinite() {
        return if f > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    if f == f.trunc() && f.abs() < 1e16 {
        format!("{f:.1}")
    } else {
        let s = format!("{f}");
        s
    }
}

fn escape_bytes(b: &[u8]) -> String {
    let mut out = String::new();
    for &c in b {
        match c {
            b'\\' => out.push_str("\\\\"),
            b'\'' => out.push_str("\\'"),
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\r' => out.push_str("\\r"),
            0x20..=0x7e => out.push(c as char),
            other => out.push_str(&format!("\\x{other:02x}")),
        }
    }
    out
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.repr())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.py_eq(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(3).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::list(vec![Value::Int(1)]).truthy());
        assert!(!Value::Range {
            start: 0,
            stop: 0,
            step: 1
        }
        .truthy());
        assert!(Value::Range {
            start: 0,
            stop: 5,
            step: 1
        }
        .truthy());
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int(1).py_eq(&Value::Float(1.0)));
        assert!(Value::Bool(true).py_eq(&Value::Int(1)));
        assert!(!Value::Int(1).py_eq(&Value::Float(1.5)));
    }

    #[test]
    fn list_aliasing_equality() {
        let a = Value::list(vec![Value::Int(1), Value::Int(2)]);
        let b = a.clone();
        if let (Value::List(x), Value::List(y)) = (&a, &b) {
            assert!(Rc::ptr_eq(x, y));
        }
        assert!(a.py_eq(&b));
    }

    #[test]
    fn dict_insert_get_remove_preserves_order() {
        let mut d = Dict::new();
        d.insert(Value::str("b"), Value::Int(2)).unwrap();
        d.insert(Value::str("a"), Value::Int(1)).unwrap();
        d.insert(Value::str("c"), Value::Int(3)).unwrap();
        assert_eq!(
            d.keys().iter().map(|k| k.py_str()).collect::<Vec<_>>(),
            vec!["b", "a", "c"]
        );
        d.remove(&Value::str("a")).unwrap();
        assert_eq!(
            d.keys().iter().map(|k| k.py_str()).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        // Index still consistent after removal.
        assert_eq!(d.get(&Value::str("c")).unwrap(), Some(Value::Int(3)));
        assert_eq!(d.get(&Value::str("a")).unwrap(), None);
    }

    #[test]
    fn dict_overwrites_existing_key() {
        let mut d = Dict::new();
        d.insert(Value::Int(1), Value::str("x")).unwrap();
        d.insert(Value::Int(1), Value::str("y")).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(&Value::Int(1)).unwrap().unwrap().py_str(), "y");
    }

    #[test]
    fn dict_int_float_key_unification() {
        let mut d = Dict::new();
        d.insert(Value::Int(1), Value::str("x")).unwrap();
        assert_eq!(d.get(&Value::Float(1.0)).unwrap().unwrap().py_str(), "x");
    }

    #[test]
    fn unhashable_key_rejected() {
        let mut d = Dict::new();
        assert!(d.insert(Value::list(vec![]), Value::Int(1)).is_err());
    }

    #[test]
    fn array_from_values_infers_types() {
        let a = Array::from_values(&[Value::Int(1), Value::Int(2)]).unwrap();
        assert!(matches!(a, Array::Int(_)));
        let a = Array::from_values(&[Value::Int(1), Value::Float(2.5)]).unwrap();
        assert!(matches!(a, Array::Float(_)));
        let a = Array::from_values(&[Value::Bool(true), Value::Bool(false)]).unwrap();
        assert!(matches!(a, Array::Bool(_)));
        let a = Array::from_values(&[Value::str("x")]).unwrap();
        assert!(matches!(a, Array::Str(_)));
        assert!(Array::from_values(&[Value::str("x"), Value::Int(1)]).is_err());
    }

    #[test]
    fn array_slicing() {
        let a = Array::Int((0..10).collect());
        let s = a.slice(2, 7, 2);
        assert_eq!(s, Array::Int(vec![2, 4, 6]));
    }

    #[test]
    fn reprs() {
        assert_eq!(Value::Int(3).repr(), "3");
        assert_eq!(Value::Float(3.0).repr(), "3.0");
        assert_eq!(Value::Float(3.25).repr(), "3.25");
        assert_eq!(Value::str("hi").repr(), "'hi'");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::str("a")]).repr(),
            "[1, 'a']"
        );
        assert_eq!(Value::tuple(vec![Value::Int(1)]).repr(), "(1,)");
        assert_eq!(Value::None.repr(), "None");
        assert_eq!(Value::Bool(true).repr(), "True");
    }

    #[test]
    fn array_repr_truncates() {
        let a = Value::array(Array::Int((0..100).collect()));
        let r = a.repr();
        assert!(r.contains("..."));
        assert!(r.contains("dtype=int64"));
    }

    #[test]
    fn is_identity() {
        let a = Value::list(vec![Value::Int(1)]);
        let b = a.clone();
        let c = Value::list(vec![Value::Int(1)]);
        assert!(a.py_is(&b));
        assert!(!a.py_is(&c));
        assert!(a.py_eq(&c));
        assert!(Value::None.py_is(&Value::None));
    }
}
