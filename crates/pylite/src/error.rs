//! Error type and tracebacks for the interpreter.

use std::fmt;

/// The category of a runtime or compile-time error, mirroring the Python
/// exception taxonomy closely enough for `except NameError:`-style matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    Syntax,
    Name,
    Type,
    Value,
    Index,
    Key,
    Attribute,
    ZeroDivision,
    Import,
    Io,
    Assertion,
    Stop,
    /// `raise`d by user code with an arbitrary exception name.
    User,
    /// Interpreter resource guard tripped (step budget, recursion depth).
    Resource,
}

impl ErrorKind {
    /// Python-style exception class name.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::Syntax => "SyntaxError",
            ErrorKind::Name => "NameError",
            ErrorKind::Type => "TypeError",
            ErrorKind::Value => "ValueError",
            ErrorKind::Index => "IndexError",
            ErrorKind::Key => "KeyError",
            ErrorKind::Attribute => "AttributeError",
            ErrorKind::ZeroDivision => "ZeroDivisionError",
            ErrorKind::Import => "ImportError",
            ErrorKind::Io => "IOError",
            ErrorKind::Assertion => "AssertionError",
            ErrorKind::Stop => "StopIteration",
            ErrorKind::User => "Exception",
            ErrorKind::Resource => "ResourceError",
        }
    }
}

/// One frame of a traceback: innermost last, like CPython prints them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Function name, or `<module>` for top-level code.
    pub function: String,
    /// 1-based source line within the executed module.
    pub line: u32,
}

/// A raised interpreter error carrying a Python-style traceback.
#[derive(Debug, Clone, PartialEq)]
pub struct PyError {
    pub kind: ErrorKind,
    /// For `ErrorKind::User`, the exception class name used in `raise`.
    pub user_class: Option<String>,
    pub message: String,
    /// Call chain, outermost first.
    pub traceback: Vec<TraceEntry>,
}

impl PyError {
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        PyError {
            kind,
            user_class: None,
            message: message.into(),
            traceback: Vec::new(),
        }
    }

    /// Construct a user-raised exception with an explicit class name.
    pub fn user(class: impl Into<String>, message: impl Into<String>) -> Self {
        PyError {
            kind: ErrorKind::User,
            user_class: Some(class.into()),
            message: message.into(),
            traceback: Vec::new(),
        }
    }

    /// The exception class name used for `except` matching and display.
    pub fn class_name(&self) -> &str {
        self.user_class
            .as_deref()
            .unwrap_or_else(|| self.kind.name())
    }

    /// Push a traceback frame (called while unwinding, innermost first;
    /// frames are stored outermost-first so we insert at the front).
    pub fn push_frame(&mut self, function: impl Into<String>, line: u32) {
        self.traceback.insert(
            0,
            TraceEntry {
                function: function.into(),
                line,
            },
        );
    }

    /// Innermost (most recent) source line, if known.
    pub fn innermost_line(&self) -> Option<u32> {
        self.traceback.last().map(|t| t.line)
    }

    /// Render a CPython-style traceback string.
    pub fn render(&self) -> String {
        let mut out = String::from("Traceback (most recent call last):\n");
        for entry in &self.traceback {
            out.push_str(&format!(
                "  File \"<udf>\", line {}, in {}\n",
                entry.line, entry.function
            ));
        }
        out.push_str(&format!("{}: {}", self.class_name(), self.message));
        out
    }
}

impl fmt::Display for PyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class_name(), self.message)?;
        if let Some(line) = self.innermost_line() {
            write!(f, " (line {line})")?;
        }
        Ok(())
    }
}

impl std::error::Error for PyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_frames_in_order() {
        let mut e = PyError::new(ErrorKind::Type, "bad operand");
        e.push_frame("inner", 9);
        e.push_frame("outer", 3);
        e.push_frame("<module>", 1);
        let s = e.render();
        let module_at = s.find("<module>").unwrap();
        let outer_at = s.find("outer").unwrap();
        let inner_at = s.find("inner").unwrap();
        assert!(module_at < outer_at && outer_at < inner_at, "{s}");
        assert!(s.ends_with("TypeError: bad operand"));
    }

    #[test]
    fn user_class_name_overrides_kind() {
        let e = PyError::user("MyError", "boom");
        assert_eq!(e.class_name(), "MyError");
        assert_eq!(e.kind, ErrorKind::User);
    }

    #[test]
    fn display_shows_innermost_line() {
        let mut e = PyError::new(ErrorKind::Index, "out of range");
        e.push_frame("f", 12);
        assert_eq!(e.to_string(), "IndexError: out of range (line 12)");
    }
}
