//! Interactive debugger: breakpoints, stepping, pausing and inspection.
//!
//! This is the reproduction of the paper's headline feature — "sophisticated
//! interactive debugging techniques, such as stepping through the code line
//! by line and pausing code execution" (§1) applied to UDFs running locally
//! on the developer's machine (§2.1).
//!
//! # Architecture
//!
//! The interpreter consults a [`DebugHook`] before executing every statement.
//! [`Debugger`] is the standard hook: it decides *when* to pause (breakpoint
//! hit, step completed, or explicit pause request) and then hands control to
//! a *controller* — a callback that receives a [`PauseInfo`] snapshot (stack,
//! locals, line) and answers with a [`DebugCommand`]. A CLI controller reads
//! commands from the user; test controllers replay a scripted command list.
//!
//! ```
//! use pylite::{Debugger, DebugCommand, Interp};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let mut interp = Interp::new();
//! let dbg = Debugger::with_controller(|pause| {
//!     // Pause once at line 2, look at `x`, then continue.
//!     assert_eq!(pause.line, 2);
//!     assert!(pause.locals.iter().any(|(n, v)| n == "x" && v == "1"));
//!     DebugCommand::Continue
//! });
//! dbg.borrow_mut().add_breakpoint(2);
//! interp.set_hook(dbg.clone());
//! interp.eval_module("x = 1\ny = x + 1\n").unwrap();
//! assert_eq!(dbg.borrow().pause_count(), 1);
//! ```

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use crate::error::PyError;
use crate::interp::Interp;

/// What the interpreter should do after a hook ran.
pub enum HookOutcome {
    /// Keep executing.
    Continue,
    /// Abort execution (debugger "quit").
    Terminate,
}

/// Hook consulted by the interpreter around statement execution.
pub trait DebugHook {
    /// Called before each statement. `function` is the enclosing function
    /// name, `line` the 1-based source line.
    fn on_statement(
        &mut self,
        interp: &mut Interp,
        function: &str,
        line: u32,
    ) -> Result<HookOutcome, PyError>;

    /// Called when a function frame is pushed.
    fn on_call(&mut self, function: &str, line: u32) {
        let _ = (function, line);
    }

    /// Called when a function frame is popped.
    fn on_return(&mut self, function: &str) {
        let _ = function;
    }
}

/// Command returned by a debugger controller at a pause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DebugCommand {
    /// Run until the next breakpoint.
    Continue,
    /// Execute one statement, stepping *into* calls.
    StepInto,
    /// Execute one statement, stepping *over* calls.
    StepOver,
    /// Run until the current function returns.
    StepOut,
    /// Abort execution.
    Quit,
}

/// Snapshot handed to the controller at each pause.
#[derive(Debug, Clone)]
pub struct PauseInfo {
    /// Why the debugger paused.
    pub reason: PauseReason,
    /// Function containing the next statement.
    pub function: String,
    /// 1-based line of the next statement.
    pub line: u32,
    /// Call stack, outermost first, as (function, line).
    pub stack: Vec<(String, u32)>,
    /// Innermost frame locals as (name, repr), sorted by name.
    pub locals: Vec<(String, String)>,
    /// Values of registered watch expressions as (expr, result-or-error).
    pub watches: Vec<(String, String)>,
}

/// Why a pause happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauseReason {
    Breakpoint,
    Step,
    /// First statement when `break_on_entry` is set.
    Entry,
    /// An explicit [`Debugger::request_pause`] (the IDE pause button).
    Requested,
}

enum StepMode {
    /// Only stop at breakpoints.
    Run,
    /// Stop at the next statement regardless of depth.
    Into,
    /// Stop at the next statement at depth <= the recorded depth.
    Over(usize),
    /// Stop at the next statement at depth < the recorded depth.
    Out(usize),
}

type Controller = Box<dyn FnMut(&PauseInfo) -> DebugCommand>;

/// The standard interactive debugger hook.
pub struct Debugger {
    breakpoints: BTreeSet<u32>,
    /// line → condition expression; pauses only when it evaluates truthy.
    conditional: Vec<(u32, String)>,
    watches: Vec<String>,
    mode: StepMode,
    depth: usize,
    /// Pause before the very first statement (like an IDE "Debug" button).
    pub break_on_entry: bool,
    /// One-shot pause request (the IDE pause button, §1 "pausing code
    /// execution"); consumed at the next statement boundary.
    pause_requested: bool,
    controller: Controller,
    pauses: Vec<PauseInfo>,
    /// Statements executed while this hook was installed.
    statements: u64,
}

impl Debugger {
    /// Create a debugger wrapped for installation via [`Interp::set_hook`].
    pub fn with_controller(
        controller: impl FnMut(&PauseInfo) -> DebugCommand + 'static,
    ) -> Rc<RefCell<Debugger>> {
        Rc::new(RefCell::new(Debugger {
            breakpoints: BTreeSet::new(),
            conditional: Vec::new(),
            watches: Vec::new(),
            mode: StepMode::Run,
            depth: 0,
            break_on_entry: false,
            pause_requested: false,
            controller: Box::new(controller),
            pauses: Vec::new(),
            statements: 0,
        }))
    }

    /// Create a debugger that replays a fixed command script; once the
    /// script is exhausted it continues.
    pub fn scripted(commands: Vec<DebugCommand>) -> Rc<RefCell<Debugger>> {
        let queue = RefCell::new(commands.into_iter());
        Self::with_controller(move |_pause| {
            queue.borrow_mut().next().unwrap_or(DebugCommand::Continue)
        })
    }

    /// Set a breakpoint on a 1-based source line.
    pub fn add_breakpoint(&mut self, line: u32) {
        self.breakpoints.insert(line);
    }

    /// Remove a breakpoint.
    pub fn remove_breakpoint(&mut self, line: u32) {
        self.breakpoints.remove(&line);
        self.conditional.retain(|(l, _)| *l != line);
    }

    /// Set a conditional breakpoint: pause at `line` only when `condition`
    /// (a Python expression over the paused frame) is truthy. Evaluation
    /// errors never pause (a condition referencing a not-yet-bound name is
    /// simply not met yet).
    pub fn add_conditional_breakpoint(&mut self, line: u32, condition: impl Into<String>) {
        self.conditional.push((line, condition.into()));
    }

    /// Current breakpoints, sorted.
    pub fn breakpoints(&self) -> Vec<u32> {
        self.breakpoints.iter().copied().collect()
    }

    /// Request a pause at the next statement boundary (the paper's
    /// "pausing code execution"). Safe to call from a controller callback
    /// or between runs; consumed once.
    pub fn request_pause(&mut self) {
        self.pause_requested = true;
    }

    /// Register a watch expression evaluated at every pause.
    pub fn add_watch(&mut self, expr: impl Into<String>) {
        self.watches.push(expr.into());
    }

    /// All pauses recorded so far.
    pub fn pauses(&self) -> &[PauseInfo] {
        &self.pauses
    }

    /// Number of pauses so far.
    pub fn pause_count(&self) -> usize {
        self.pauses.len()
    }

    /// Statements executed while installed (debugger overhead metric).
    pub fn statements_executed(&self) -> u64 {
        self.statements
    }

    fn should_pause(&mut self, line: u32) -> Option<PauseReason> {
        if self.pause_requested {
            self.pause_requested = false;
            return Some(PauseReason::Requested);
        }
        if self.break_on_entry && self.statements == 0 {
            return Some(PauseReason::Entry);
        }
        match self.mode {
            StepMode::Into => return Some(PauseReason::Step),
            StepMode::Over(depth) if self.depth <= depth => return Some(PauseReason::Step),
            StepMode::Out(depth) if self.depth < depth => return Some(PauseReason::Step),
            _ => {}
        }
        if self.breakpoints.contains(&line) {
            return Some(PauseReason::Breakpoint);
        }
        None
    }

    /// Evaluate conditional breakpoints for `line` against the live frame.
    fn conditional_hit(&self, interp: &mut Interp, line: u32) -> bool {
        self.conditional
            .iter()
            .filter(|(l, _)| *l == line)
            .any(|(_, cond)| {
                interp
                    .eval_in_frame(cond)
                    .map(|v| v.truthy())
                    .unwrap_or(false)
            })
    }
}

impl DebugHook for Debugger {
    fn on_statement(
        &mut self,
        interp: &mut Interp,
        function: &str,
        line: u32,
    ) -> Result<HookOutcome, PyError> {
        let mut reason = self.should_pause(line);
        if reason.is_none() && self.conditional_hit(interp, line) {
            reason = Some(PauseReason::Breakpoint);
        }
        self.statements += 1;
        let Some(reason) = reason else {
            return Ok(HookOutcome::Continue);
        };
        obs::counter!("pylite.debug.pauses").inc();
        match reason {
            PauseReason::Breakpoint => obs::counter!("pylite.debug.breakpoints").inc(),
            PauseReason::Step => obs::counter!("pylite.debug.steps").inc(),
            _ => {}
        }

        let mut watches = Vec::with_capacity(self.watches.len());
        for expr in &self.watches {
            let rendered = match interp.eval_in_frame(expr) {
                Ok(v) => v.repr(),
                Err(e) => format!("<error: {e}>"),
            };
            watches.push((expr.clone(), rendered));
        }
        let info = PauseInfo {
            reason,
            function: function.to_string(),
            line,
            stack: interp.stack(),
            locals: interp.locals_snapshot(),
            watches,
        };
        let command = (self.controller)(&info);
        self.pauses.push(info);
        match command {
            DebugCommand::Continue => {
                self.mode = StepMode::Run;
                Ok(HookOutcome::Continue)
            }
            DebugCommand::StepInto => {
                self.mode = StepMode::Into;
                Ok(HookOutcome::Continue)
            }
            DebugCommand::StepOver => {
                self.mode = StepMode::Over(self.depth);
                Ok(HookOutcome::Continue)
            }
            DebugCommand::StepOut => {
                self.mode = StepMode::Out(self.depth);
                Ok(HookOutcome::Continue)
            }
            DebugCommand::Quit => Ok(HookOutcome::Terminate),
        }
    }

    fn on_call(&mut self, _function: &str, _line: u32) {
        self.depth += 1;
    }

    fn on_return(&mut self, _function: &str) {
        self.depth = self.depth.saturating_sub(1);
    }
}

/// A lightweight hook that records every (function, line) executed.
///
/// Useful for coverage-style assertions in tests and for measuring hook
/// overhead in benchmarks.
#[derive(Default)]
pub struct LineTracer {
    /// Executed (function, line) pairs in order.
    pub trace: Vec<(String, u32)>,
}

impl LineTracer {
    pub fn new() -> Rc<RefCell<LineTracer>> {
        Rc::new(RefCell::new(LineTracer::default()))
    }
}

impl DebugHook for LineTracer {
    fn on_statement(
        &mut self,
        _interp: &mut Interp,
        function: &str,
        line: u32,
    ) -> Result<HookOutcome, PyError> {
        self.trace.push((function.to_string(), line));
        Ok(HookOutcome::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "\
def helper(v):
    doubled = v * 2
    return doubled
total = 0
for i in range(3):
    total = total + helper(i)
final = total
";

    #[test]
    fn breakpoint_pauses_with_locals() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![
            DebugCommand::Continue,
            DebugCommand::Continue,
            DebugCommand::Continue,
        ]);
        dbg.borrow_mut().add_breakpoint(2); // inside helper
        interp.set_hook(dbg.clone());
        interp.eval_module(PROGRAM).unwrap();
        let d = dbg.borrow();
        assert_eq!(d.pause_count(), 3, "helper is called three times");
        let first = &d.pauses()[0];
        assert_eq!(first.function, "helper");
        assert_eq!(first.line, 2);
        assert!(first.locals.iter().any(|(n, v)| n == "v" && v == "0"));
        assert_eq!(first.reason, PauseReason::Breakpoint);
    }

    #[test]
    fn step_into_descends_into_calls() {
        let mut interp = Interp::new();
        // Break at the call line, then step into the helper.
        let dbg = Debugger::scripted(vec![DebugCommand::StepInto, DebugCommand::Continue]);
        dbg.borrow_mut().add_breakpoint(6);
        interp.set_hook(dbg.clone());
        interp.eval_module(PROGRAM).unwrap();
        let d = dbg.borrow();
        assert!(d.pause_count() >= 2);
        assert_eq!(d.pauses()[0].line, 6);
        assert_eq!(d.pauses()[1].function, "helper");
        assert_eq!(d.pauses()[1].line, 2);
    }

    #[test]
    fn step_over_stays_in_caller() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::StepOver, DebugCommand::Continue]);
        dbg.borrow_mut().add_breakpoint(6);
        interp.set_hook(dbg.clone());
        interp.eval_module(PROGRAM).unwrap();
        let d = dbg.borrow();
        // Second pause must not be inside helper.
        assert!(d.pause_count() >= 2);
        assert_ne!(d.pauses()[1].function, "helper");
    }

    #[test]
    fn step_out_returns_to_caller() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::StepOut, DebugCommand::Continue]);
        dbg.borrow_mut().add_breakpoint(2);
        interp.set_hook(dbg.clone());
        interp.eval_module(PROGRAM).unwrap();
        let d = dbg.borrow();
        assert!(d.pause_count() >= 2);
        assert_eq!(d.pauses()[0].function, "helper");
        assert_ne!(d.pauses()[1].function, "helper");
    }

    #[test]
    fn quit_terminates_execution() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::Quit]);
        dbg.borrow_mut().add_breakpoint(4);
        interp.set_hook(dbg.clone());
        let err = interp.eval_module(PROGRAM).unwrap_err();
        assert!(err.message.contains("terminated"));
        // `final` never executed.
        assert_eq!(interp.get_global("final"), None);
    }

    #[test]
    fn break_on_entry_pauses_immediately() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::Continue]);
        dbg.borrow_mut().break_on_entry = true;
        interp.set_hook(dbg.clone());
        interp.eval_module("x = 1\ny = 2\n").unwrap();
        let d = dbg.borrow();
        assert_eq!(d.pause_count(), 1);
        assert_eq!(d.pauses()[0].reason, PauseReason::Entry);
        assert_eq!(d.pauses()[0].line, 1);
    }

    #[test]
    fn watches_evaluate_at_pause() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::Continue]);
        {
            let mut d = dbg.borrow_mut();
            d.add_breakpoint(3);
            d.add_watch("x * 10");
            d.add_watch("undefined_name");
        }
        interp.set_hook(dbg.clone());
        interp.eval_module("x = 4\ny = 5\nz = x + y\n").unwrap();
        let d = dbg.borrow();
        let watches = &d.pauses()[0].watches;
        assert_eq!(watches[0], ("x * 10".to_string(), "40".to_string()));
        assert!(watches[1].1.starts_with("<error:"));
    }

    #[test]
    fn stack_reflects_call_chain() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::Continue]);
        dbg.borrow_mut().add_breakpoint(2);
        interp.set_hook(dbg.clone());
        interp
            .eval_module(
                "def inner():\n    return 1\ndef outer():\n    return inner()\nr = outer()\n",
            )
            .unwrap();
        let d = dbg.borrow();
        let stack = &d.pauses()[0].stack;
        let names: Vec<&str> = stack.iter().map(|(f, _)| f.as_str()).collect();
        assert_eq!(names, vec!["<module>", "outer", "inner"]);
    }

    #[test]
    fn line_tracer_records_execution_order() {
        let mut interp = Interp::new();
        let tracer = LineTracer::new();
        interp.set_hook(tracer.clone());
        interp
            .eval_module("a = 1\nif a:\n    b = 2\nc = 3\n")
            .unwrap();
        let lines: Vec<u32> = tracer.borrow().trace.iter().map(|(_, l)| *l).collect();
        assert_eq!(lines, vec![1, 2, 3, 4]);
    }

    #[test]
    fn removing_breakpoint_stops_pausing() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![]);
        dbg.borrow_mut().add_breakpoint(1);
        dbg.borrow_mut().remove_breakpoint(1);
        interp.set_hook(dbg.clone());
        interp.eval_module("x = 1\n").unwrap();
        assert_eq!(dbg.borrow().pause_count(), 0);
    }

    #[test]
    fn requested_pause_fires_once_at_next_statement() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::Continue; 4]);
        dbg.borrow_mut().request_pause();
        interp.set_hook(dbg.clone());
        interp
            .eval_module(
                "a = 1
b = 2
c = 3
",
            )
            .unwrap();
        let d = dbg.borrow();
        assert_eq!(d.pause_count(), 1);
        assert_eq!(d.pauses()[0].reason, PauseReason::Requested);
        assert_eq!(d.pauses()[0].line, 1);
    }

    #[test]
    fn conditional_breakpoint_pauses_only_when_true() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::Continue; 8]);
        // Pause in helper only when v == 2 (the third call).
        dbg.borrow_mut().add_conditional_breakpoint(2, "v == 2");
        interp.set_hook(dbg.clone());
        interp.eval_module(PROGRAM).unwrap();
        let d = dbg.borrow();
        assert_eq!(d.pause_count(), 1);
        assert!(d.pauses()[0]
            .locals
            .iter()
            .any(|(n, v)| n == "v" && v == "2"));
    }

    #[test]
    fn conditional_breakpoint_with_bad_expression_never_pauses() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::Continue; 8]);
        dbg.borrow_mut()
            .add_conditional_breakpoint(2, "no_such_name > 1");
        interp.set_hook(dbg.clone());
        interp.eval_module(PROGRAM).unwrap();
        assert_eq!(dbg.borrow().pause_count(), 0);
    }

    #[test]
    fn remove_breakpoint_clears_conditionals_too() {
        let mut interp = Interp::new();
        let dbg = Debugger::scripted(vec![DebugCommand::Continue; 8]);
        dbg.borrow_mut().add_conditional_breakpoint(2, "True");
        dbg.borrow_mut().remove_breakpoint(2);
        interp.set_hook(dbg.clone());
        interp.eval_module(PROGRAM).unwrap();
        assert_eq!(dbg.borrow().pause_count(), 0);
    }

    #[test]
    fn scenario_a_debugging_reveals_sign_bug() {
        // Paper Scenario A: step through the buggy mean_deviation and watch
        // `distance` go negative — impossible for a true absolute deviation.
        let src = "\
def mean_deviation(column):
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation
result = mean_deviation([1, 2, 3, 4, 5])
";
        let mut interp = Interp::new();
        let seen_negative = Rc::new(RefCell::new(false));
        let flag = seen_negative.clone();
        let dbg = Debugger::with_controller(move |pause| {
            for (name, value) in &pause.locals {
                if name == "distance" && value.starts_with('-') {
                    *flag.borrow_mut() = true;
                }
            }
            DebugCommand::Continue
        });
        dbg.borrow_mut().add_breakpoint(8); // the buggy accumulation line
        interp.set_hook(dbg.clone());
        interp.eval_module(src).unwrap();
        assert!(
            *seen_negative.borrow(),
            "stepping should reveal a negative running distance (the missing abs)"
        );
    }
}
