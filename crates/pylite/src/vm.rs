//! Bytecode dispatch loop (the execute half of the bytecode VM).
//!
//! `run` executes a [`CodeObject`] produced by [`crate::compile`]
//! against the current interpreter frame. The VM owns only *control*
//! state — a value stack, an iterator stack, and the `try`/pending
//! stacks — while all *value* semantics (operators, calls, indexing,
//! name resolution, error formatting) delegate to the same
//! [`crate::Interp`] helpers the AST walker uses, which is how
//! the two execution modes stay observably identical.
//!
//! # The slot cache
//!
//! The walker's dominant cost is name traffic: every load hashes into
//! the frame's `HashMap` scope and every store allocates a fresh key
//! `String`. The VM instead keeps a per-run *slot cache* parallel to the
//! code object's name table. A slot is `Stale` (must consult the real
//! scope), `Clean` (cached copy of the scope value), or `Dirty` (written
//! here but not yet visible in the scope). The real scope `HashMap`s
//! remain the source of truth; the cache is synchronized at *barriers*:
//!
//! * **flush** — write `Dirty` slots back through
//!   `Interp::bind_name` (which routes `global`-declared names to the
//!   module scope exactly like the walker);
//! * **invalidate** — mark every slot `Stale` after foreign code may
//!   have rebound names (a Python-function call, a native method on a
//!   [`Value::Native`] receiver, a debug-hook pause, an import).
//!
//! Calls to builtins with only inert arguments (no functions, natives
//! or modules) skip the barrier — that keeps `append`/`int`/`len` hot
//! loops allocation-free, and is sound because no builtin reaches the
//! interpreter's scopes except by calling a function-valued argument.
//!
//! The cache also flushes whenever control leaves the frame (return,
//! early module exit, or error propagation), so partially executed
//! statements leave exactly the bindings behind that the walker would.
//!
//! # Debugger parity
//!
//! [`Instr::Trace`] replicates the walker's statement preamble: bump
//! the statement counter, record the line in the frame (so
//! `Interp::stack` and tracebacks agree), charge the step budget, then
//! consult the debug hook behind a full barrier — watches evaluated by
//! the debugger read the real scopes, never the cache. Breakpoints and
//! stepping therefore behave identically in both [`crate::ExecMode`]s.
//!
//! # Example: a breakpoint pauses the VM on a line-table line
//!
//! ```
//! use pylite::{compile_module, DebugCommand, Debugger, ExecMode, Interp, Value};
//!
//! let module = pylite::parse_module("x = 1\ny = x + 1\nz = y * 2\n").unwrap();
//! let code = compile_module(&module);
//! // The line table advertises which lines can take a breakpoint.
//! assert_eq!(code.statement_lines(), vec![1, 2, 3]);
//!
//! let dbg = Debugger::scripted(vec![DebugCommand::Continue]);
//! dbg.borrow_mut().add_breakpoint(2);
//! let mut interp = Interp::new();
//! interp.set_exec_mode(ExecMode::Bytecode);
//! interp.set_hook(dbg.clone());
//! interp.run_code(&code).unwrap();
//!
//! // Paused once, on line 2, before `y` was bound; then ran to the end.
//! assert_eq!(dbg.borrow().pauses().len(), 1);
//! assert_eq!(dbg.borrow().pauses()[0].line, 2);
//! assert!(!dbg.borrow().pauses()[0].locals.iter().any(|(n, _)| n == "y"));
//! assert_eq!(interp.get_global("z"), Some(Value::Int(4)));
//! ```

use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{BinOp, CmpOp};
use crate::compile::{CodeObject, Instr, PendingKind};
use crate::debugger::HookOutcome;
use crate::error::{ErrorKind, PyError};
use crate::interp::{Flow, Interp};
use crate::value::{Dict, Value};

/// Control transfer produced by one instruction.
enum Ctl {
    Next,
    Jump(u32),
    /// Leave the frame with walker-compatible flow (`Return`, or
    /// `Break` for stray `break`/`continue` escaping the frame).
    Leave(Flow),
}

enum Iter {
    /// Lazy `range` iteration, walker parity for `for i in range(...)`.
    Range {
        i: i64,
        stop: i64,
        step: i64,
    },
    Seq {
        items: Vec<Value>,
        idx: usize,
    },
}

enum Pending {
    Normal,
    Return(Value),
    Break,
    Continue,
    Err(PyError),
}

struct TryEntry {
    handler: u32,
    vstack: usize,
    iters: usize,
    pendings: usize,
    errs: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum SlotState {
    Stale,
    Clean,
    Dirty,
}

struct Slots {
    vals: Vec<Value>,
    state: Vec<SlotState>,
}

impl Slots {
    fn new(n: usize) -> Self {
        Slots {
            vals: vec![Value::None; n],
            state: vec![SlotState::Stale; n],
        }
    }

    /// Make slot `i` non-stale (resolving through the walker's name
    /// lookup on a miss) without cloning the value out.
    #[inline(always)]
    fn fill(
        &mut self,
        interp: &mut Interp,
        code: &CodeObject,
        i: u16,
        line: u32,
    ) -> Result<(), PyError> {
        let i = i as usize;
        if self.state[i] == SlotState::Stale {
            self.vals[i] = interp.lookup_name(&code.names[i], line)?;
            self.state[i] = SlotState::Clean;
        }
        Ok(())
    }

    /// Borrow a slot value previously made non-stale by [`Self::fill`].
    /// Fused instructions read operands through this to avoid a
    /// clone/drop pair per operand.
    #[inline(always)]
    fn get(&self, i: u16) -> &Value {
        &self.vals[i as usize]
    }

    #[inline(always)]
    fn load(
        &mut self,
        interp: &mut Interp,
        code: &CodeObject,
        i: u16,
        line: u32,
    ) -> Result<Value, PyError> {
        self.fill(interp, code, i, line)?;
        Ok(self.vals[i as usize].clone())
    }

    #[inline(always)]
    fn store(&mut self, i: u16, v: Value) {
        let i = i as usize;
        self.vals[i] = v;
        self.state[i] = SlotState::Dirty;
    }

    /// Write dirty slots back to the real scopes.
    fn flush(&mut self, interp: &mut Interp, code: &CodeObject) -> Result<(), PyError> {
        for i in 0..self.state.len() {
            if self.state[i] == SlotState::Dirty {
                interp.bind_name(&code.names[i], self.vals[i].clone())?;
                self.state[i] = SlotState::Clean;
            }
        }
        Ok(())
    }

    /// Foreign code may have rebound anything: forget all cached values.
    fn invalidate(&mut self) {
        for s in &mut self.state {
            *s = SlotState::Stale;
        }
    }

    fn barrier(&mut self, interp: &mut Interp, code: &CodeObject) -> Result<(), PyError> {
        self.flush(interp, code)?;
        self.invalidate();
        Ok(())
    }
}

/// `true` when passing `v` to a builtin cannot reach interpreter scopes
/// (builtins only touch names by *calling* function-valued arguments).
fn inert(v: &Value) -> bool {
    !matches!(v, Value::Function(_) | Value::Native(_) | Value::Module(_))
}

struct State {
    stack: Vec<Value>,
    iters: Vec<Iter>,
    trys: Vec<TryEntry>,
    pendings: Vec<Pending>,
    errs: Vec<PyError>,
    slots: Slots,
}

impl State {
    fn pop(&mut self) -> Value {
        self.stack.pop().expect("vm: value stack underflow")
    }

    fn popn(&mut self, n: usize) -> Vec<Value> {
        self.stack.split_off(self.stack.len() - n)
    }
}

/// Execute `code` in the interpreter's current frame, returning the
/// same [`Flow`] the walker's `exec_block` would produce.
pub(crate) fn run(interp: &mut Interp, code: &CodeObject) -> Result<Flow, PyError> {
    let mut st = State {
        stack: Vec::with_capacity(16),
        iters: Vec::new(),
        trys: Vec::new(),
        pendings: Vec::new(),
        errs: Vec::new(),
        slots: Slots::new(code.names.len()),
    };
    let mut pc = 0usize;
    loop {
        match exec(interp, code, &mut st, pc) {
            Ok(Ctl::Next) => pc += 1,
            Ok(Ctl::Jump(t)) => pc = t as usize,
            Ok(Ctl::Leave(flow)) => {
                st.slots.flush(interp, code)?;
                return Ok(flow);
            }
            Err(e) => match st.trys.pop() {
                Some(t) => {
                    st.stack.truncate(t.vstack);
                    st.iters.truncate(t.iters);
                    st.pendings.truncate(t.pendings);
                    st.errs.truncate(t.errs);
                    st.errs.push(e);
                    pc = t.handler as usize;
                }
                None => {
                    // Bindings made before the error stay visible,
                    // exactly as the walker's eager binds would.
                    st.slots.flush(interp, code).ok();
                    return Err(e);
                }
            },
        }
    }
}

#[inline(always)]
fn exec(interp: &mut Interp, code: &CodeObject, st: &mut State, pc: usize) -> Result<Ctl, PyError> {
    let line = code.lines[pc];
    match &code.instrs[pc] {
        Instr::Trace => {
            interp.stmts_executed += 1;
            if let Some(frame) = interp.frames.last_mut() {
                frame.line = line;
            }
            if interp.steps_left.is_some() || interp.hook.is_some() || interp.prof.is_some() {
                trace_slow(interp, code, st, line)?;
            }
        }
        Instr::LoadConst(i) => st.stack.push(code.consts[*i as usize].clone()),
        Instr::Load(i) => {
            let v = st.slots.load(interp, code, *i, line)?;
            st.stack.push(v);
        }
        Instr::Store(i) => {
            let v = st.pop();
            st.slots.store(*i, v);
        }
        Instr::Delete(i) => {
            // `del` must see a pending store before removing it.
            let idx = *i as usize;
            if st.slots.state[idx] == SlotState::Dirty {
                interp.bind_name(&code.names[idx], st.slots.vals[idx].clone())?;
            }
            st.slots.state[idx] = SlotState::Stale;
            interp.delete_name(&code.names[idx], line)?;
        }
        Instr::Pop => {
            st.pop();
        }
        Instr::Dup => {
            let v = st.stack.last().expect("vm: dup on empty stack").clone();
            st.stack.push(v);
        }
        Instr::BuildTuple(n) => {
            let vs = st.popn(*n as usize);
            st.stack.push(Value::tuple(vs));
        }
        Instr::BuildList(n) => {
            let vs = st.popn(*n as usize);
            st.stack.push(Value::list(vs));
        }
        Instr::BuildDict(n) => {
            let kvs = st.popn(*n as usize * 2);
            let mut d = Dict::new();
            let mut it = kvs.into_iter();
            while let (Some(k), Some(v)) = (it.next(), it.next()) {
                d.insert(k, v)?;
            }
            st.stack.push(Value::dict(d));
        }
        Instr::BinOp(op) => {
            let r = st.pop();
            let l = st.pop();
            let v = match binop_fast(*op, &l, &r) {
                Some(v) => v,
                None => interp.binop(*op, &l, &r, line)?,
            };
            st.stack.push(v);
        }
        Instr::BinOpName { op, rhs } => {
            st.slots.fill(interp, code, *rhs, line)?;
            let l = st.pop();
            let v = match binop_fast(*op, &l, st.slots.get(*rhs)) {
                Some(v) => v,
                None => {
                    let r = st.slots.get(*rhs).clone();
                    interp.binop(*op, &l, &r, line)?
                }
            };
            st.stack.push(v);
        }
        Instr::IndexBinOpName { obj, idx, op, rhs } => {
            st.slots.fill(interp, code, *obj, line)?;
            st.slots.fill(interp, code, *idx, line)?;
            let item = match get_item_fast(st.slots.get(*obj), st.slots.get(*idx)) {
                Some(v) => v,
                None => get_item_cold(interp, code, st, *obj, *idx, line)?,
            };
            // Walker order: the right name resolves after the read.
            st.slots.fill(interp, code, *rhs, line)?;
            let v = match binop_fast(*op, &item, st.slots.get(*rhs)) {
                Some(v) => v,
                None => {
                    let r = st.slots.get(*rhs).clone();
                    interp.binop(*op, &item, &r, line)?
                }
            };
            st.stack.push(v);
        }
        Instr::BinOpStore { op, slot } => {
            let r = st.pop();
            let l = st.pop();
            let v = match binop_fast(*op, &l, &r) {
                Some(v) => v,
                None => interp.binop(*op, &l, &r, line)?,
            };
            st.slots.store(*slot, v);
        }
        Instr::AugIndex {
            target,
            op,
            obj,
            idx,
        } => {
            // Walker order: read target, index, combine, rebind.
            st.slots.fill(interp, code, *target, line)?;
            st.slots.fill(interp, code, *obj, line)?;
            st.slots.fill(interp, code, *idx, line)?;
            let item = match get_item_fast(st.slots.get(*obj), st.slots.get(*idx)) {
                Some(v) => v,
                None => get_item_cold(interp, code, st, *obj, *idx, line)?,
            };
            let v = match binop_fast(*op, st.slots.get(*target), &item) {
                Some(v) => v,
                None => {
                    let cur = st.slots.get(*target).clone();
                    interp.binop(*op, &cur, &item, line)?
                }
            };
            st.slots.store(*target, v);
        }
        Instr::UnaryOp(op) => {
            let v = st.pop();
            let v = interp.unaryop(*op, &v, line)?;
            st.stack.push(v);
        }
        Instr::Compare(op) => {
            let r = st.pop();
            let l = st.pop();
            let v = if let Some(b) = cmp_fast(*op, &l, &r) {
                Value::Bool(b)
            } else if matches!(l, Value::Array(_)) || matches!(r, Value::Array(_)) {
                interp.array_compare(*op, &l, &r, line)?
            } else {
                Value::Bool(interp.compare_once(*op, &l, &r, line)?)
            };
            st.stack.push(v);
        }
        Instr::CmpChain(op, target) => {
            let r = st.pop();
            let l = st.pop();
            if interp.compare_once(*op, &l, &r, line)? {
                st.stack.push(r);
            } else {
                st.stack.push(Value::Bool(false));
                return Ok(Ctl::Jump(*target));
            }
        }
        Instr::CmpLast(op) => {
            let r = st.pop();
            let l = st.pop();
            let b = interp.compare_once(*op, &l, &r, line)?;
            st.stack.push(Value::Bool(b));
        }
        Instr::Jump(t) => return Ok(Ctl::Jump(*t)),
        Instr::PopJumpIfFalse(t) => {
            if !st.pop().truthy() {
                return Ok(Ctl::Jump(*t));
            }
        }
        Instr::PopJumpIfTrue(t) => {
            if st.pop().truthy() {
                return Ok(Ctl::Jump(*t));
            }
        }
        Instr::JumpIfFalseKeep(t) => {
            if !st.stack.last().expect("vm: empty stack").truthy() {
                return Ok(Ctl::Jump(*t));
            }
        }
        Instr::JumpIfTrueKeep(t) => {
            if st.stack.last().expect("vm: empty stack").truthy() {
                return Ok(Ctl::Jump(*t));
            }
        }
        Instr::GetItem => {
            let idx = st.pop();
            let obj = st.pop();
            let v = match get_item_fast(&obj, &idx) {
                Some(v) => v,
                None => {
                    if matches!(obj, Value::Native(_)) {
                        // `__getitem__` on a native object runs arbitrary code.
                        st.slots.barrier(interp, code)?;
                    }
                    interp.get_item(&obj, &idx, line)?
                }
            };
            st.stack.push(v);
        }
        Instr::LoadIndex(o, i) => {
            st.slots.fill(interp, code, *o, line)?;
            st.slots.fill(interp, code, *i, line)?;
            let v = match get_item_fast(st.slots.get(*o), st.slots.get(*i)) {
                Some(v) => v,
                None => get_item_cold(interp, code, st, *o, *i, line)?,
            };
            st.stack.push(v);
        }
        Instr::SetItem => {
            let idx = st.pop();
            let obj = st.pop();
            let value = st.pop();
            interp.set_item(&obj, &idx, value, line)?;
        }
        Instr::DelItem => {
            let idx = st.pop();
            let obj = st.pop();
            interp.del_item(&obj, &idx, line)?;
        }
        Instr::SliceLen => {
            let len = {
                let obj = st.stack.last().expect("vm: empty stack");
                interp.value_len(obj, line)?
            };
            st.stack.push(Value::Int(len as i64));
        }
        Instr::SliceGet {
            has_step,
            has_lo,
            has_hi,
        } => {
            let hi = has_hi.then(|| st.pop());
            let lo = has_lo.then(|| st.pop());
            let step_v = has_step.then(|| st.pop());
            let len = match st.pop() {
                Value::Int(n) => n as usize,
                _ => unreachable!("vm: SliceLen pushes Int"),
            };
            let obj = st.pop();
            // Walker conversion order: step, then lower, then upper.
            let step = match step_v {
                Some(Value::Int(0)) => {
                    return Err(interp.err_at(ErrorKind::Value, "slice step cannot be zero", line))
                }
                Some(Value::Int(i)) => i,
                Some(other) => {
                    return Err(interp.err_at(
                        ErrorKind::Type,
                        format!("slice step must be int, not {}", other.type_name()),
                        line,
                    ))
                }
                None => 1,
            };
            let lo = slice_bound_value(interp, lo, line)?;
            let hi = slice_bound_value(interp, hi, line)?;
            let v = interp.slice_select(&obj, lo, hi, step, len, line)?;
            st.stack.push(v);
        }
        Instr::LoadAttr(i) => {
            let obj = st.pop();
            let v = interp.get_attribute(&obj, &code.names[*i as usize], line)?;
            st.stack.push(v);
        }
        Instr::SetAttr(i) => {
            let obj = st.pop();
            let value = st.pop();
            match obj {
                Value::Module(m) => {
                    m.attrs
                        .borrow_mut()
                        .insert(code.names[*i as usize].clone(), value);
                }
                other => {
                    return Err(interp.err_at(
                        ErrorKind::Attribute,
                        format!(
                            "cannot set attribute '{}' on '{}'",
                            code.names[*i as usize],
                            other.type_name()
                        ),
                        line,
                    ))
                }
            }
        }
        Instr::Call { argc, kwlist } => {
            let callee = st.pop();
            // Small keyword-less calls keep their arguments in a stack
            // buffer — the hot `abs`/`len`/`int` shape never heap-allocates.
            let v = if *kwlist == 0 && *argc <= 4 {
                let n = *argc as usize;
                let mut buf = [Value::None, Value::None, Value::None, Value::None];
                for a in buf[..n].iter_mut().rev() {
                    *a = st.pop();
                }
                call_small(interp, code, st, &callee, &buf[..n], line)?
            } else {
                let kwargs = pop_kwargs(st, code, *kwlist);
                let args = st.popn(*argc as usize);
                let pure = matches!(callee, Value::Builtin(_))
                    && args.iter().all(inert)
                    && kwargs.iter().all(|(_, v)| inert(v));
                if !pure {
                    st.slots.barrier(interp, code)?;
                }
                call_wrapped(interp, &callee, &args, &kwargs, line)?
            };
            st.stack.push(v);
        }
        Instr::CallName { func, argc } => {
            let n = *argc as usize;
            let mut buf = [Value::None, Value::None, Value::None, Value::None];
            for a in buf[..n].iter_mut().rev() {
                *a = st.pop();
            }
            st.slots.fill(interp, code, *func, line)?;
            let args = &buf[..n];
            // Borrowing the callee out of the slot is sound: `st` and
            // `interp` are disjoint, and builtins never touch slots.
            let v = match st.slots.get(*func) {
                Value::Builtin(b) if args.iter().all(inert) => match builtin_fast(b.name, args) {
                    Some(v) => v,
                    None => interp.call_builtin(b, args, &[], line)?,
                },
                callee => {
                    let callee = callee.clone();
                    st.slots.barrier(interp, code)?;
                    call_wrapped(interp, &callee, args, &[], line)?
                }
            };
            st.stack.push(v);
        }
        Instr::CallMethod { name, argc, kwlist } => {
            let obj = st.pop();
            let kwargs = pop_kwargs(st, code, *kwlist);
            let args = st.popn(*argc as usize);
            let pure =
                inert(&obj) && args.iter().all(inert) && kwargs.iter().all(|(_, v)| inert(v));
            if !pure {
                st.slots.barrier(interp, code)?;
            }
            let v = interp
                .call_method(&obj, &code.names[*name as usize], &args, &kwargs, line)
                .map_err(|mut e| {
                    if e.traceback.is_empty() {
                        e.push_frame(interp.current_function_name(), line);
                    }
                    e
                })?;
            st.stack.push(v);
        }
        Instr::MakeFunction(i) => {
            // The closure captures the live scope maps: make pending
            // stores visible before they are snapshotted into reads.
            st.slots.flush(interp, code)?;
            let def = code.funcs[*i as usize].clone();
            let closure = interp.current_closure();
            st.stack
                .push(Value::Function(Rc::new(crate::value::PyFunction {
                    def,
                    closure,
                })));
        }
        Instr::GetIter => {
            let v = st.pop();
            match v {
                Value::Range { start, stop, step } => {
                    if step == 0 {
                        return Err(interp.err_at(
                            ErrorKind::Value,
                            "range() step must not be zero",
                            line,
                        ));
                    }
                    st.iters.push(Iter::Range {
                        i: start,
                        stop,
                        step,
                    });
                }
                other => {
                    let items = interp.iter_values(&other, line)?;
                    st.iters.push(Iter::Seq { items, idx: 0 });
                }
            }
        }
        Instr::ForIter(t) => match iter_next(&mut st.iters) {
            Some(v) => st.stack.push(v),
            None => {
                st.iters.pop();
                return Ok(Ctl::Jump(*t));
            }
        },
        Instr::ForIterStore { slot, exit } => match iter_next(&mut st.iters) {
            Some(v) => st.slots.store(*slot, v),
            None => {
                st.iters.pop();
                return Ok(Ctl::Jump(*exit));
            }
        },
        Instr::PopIter => {
            st.iters.pop();
        }
        Instr::UnpackSeq(n) => {
            let v = st.pop();
            let values = interp.iter_values(&v, line)?;
            if values.len() != *n as usize {
                return Err(interp.err_at(
                    ErrorKind::Value,
                    format!("cannot unpack {} values into {} targets", values.len(), n),
                    line,
                ));
            }
            for v in values.into_iter().rev() {
                st.stack.push(v);
            }
        }
        Instr::ListAppend => {
            let item = st.pop();
            match st.stack.last().expect("vm: ListAppend without list") {
                Value::List(l) => l.borrow_mut().push(item),
                _ => unreachable!("vm: ListAppend on non-list"),
            }
        }
        Instr::LoadModule(i) => {
            st.slots.barrier(interp, code)?;
            let v = interp.load_module(&code.names[*i as usize], line)?;
            st.stack.push(v);
        }
        Instr::FromAttr { module, name } => {
            let mname = &code.names[*module as usize];
            let attr_name = &code.names[*name as usize];
            let Some(Value::Module(m)) = st.stack.last() else {
                return Err(interp.err_at(
                    ErrorKind::Import,
                    format!("'{mname}' is not a module"),
                    line,
                ));
            };
            let attr = m.attrs.borrow().get(attr_name).cloned().ok_or_else(|| {
                interp.err_at(
                    ErrorKind::Import,
                    format!("cannot import name '{attr_name}' from '{mname}'"),
                    line,
                )
            })?;
            st.stack.push(attr);
        }
        Instr::SetupTry(handler) => st.trys.push(TryEntry {
            handler: *handler,
            vstack: st.stack.len(),
            iters: st.iters.len(),
            pendings: st.pendings.len(),
            errs: st.errs.len(),
        }),
        Instr::PopTry => {
            st.trys.pop();
        }
        Instr::ErrMatch(class) => {
            let err = st.errs.last().expect("vm: ErrMatch without error");
            let matched = match class {
                None => true,
                Some(i) => {
                    let c = &code.names[*i as usize];
                    c == err.class_name() || c == "Exception"
                }
            };
            st.stack.push(Value::Bool(matched));
        }
        Instr::PushErrMsg => {
            let err = st.errs.last().expect("vm: PushErrMsg without error");
            st.stack.push(Value::str(err.message.clone()));
        }
        Instr::PopErr => {
            st.errs.pop();
        }
        Instr::Reraise => {
            let e = st.errs.pop().expect("vm: Reraise without error");
            return Err(e);
        }
        Instr::PushPending(kind) => {
            let p = match kind {
                PendingKind::Normal => Pending::Normal,
                PendingKind::Return => Pending::Return(st.pop()),
                PendingKind::Break => Pending::Break,
                PendingKind::Continue => Pending::Continue,
                PendingKind::Err => Pending::Err(st.errs.pop().expect("vm: pending without error")),
            };
            st.pendings.push(p);
        }
        Instr::PopPending => {
            st.pendings.pop();
        }
        Instr::PendingJump {
            on_return,
            on_break,
            on_continue,
        } => match st.pendings.pop().expect("vm: PendingJump without pending") {
            Pending::Normal => {}
            Pending::Return(v) => {
                st.stack.push(v);
                return Ok(Ctl::Jump(*on_return));
            }
            Pending::Break => return Ok(Ctl::Jump(*on_break)),
            Pending::Continue => return Ok(Ctl::Jump(*on_continue)),
            // The suspended error resumes propagation (an enclosing
            // `try` in this frame may still catch it).
            Pending::Err(e) => return Err(e),
        },
        Instr::Return => {
            let v = st.pop();
            return Ok(Ctl::Leave(Flow::Return(v)));
        }
        Instr::FlowBreak => return Ok(Ctl::Leave(Flow::Break)),
        Instr::RaiseClass { class, has_msg } => {
            let msg = if *has_msg {
                st.pop().py_str()
            } else {
                String::new()
            };
            let mut err = PyError::user(code.names[*class as usize].clone(), msg);
            err.push_frame(interp.current_function_name(), line);
            return Err(err);
        }
        Instr::RaiseValue => {
            let v = st.pop();
            return Err(PyError::user("Exception", v.py_str()));
        }
        Instr::RaiseBare => {
            return Err(PyError::user(
                "RuntimeError",
                "re-raise outside except is not supported",
            ));
        }
        Instr::AssertFail { has_msg } => {
            let msg = if *has_msg {
                st.pop().py_str()
            } else {
                "assertion failed".to_string()
            };
            return Err(interp.err_at(ErrorKind::Assertion, msg, line));
        }
        Instr::StaticErr { kind, msg } => {
            let msg = match &code.consts[*msg as usize] {
                Value::Str(s) => s.to_string(),
                _ => unreachable!("vm: StaticErr message is a string const"),
            };
            return Err(interp.err_at(*kind, msg, line));
        }
    }
    Ok(Ctl::Next)
}

/// The statement-budget, line-profiler and debug-hook half of `Trace`,
/// out-of-line so the unhooked, unbudgeted hot path stays a single
/// predicted branch.
/// The hook runs arbitrary watch expressions against the real scopes:
/// synchronize before, distrust after.
#[cold]
fn trace_slow(
    interp: &mut Interp,
    code: &CodeObject,
    st: &mut State,
    line: u32,
) -> Result<(), PyError> {
    if let Some(budget) = interp.steps_left.as_mut() {
        if *budget == 0 {
            return Err(PyError::new(
                ErrorKind::Resource,
                "statement budget exhausted (possible infinite loop)",
            ));
        }
        *budget -= 1;
    }
    if interp.prof.is_some() {
        interp.prof_statement(line);
    }
    let Some(hook) = interp.hook.clone() else {
        return Ok(());
    };
    st.slots.barrier(interp, code)?;
    let outcome = {
        let fname = interp
            .frames
            .last()
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<module>".to_string());
        hook.borrow_mut().on_statement(interp, &fname, line)?
    };
    st.slots.invalidate();
    if matches!(outcome, HookOutcome::Terminate) {
        return Err(PyError::new(ErrorKind::Resource, "terminated by debugger"));
    }
    Ok(())
}

/// Keyword-less small-call path shared by `Call` and `CallName`:
/// inert-argument builtin calls go straight to the builtin (no
/// barrier, no heap args); everything else synchronizes the slot
/// cache and takes the generic call path.
#[inline(always)]
fn call_small(
    interp: &mut Interp,
    code: &CodeObject,
    st: &mut State,
    callee: &Value,
    args: &[Value],
    line: u32,
) -> Result<Value, PyError> {
    if let Value::Builtin(b) = callee {
        if args.iter().all(inert) {
            if let Some(v) = builtin_fast(b.name, args) {
                return Ok(v);
            }
            return interp.call_builtin(b, args, &[], line);
        }
    }
    st.slots.barrier(interp, code)?;
    call_wrapped(interp, callee, args, &[], line)
}

/// Intrinsic tier for the hottest builtin shape: `abs` on a scalar
/// number, mirroring `builtins.rs` exactly (`i64::abs`, `f64::abs`).
/// `None` routes through the boxed builtin — the single source of
/// truth for every other argument shape and for all error text.
#[inline(always)]
fn builtin_fast(name: &str, args: &[Value]) -> Option<Value> {
    if name != "abs" || args.len() != 1 {
        return None;
    }
    match &args[0] {
        // checked_abs: i64::MIN overflows; route it through the boxed
        // builtin so the overflow error text has one home.
        Value::Int(i) => i.checked_abs().map(Value::Int),
        Value::Float(f) => Some(Value::Float(f.abs())),
        _ => None,
    }
}

/// `call_function` plus the walker-compatible traceback frame.
fn call_wrapped(
    interp: &mut Interp,
    callee: &Value,
    args: &[Value],
    kwargs: &[(String, Value)],
    line: u32,
) -> Result<Value, PyError> {
    interp
        .call_function(callee, args, kwargs, line)
        .map_err(|mut e| {
            if e.innermost_line().is_none() {
                e.push_frame(interp.current_function_name(), line);
            }
            e
        })
}

/// Advance the innermost loop iterator; `None` means exhausted.
#[inline(always)]
fn iter_next(iters: &mut [Iter]) -> Option<Value> {
    match iters.last_mut().expect("vm: ForIter without iterator") {
        Iter::Range { i, stop, step } => {
            if (*step > 0 && *i < *stop) || (*step < 0 && *i > *stop) {
                let v = *i;
                *i += *step;
                Some(Value::Int(v))
            } else {
                None
            }
        }
        Iter::Seq { items, idx } => {
            if *idx < items.len() {
                let v = items[*idx].clone();
                *idx += 1;
                Some(v)
            } else {
                None
            }
        }
    }
}

/// Inline scalar arithmetic exactly mirroring the walker's
/// `numeric_binop` Int/Float rows; `None` falls back to
/// [`Interp::binop`] so every error and edge case (overflow, zero
/// division, `str`/`list` operands, arrays, `%`-formatting, `bool`
/// coercion, integer `**`) keeps the reference semantics.
#[inline(always)]
fn binop_fast(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a, *b);
            match op {
                BinOp::Add => a.checked_add(b).map(Value::Int),
                BinOp::Sub => a.checked_sub(b).map(Value::Int),
                BinOp::Mul => a.checked_mul(b).map(Value::Int),
                BinOp::Div if b != 0 => Some(Value::Float(a as f64 / b as f64)),
                // checked_*: i64::MIN // -1 overflows; None defers to the
                // walker, which raises the overflow error.
                BinOp::FloorDiv if b != 0 => a.checked_div_euclid(b).map(Value::Int),
                BinOp::Mod if b != 0 => a.checked_rem_euclid(b).map(Value::Int),
                _ => None,
            }
        }
        (Value::Float(a), Value::Float(b)) => float_binop_fast(op, *a, *b),
        (Value::Int(a), Value::Float(b)) => float_binop_fast(op, *a as f64, *b),
        (Value::Float(a), Value::Int(b)) => float_binop_fast(op, *a, *b as f64),
        _ => None,
    }
}

#[inline(always)]
fn float_binop_fast(op: BinOp, a: f64, b: f64) -> Option<Value> {
    match op {
        BinOp::Add => Some(Value::Float(a + b)),
        BinOp::Sub => Some(Value::Float(a - b)),
        BinOp::Mul => Some(Value::Float(a * b)),
        BinOp::Div if b != 0.0 => Some(Value::Float(a / b)),
        BinOp::FloorDiv if b != 0.0 => Some(Value::Float((a / b).floor())),
        BinOp::Mod if b != 0.0 => Some(Value::Float(a - b * (a / b).floor())),
        BinOp::Pow => Some(Value::Float(a.powf(b))),
        _ => None,
    }
}

/// Inline numeric ordering mirroring the walker's `order_values`
/// non-sequence row (everything compares through `f64`, ties on
/// incomparable NaN resolve `Equal`); `None` falls back to
/// `compare_once` for equality, identity, membership, sequences,
/// `bool` operands and every error case.
#[inline(always)]
fn cmp_fast(op: CmpOp, l: &Value, r: &Value) -> Option<bool> {
    let a = match l {
        Value::Int(a) => *a as f64,
        Value::Float(a) => *a,
        _ => return None,
    };
    let b = match r {
        Value::Int(b) => *b as f64,
        Value::Float(b) => *b,
        _ => return None,
    };
    let ord = a.partial_cmp(&b).unwrap_or(Ordering::Equal);
    Some(match op {
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        _ => return None,
    })
}

/// Inline in-range element reads mirroring the walker's `get_item`
/// `Array`/`List` rows for non-negative `Int` indices; `None` falls
/// back to [`Interp::get_item`] for negative indices, out-of-range
/// errors, masks, dicts, strings and native `__getitem__`.
#[inline(always)]
fn get_item_fast(obj: &Value, idx: &Value) -> Option<Value> {
    let Value::Int(i) = idx else { return None };
    if *i < 0 {
        return None;
    }
    let i = *i as usize;
    match obj {
        Value::Array(a) if i < a.len() => Some(a.get(i)),
        Value::List(l) => {
            let l = l.borrow();
            if i < l.len() {
                Some(l[i].clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Slow tail of the fused slot-index reads (`LoadIndex`, `AugIndex`):
/// clones the operands out of their slots and routes through the
/// walker's `get_item`, with a slot barrier around native receivers.
#[cold]
fn get_item_cold(
    interp: &mut Interp,
    code: &CodeObject,
    st: &mut State,
    o: u16,
    i: u16,
    line: u32,
) -> Result<Value, PyError> {
    let obj = st.slots.get(o).clone();
    let idx = st.slots.get(i).clone();
    if matches!(obj, Value::Native(_)) {
        // `__getitem__` on a native object runs arbitrary code.
        st.slots.barrier(interp, code)?;
    }
    interp.get_item(&obj, &idx, line)
}

fn pop_kwargs(st: &mut State, code: &CodeObject, kwlist: u16) -> Vec<(String, Value)> {
    let names = &code.kwlists[kwlist as usize];
    if names.is_empty() {
        return Vec::new();
    }
    let values = st.popn(names.len());
    names
        .iter()
        .zip(values)
        .map(|(i, v)| (code.names[*i as usize].clone(), v))
        .collect()
}

fn slice_bound_value(interp: &Interp, v: Option<Value>, line: u32) -> Result<Option<i64>, PyError> {
    match v {
        None => Ok(None),
        Some(Value::Int(i)) => Ok(Some(i)),
        Some(other) => Err(interp.err_at(
            ErrorKind::Type,
            format!("slice index must be int, not {}", other.type_name()),
            line,
        )),
    }
}

/// Function code cache: compiled bodies keyed by definition identity.
///
/// Keys are the `Rc<FunctionDef>` allocation address; the paired `Weak`
/// keeps the allocation alive (so the address cannot be reused by a
/// different definition) and detects a dropped definition on lookup.
#[derive(Default)]
pub(crate) struct CodeCache {
    map: HashMap<usize, (std::rc::Weak<crate::ast::FunctionDef>, Rc<CodeObject>)>,
}

impl CodeCache {
    pub(crate) fn get_or_compile(&mut self, def: &Rc<crate::ast::FunctionDef>) -> Rc<CodeObject> {
        let key = Rc::as_ptr(def) as usize;
        if let Some((weak, code)) = self.map.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Rc::ptr_eq(&live, def) {
                    return code.clone();
                }
            }
        }
        let code = crate::compile::compile_function(def);
        self.map.insert(key, (Rc::downgrade(def), code.clone()));
        code
    }
}
