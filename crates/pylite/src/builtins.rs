//! Built-in functions (`len`, `range`, `print`, …).

use std::rc::Rc;

use crate::error::{ErrorKind, PyError};
use crate::interp::Interp;
use crate::native::fileobj::FileObj;
use crate::value::{Array, Builtin, Dict, Value};

macro_rules! builtin {
    ($name:literal, $f:expr) => {
        Value::Builtin(Rc::new(Builtin {
            name: $name,
            func: Box::new($f),
        }))
    };
}

fn err(kind: ErrorKind, msg: impl Into<String>) -> PyError {
    PyError::new(kind, msg)
}

fn arity(name: &str, args: &[Value], min: usize, max: usize) -> Result<(), PyError> {
    if args.len() < min || args.len() > max {
        return Err(err(
            ErrorKind::Type,
            format!(
                "{name}() takes {min}..{max} arguments but {} were given",
                args.len()
            ),
        ));
    }
    Ok(())
}

/// Look up a built-in function by name.
pub fn lookup(name: &str) -> Option<Value> {
    Some(match name {
        "len" => builtin!("len", |interp, args, _kw| {
            arity("len", args, 1, 1)?;
            Ok(Value::Int(
                interp.value_len(&args[0], interp.call_line())? as i64
            ))
        }),
        "range" => builtin!("range", |_interp, args, _kw| {
            arity("range", args, 1, 3)?;
            let get = |v: &Value| -> Result<i64, PyError> {
                match v {
                    Value::Int(i) => Ok(*i),
                    Value::Bool(b) => Ok(*b as i64),
                    other => Err(err(
                        ErrorKind::Type,
                        format!("range() argument must be int, not '{}'", other.type_name()),
                    )),
                }
            };
            let (start, stop, step) = match args.len() {
                1 => (0, get(&args[0])?, 1),
                2 => (get(&args[0])?, get(&args[1])?, 1),
                _ => (get(&args[0])?, get(&args[1])?, get(&args[2])?),
            };
            if step == 0 {
                return Err(err(ErrorKind::Value, "range() arg 3 must not be zero"));
            }
            Ok(Value::Range { start, stop, step })
        }),
        "print" => builtin!("print", |interp, args, _kw| {
            let parts: Vec<String> = args.iter().map(|v| v.py_str()).collect();
            interp.write_stdout(&parts.join(" "));
            interp.write_stdout("\n");
            Ok(Value::None)
        }),
        "abs" => builtin!("abs", |_interp, args, _kw| {
            arity("abs", args, 1, 1)?;
            let abs_i = |i: i64| {
                i.checked_abs()
                    .ok_or_else(|| err(ErrorKind::Value, "integer overflow in abs()"))
            };
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(abs_i(*i)?)),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Bool(b) => Ok(Value::Int(*b as i64)),
                Value::Array(a) => Ok(Value::array(match a.as_ref() {
                    Array::Int(v) => {
                        Array::Int(v.iter().map(|x| abs_i(*x)).collect::<Result<_, _>>()?)
                    }
                    Array::Float(v) => Array::Float(v.iter().map(|x| x.abs()).collect()),
                    other => other.clone(),
                })),
                other => Err(err(
                    ErrorKind::Type,
                    format!("bad operand type for abs(): '{}'", other.type_name()),
                )),
            }
        }),
        "min" => builtin!("min", |interp, args, _kw| fold_extreme(interp, args, true)),
        "max" => builtin!("max", |interp, args, _kw| fold_extreme(interp, args, false)),
        "sum" => builtin!("sum", |interp, args, _kw| {
            arity("sum", args, 1, 2)?;
            // Fast path for numeric arrays.
            if let Value::Array(a) = &args[0] {
                return Ok(match a.as_ref() {
                    Array::Int(v) => Value::Int(v.iter().sum()),
                    Array::Float(v) => Value::Float(v.iter().sum()),
                    Array::Bool(v) => Value::Int(v.iter().filter(|b| **b).count() as i64),
                    Array::Str(_) => return Err(err(ErrorKind::Type, "cannot sum a string array")),
                });
            }
            let items = interp.iter_values(&args[0], interp.call_line())?;
            let mut acc = args.get(1).cloned().unwrap_or(Value::Int(0));
            for item in items {
                acc = interp.binop(crate::ast::BinOp::Add, &acc, &item, interp.call_line())?;
            }
            Ok(acc)
        }),
        "sorted" => builtin!("sorted", |interp, args, kw| {
            arity("sorted", args, 1, 1)?;
            let mut items = interp.iter_values(&args[0], interp.call_line())?;
            let key_fn = kw.iter().find(|(n, _)| n == "key").map(|(_, v)| v.clone());
            let reverse = kw
                .iter()
                .find(|(n, _)| n == "reverse")
                .map(|(_, v)| v.truthy())
                .unwrap_or(false);
            // Decorate with keys so the comparator cannot fail mid-sort.
            let mut decorated: Vec<(Value, Value)> = Vec::with_capacity(items.len());
            for item in items.drain(..) {
                let k = match &key_fn {
                    Some(f) => interp.call_function(
                        f,
                        std::slice::from_ref(&item),
                        &[],
                        interp.call_line(),
                    )?,
                    None => item.clone(),
                };
                decorated.push((k, item));
            }
            // Validate orderability by comparing adjacent pairs first.
            let mut sort_err = None;
            decorated.sort_by(|a, b| {
                if sort_err.is_some() {
                    return std::cmp::Ordering::Equal;
                }
                match interp.order_values(&a.0, &b.0, interp.call_line()) {
                    Ok(o) => o,
                    Err(e) => {
                        sort_err = Some(e);
                        std::cmp::Ordering::Equal
                    }
                }
            });
            if let Some(e) = sort_err {
                return Err(e);
            }
            if reverse {
                decorated.reverse();
            }
            Ok(Value::list(decorated.into_iter().map(|(_, v)| v).collect()))
        }),
        "reversed" => builtin!("reversed", |interp, args, _kw| {
            arity("reversed", args, 1, 1)?;
            let mut items = interp.iter_values(&args[0], interp.call_line())?;
            items.reverse();
            Ok(Value::list(items))
        }),
        "enumerate" => builtin!("enumerate", |interp, args, _kw| {
            arity("enumerate", args, 1, 2)?;
            let start = match args.get(1) {
                Some(Value::Int(i)) => *i,
                None => 0,
                Some(other) => {
                    return Err(err(
                        ErrorKind::Type,
                        format!("enumerate() start must be int, not '{}'", other.type_name()),
                    ))
                }
            };
            let items = interp.iter_values(&args[0], interp.call_line())?;
            Ok(Value::list(
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| Value::tuple(vec![Value::Int(start + i as i64), v]))
                    .collect(),
            ))
        }),
        "zip" => builtin!("zip", |interp, args, _kw| {
            let mut columns = Vec::with_capacity(args.len());
            for a in args {
                columns.push(interp.iter_values(a, interp.call_line())?);
            }
            let n = columns.iter().map(|c| c.len()).min().unwrap_or(0);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(Value::tuple(columns.iter().map(|c| c[i].clone()).collect()));
            }
            Ok(Value::list(out))
        }),
        "map" => builtin!("map", |interp, args, _kw| {
            arity("map", args, 2, 2)?;
            let items = interp.iter_values(&args[1], interp.call_line())?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(interp.call_function(&args[0], &[item], &[], interp.call_line())?);
            }
            Ok(Value::list(out))
        }),
        "filter" => builtin!("filter", |interp, args, _kw| {
            arity("filter", args, 2, 2)?;
            let items = interp.iter_values(&args[1], interp.call_line())?;
            let mut out = Vec::new();
            for item in items {
                let keep = if args[0].is_none_value() {
                    item.truthy()
                } else {
                    interp
                        .call_function(
                            &args[0],
                            std::slice::from_ref(&item),
                            &[],
                            interp.call_line(),
                        )?
                        .truthy()
                };
                if keep {
                    out.push(item);
                }
            }
            Ok(Value::list(out))
        }),
        "any" => builtin!("any", |interp, args, _kw| {
            arity("any", args, 1, 1)?;
            let items = interp.iter_values(&args[0], interp.call_line())?;
            Ok(Value::Bool(items.iter().any(|v| v.truthy())))
        }),
        "all" => builtin!("all", |interp, args, _kw| {
            arity("all", args, 1, 1)?;
            let items = interp.iter_values(&args[0], interp.call_line())?;
            Ok(Value::Bool(items.iter().all(|v| v.truthy())))
        }),
        "int" => builtin!("int", |_interp, args, _kw| {
            arity("int", args, 1, 1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Bool(b) => Ok(Value::Int(*b as i64)),
                Value::Float(f) => Ok(Value::Int(f.trunc() as i64)),
                Value::Str(s) => s.trim().parse::<i64>().map(Value::Int).map_err(|_| {
                    err(
                        ErrorKind::Value,
                        format!("invalid literal for int(): '{}'", s),
                    )
                }),
                other => Err(err(
                    ErrorKind::Type,
                    format!(
                        "int() argument must be a number or string, not '{}'",
                        other.type_name()
                    ),
                )),
            }
        }),
        "float" => builtin!("float", |_interp, args, _kw| {
            arity("float", args, 1, 1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Float(*i as f64)),
                Value::Bool(b) => Ok(Value::Float(*b as i64 as f64)),
                Value::Float(f) => Ok(Value::Float(*f)),
                Value::Str(s) => s.trim().parse::<f64>().map(Value::Float).map_err(|_| {
                    err(
                        ErrorKind::Value,
                        format!("could not convert string to float: '{}'", s),
                    )
                }),
                other => Err(err(
                    ErrorKind::Type,
                    format!(
                        "float() argument must be a number or string, not '{}'",
                        other.type_name()
                    ),
                )),
            }
        }),
        "str" => builtin!("str", |_interp, args, _kw| {
            arity("str", args, 0, 1)?;
            Ok(Value::str(
                args.first().map(|v| v.py_str()).unwrap_or_default(),
            ))
        }),
        "bool" => builtin!("bool", |_interp, args, _kw| {
            arity("bool", args, 0, 1)?;
            Ok(Value::Bool(
                args.first().map(|v| v.truthy()).unwrap_or(false),
            ))
        }),
        "list" => builtin!("list", |interp, args, _kw| {
            arity("list", args, 0, 1)?;
            match args.first() {
                None => Ok(Value::list(Vec::new())),
                Some(v) => Ok(Value::list(interp.iter_values(v, interp.call_line())?)),
            }
        }),
        "tuple" => builtin!("tuple", |interp, args, _kw| {
            arity("tuple", args, 0, 1)?;
            match args.first() {
                None => Ok(Value::tuple(Vec::new())),
                Some(v) => Ok(Value::tuple(interp.iter_values(v, interp.call_line())?)),
            }
        }),
        "dict" => builtin!("dict", |interp, args, kw| {
            arity("dict", args, 0, 1)?;
            let mut d = Dict::new();
            if let Some(v) = args.first() {
                for pair in interp.iter_values(v, interp.call_line())? {
                    let kv = interp.iter_values(&pair, interp.call_line())?;
                    if kv.len() != 2 {
                        return Err(err(
                            ErrorKind::Value,
                            "dict() update sequence elements must be pairs",
                        ));
                    }
                    d.insert(kv[0].clone(), kv[1].clone())?;
                }
            }
            for (name, v) in kw {
                d.insert(Value::str(name.clone()), v.clone())?;
            }
            Ok(Value::dict(d))
        }),
        "type" => builtin!("type", |_interp, args, _kw| {
            arity("type", args, 1, 1)?;
            Ok(Value::str(args[0].type_name()))
        }),
        "repr" => builtin!("repr", |_interp, args, _kw| {
            arity("repr", args, 1, 1)?;
            Ok(Value::str(args[0].repr()))
        }),
        "round" => builtin!("round", |_interp, args, _kw| {
            arity("round", args, 1, 2)?;
            let digits = match args.get(1) {
                Some(Value::Int(d)) => *d,
                None => 0,
                Some(other) => {
                    return Err(err(
                        ErrorKind::Type,
                        format!("round() digits must be int, not '{}'", other.type_name()),
                    ))
                }
            };
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => {
                    let factor = 10f64.powi(digits as i32);
                    let r = (f * factor).round() / factor;
                    if digits <= 0 && args.len() == 1 {
                        Ok(Value::Int(r as i64))
                    } else {
                        Ok(Value::Float(r))
                    }
                }
                other => Err(err(
                    ErrorKind::Type,
                    format!(
                        "round() argument must be a number, not '{}'",
                        other.type_name()
                    ),
                )),
            }
        }),
        "open" => builtin!("open", |interp, args, _kw| {
            arity("open", args, 1, 2)?;
            let Value::Str(path) = &args[0] else {
                return Err(err(ErrorKind::Type, "open() path must be a string"));
            };
            let mode = match args.get(1) {
                Some(Value::Str(m)) => m.to_string(),
                None => "r".to_string(),
                Some(other) => {
                    return Err(err(
                        ErrorKind::Type,
                        format!("open() mode must be str, not '{}'", other.type_name()),
                    ))
                }
            };
            FileObj::open(interp, path, &mode)
        }),
        _ => return None,
    })
}

fn fold_extreme(interp: &mut Interp, args: &[Value], want_min: bool) -> Result<Value, PyError> {
    let items = if args.len() == 1 {
        interp.iter_values(&args[0], interp.call_line())?
    } else {
        args.to_vec()
    };
    let mut best: Option<Value> = None;
    for item in items {
        best = Some(match best {
            None => item,
            Some(current) => {
                let ord = interp.order_values(&item, &current, interp.call_line())?;
                let take = if want_min {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if take {
                    item
                } else {
                    current
                }
            }
        });
    }
    best.ok_or_else(|| {
        err(
            ErrorKind::Value,
            if want_min {
                "min() arg is an empty sequence"
            } else {
                "max() arg is an empty sequence"
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Interp {
        let mut interp = Interp::new();
        interp.eval_module(src).unwrap();
        interp
    }

    fn g(i: &Interp, name: &str) -> Value {
        i.get_global(name).unwrap()
    }

    #[test]
    fn len_and_range() {
        let i = run("a = len([1, 2, 3])\nb = len('hello')\nc = len(range(10))\n");
        assert_eq!(g(&i, "a"), Value::Int(3));
        assert_eq!(g(&i, "b"), Value::Int(5));
        assert_eq!(g(&i, "c"), Value::Int(10));
    }

    #[test]
    fn min_max_sum() {
        let i =
            run("a = min([3, 1, 2])\nb = max(4, 7, 5)\nc = sum([1, 2, 3])\nd = sum([1.5, 2.5])\n");
        assert_eq!(g(&i, "a"), Value::Int(1));
        assert_eq!(g(&i, "b"), Value::Int(7));
        assert_eq!(g(&i, "c"), Value::Int(6));
        assert_eq!(g(&i, "d"), Value::Float(4.0));
    }

    /// Errors raised *inside* a builtin (here: `sum` folding a str into an
    /// int, and `len` of an int) must blame the call-site line, not line 0
    /// — under both execution engines.
    #[test]
    fn builtin_errors_report_the_call_site_line() {
        for mode in [crate::ExecMode::Ast, crate::ExecMode::Bytecode] {
            let mut i = Interp::new();
            i.set_exec_mode(mode);
            let e = i
                .eval_module("x = [1, 'nope']\ny = 2\ntotal = sum(x)\n")
                .unwrap_err();
            assert_eq!(e.kind, ErrorKind::Type);
            assert_eq!(e.innermost_line(), Some(3), "{mode}: {e}");

            let mut i = Interp::new();
            i.set_exec_mode(mode);
            let e = i.eval_module("z = 1\nn = len(5)\n").unwrap_err();
            assert_eq!(e.kind, ErrorKind::Type);
            assert_eq!(e.innermost_line(), Some(2), "{mode}: {e}");
        }
    }

    #[test]
    fn min_empty_errors() {
        let mut i = Interp::new();
        let e = i.eval_module("min([])\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
    }

    #[test]
    fn conversions() {
        let i = run("a = int('42')\nb = float('2.5')\nc = str(99)\nd = int(3.9)\ne = bool([])\nf = int(' 7 ')\n");
        assert_eq!(g(&i, "a"), Value::Int(42));
        assert_eq!(g(&i, "b"), Value::Float(2.5));
        assert_eq!(g(&i, "c"), Value::str("99"));
        assert_eq!(g(&i, "d"), Value::Int(3));
        assert_eq!(g(&i, "e"), Value::Bool(false));
        assert_eq!(g(&i, "f"), Value::Int(7));
    }

    #[test]
    fn int_of_garbage_is_value_error() {
        let mut i = Interp::new();
        let e = i.eval_module("int('abc')\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
    }

    #[test]
    fn enumerate_zip_map_filter() {
        let i = run("e = enumerate(['a', 'b'])\nz = zip([1, 2], ['x', 'y'])\nm = map(lambda v: v * 2, [1, 2])\nf = filter(lambda v: v > 1, [0, 1, 2, 3])\n");
        assert_eq!(
            g(&i, "e"),
            Value::list(vec![
                Value::tuple(vec![Value::Int(0), Value::str("a")]),
                Value::tuple(vec![Value::Int(1), Value::str("b")]),
            ])
        );
        assert_eq!(g(&i, "m"), Value::list(vec![Value::Int(2), Value::Int(4)]));
        let i2 = Interp::new();
        let _ = i2;
        assert_eq!(g(&i, "f"), Value::list(vec![Value::Int(2), Value::Int(3)]));
        assert_eq!(
            g(&i, "z"),
            Value::list(vec![
                Value::tuple(vec![Value::Int(1), Value::str("x")]),
                Value::tuple(vec![Value::Int(2), Value::str("y")]),
            ])
        );
    }

    #[test]
    fn sorted_with_reverse() {
        let i = run("s = sorted([3, 1, 2], reverse=True)\n");
        assert_eq!(
            g(&i, "s"),
            Value::list(vec![Value::Int(3), Value::Int(2), Value::Int(1)])
        );
    }

    #[test]
    fn sorted_incomparable_errors() {
        let mut i = Interp::new();
        let e = i.eval_module("sorted([1, 'a'])\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Type);
    }

    #[test]
    fn any_all() {
        let i = run("a = any([0, 0, 1])\nb = all([1, 2, 0])\n");
        assert_eq!(g(&i, "a"), Value::Bool(true));
        assert_eq!(g(&i, "b"), Value::Bool(false));
    }

    #[test]
    fn round_behaviour() {
        let i = run("a = round(2.5)\nb = round(2.4)\nc = round(2.71828, 2)\n");
        assert_eq!(g(&i, "a"), Value::Int(3));
        assert_eq!(g(&i, "b"), Value::Int(2));
        assert_eq!(g(&i, "c"), Value::Float(2.72));
    }

    #[test]
    fn abs_on_array() {
        let mut i = Interp::new();
        i.set_global("a", Value::array(Array::Int(vec![-1, 2, -3])));
        i.eval_module("b = abs(a)\n").unwrap();
        assert_eq!(g(&i, "b"), Value::array(Array::Int(vec![1, 2, 3])));
    }

    #[test]
    fn abs_of_i64_min_errors_instead_of_panicking() {
        let mut i = Interp::new();
        let e = i
            .eval_module("b = abs(-9223372036854775807 - 1)\n")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
        assert_eq!(e.message, "integer overflow in abs()");
        // The vectorized path overflows identically.
        i.set_global("a", Value::array(Array::Int(vec![1, i64::MIN])));
        let e = i.eval_module("b = abs(a)\n").unwrap_err();
        assert_eq!(e.message, "integer overflow in abs()");
    }

    #[test]
    fn sum_over_bool_array_counts_true() {
        let mut i = Interp::new();
        i.set_global("m", Value::array(Array::Bool(vec![true, false, true])));
        i.eval_module("c = sum(m)\n").unwrap();
        assert_eq!(g(&i, "c"), Value::Int(2));
    }

    #[test]
    fn type_and_repr() {
        let i = run("a = type(1)\nb = type('x')\nc = repr('hi')\n");
        assert_eq!(g(&i, "a"), Value::str("int"));
        assert_eq!(g(&i, "b"), Value::str("str"));
        assert_eq!(g(&i, "c"), Value::str("'hi'"));
    }
}
