//! Indentation-sensitive lexer for the Python subset.

use crate::error::{ErrorKind, PyError};

/// A lexical token tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and names.
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // Keywords.
    Def,
    Return,
    If,
    Elif,
    Else,
    For,
    While,
    In,
    Break,
    Continue,
    Pass,
    Import,
    From,
    As,
    Global,
    Del,
    Not,
    And,
    Or,
    None,
    True,
    False,
    Lambda,
    Try,
    Except,
    Finally,
    Raise,
    Assert,
    Is,
    // Operators and delimiters.
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    DoubleSlash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    DoubleSlashEq,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semicolon,
    Dot,
    Arrow,
    // Layout.
    Newline,
    Indent,
    Dedent,
    Eof,
}

impl Tok {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Int(v) => format!("integer {v}"),
            Tok::Float(v) => format!("float {v}"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Ident(name) => format!("identifier '{name}'"),
            Tok::Newline => "newline".to_string(),
            Tok::Indent => "indent".to_string(),
            Tok::Dedent => "dedent".to_string(),
            Tok::Eof => "end of input".to_string(),
            other => format!("'{}'", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Tok::Def => "def",
            Tok::Return => "return",
            Tok::If => "if",
            Tok::Elif => "elif",
            Tok::Else => "else",
            Tok::For => "for",
            Tok::While => "while",
            Tok::In => "in",
            Tok::Break => "break",
            Tok::Continue => "continue",
            Tok::Pass => "pass",
            Tok::Import => "import",
            Tok::From => "from",
            Tok::As => "as",
            Tok::Global => "global",
            Tok::Del => "del",
            Tok::Not => "not",
            Tok::And => "and",
            Tok::Or => "or",
            Tok::None => "None",
            Tok::True => "True",
            Tok::False => "False",
            Tok::Lambda => "lambda",
            Tok::Try => "try",
            Tok::Except => "except",
            Tok::Finally => "finally",
            Tok::Raise => "raise",
            Tok::Assert => "assert",
            Tok::Is => "is",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::DoubleStar => "**",
            Tok::Slash => "/",
            Tok::DoubleSlash => "//",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Eq => "=",
            Tok::PlusEq => "+=",
            Tok::MinusEq => "-=",
            Tok::StarEq => "*=",
            Tok::SlashEq => "/=",
            Tok::PercentEq => "%=",
            Tok::DoubleSlashEq => "//=",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Semicolon => ";",
            Tok::Dot => ".",
            Tok::Arrow => "->",
            _ => "?",
        }
    }
}

fn keyword(name: &str) -> Option<Tok> {
    Some(match name {
        "def" => Tok::Def,
        "return" => Tok::Return,
        "if" => Tok::If,
        "elif" => Tok::Elif,
        "else" => Tok::Else,
        "for" => Tok::For,
        "while" => Tok::While,
        "in" => Tok::In,
        "break" => Tok::Break,
        "continue" => Tok::Continue,
        "pass" => Tok::Pass,
        "import" => Tok::Import,
        "from" => Tok::From,
        "as" => Tok::As,
        "global" => Tok::Global,
        "del" => Tok::Del,
        "not" => Tok::Not,
        "and" => Tok::And,
        "or" => Tok::Or,
        "None" => Tok::None,
        "True" => Tok::True,
        "False" => Tok::False,
        "lambda" => Tok::Lambda,
        "try" => Tok::Try,
        "except" => Tok::Except,
        "finally" => Tok::Finally,
        "raise" => Tok::Raise,
        "assert" => Tok::Assert,
        "is" => Tok::Is,
        _ => return None,
    })
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    paren_depth: usize,
    indent_stack: Vec<usize>,
    tokens: Vec<Token>,
}

/// Tokenize Python-subset source into a token stream ending with `Eof`.
pub fn tokenize(source: &str) -> Result<Vec<Token>, PyError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        paren_depth: 0,
        indent_stack: vec![0],
        tokens: Vec::new(),
    };
    lx.run()?;
    Ok(lx.tokens)
}

impl<'a> Lexer<'a> {
    fn err(&self, msg: impl Into<String>) -> PyError {
        let mut e = PyError::new(ErrorKind::Syntax, msg);
        e.push_frame("<module>", self.line);
        e
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: Tok) {
        self.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn at_line_start(&self) -> bool {
        self.tokens.is_empty()
            || matches!(
                self.tokens.last().map(|t| &t.kind),
                Some(Tok::Newline) | Some(Tok::Indent) | Some(Tok::Dedent)
            )
    }

    fn run(&mut self) -> Result<(), PyError> {
        loop {
            if self.at_line_start() && self.paren_depth == 0 && !self.handle_indentation()? {
                break;
            }
            match self.peek() {
                Option::None => break,
                Some(c) => self.lex_one(c)?,
            }
        }
        // Terminate the final logical line.
        if !matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(Tok::Newline) | Option::None
        ) {
            self.push(Tok::Newline);
        }
        while self.indent_stack.len() > 1 {
            self.indent_stack.pop();
            self.push(Tok::Dedent);
        }
        self.push(Tok::Eof);
        Ok(())
    }

    /// Measure leading whitespace of the current physical line and emit
    /// INDENT/DEDENT tokens. Returns false at end of input.
    fn handle_indentation(&mut self) -> Result<bool, PyError> {
        loop {
            let mut width = 0usize;
            let start = self.pos;
            while let Some(c) = self.peek() {
                match c {
                    b' ' => {
                        width += 1;
                        self.pos += 1;
                    }
                    b'\t' => {
                        // Tabs advance to the next multiple of 8, like CPython.
                        width += 8 - (width % 8);
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            match self.peek() {
                Option::None => return Ok(false),
                Some(b'\n') => {
                    // Blank line: ignore entirely.
                    self.bump();
                    continue;
                }
                Some(b'\r') => {
                    self.bump();
                    continue;
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                Some(_) => {
                    let _ = start;
                    let current = *self.indent_stack.last().expect("indent stack never empty");
                    match width.cmp(&current) {
                        std::cmp::Ordering::Greater => {
                            self.indent_stack.push(width);
                            self.push(Tok::Indent);
                        }
                        std::cmp::Ordering::Less => {
                            while *self.indent_stack.last().unwrap() > width {
                                self.indent_stack.pop();
                                self.push(Tok::Dedent);
                            }
                            if *self.indent_stack.last().unwrap() != width {
                                return Err(
                                    self.err("unindent does not match any outer indentation level")
                                );
                            }
                        }
                        std::cmp::Ordering::Equal => {}
                    }
                    return Ok(true);
                }
            }
        }
    }

    fn lex_one(&mut self, c: u8) -> Result<(), PyError> {
        match c {
            b' ' | b'\t' | b'\r' => {
                self.bump();
            }
            b'\n' => {
                self.bump();
                if self.paren_depth == 0 {
                    // Collapse repeated newlines.
                    if !matches!(self.tokens.last().map(|t| &t.kind), Some(Tok::Newline)) {
                        self.tokens.push(Token {
                            kind: Tok::Newline,
                            line: self.line - 1,
                        });
                    }
                }
            }
            b'#' => {
                while let Some(c) = self.peek() {
                    if c == b'\n' {
                        break;
                    }
                    self.bump();
                }
            }
            b'\\' => {
                // Explicit line continuation.
                self.bump();
                if self.peek() == Some(b'\r') {
                    self.bump();
                }
                if self.peek() == Some(b'\n') {
                    self.bump();
                } else {
                    return Err(self.err("unexpected character after line continuation"));
                }
            }
            b'\'' | b'"' => self.lex_string(c)?,
            b'0'..=b'9' => self.lex_number()?,
            b'.' => {
                if matches!(self.peek2(), Some(b'0'..=b'9')) {
                    self.lex_number()?;
                } else {
                    self.bump();
                    self.push(Tok::Dot);
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
            _ => self.lex_operator(c)?,
        }
        Ok(())
    }

    fn lex_ident(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let name = std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ascii")
            .to_string();
        match keyword(&name) {
            Some(kw) => self.push(kw),
            Option::None => self.push(Tok::Ident(name)),
        }
    }

    fn lex_number(&mut self) -> Result<(), PyError> {
        let start = self.pos;
        let mut is_float = false;
        // Hex literal.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            let digits_start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let digits = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            if digits.is_empty() {
                return Err(self.err("invalid hex literal"));
            }
            let v =
                i64::from_str_radix(digits, 16).map_err(|_| self.err("hex literal too large"))?;
            self.push(Tok::Int(v));
            return Ok(());
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.pos += 1;
                }
                b'.' if !is_float && !matches!(self.peek2(), Some(b'.')) => {
                    is_float = true;
                    self.pos += 1;
                }
                b'e' | b'E' => {
                    // Exponent only if followed by digit or sign+digit.
                    let next = self.src.get(self.pos + 1).copied();
                    let next2 = self.src.get(self.pos + 2).copied();
                    let ok = matches!(next, Some(b'0'..=b'9'))
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && matches!(next2, Some(b'0'..=b'9')));
                    if !ok {
                        break;
                    }
                    is_float = true;
                    self.pos += 2;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.pos += 1;
                    }
                    break;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid float literal '{text}'")))?;
            self.push(Tok::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("integer literal '{text}' out of range")))?;
            self.push(Tok::Int(v));
        }
        Ok(())
    }

    fn lex_string(&mut self, quote: u8) -> Result<(), PyError> {
        let start_line = self.line;
        // Detect triple quotes.
        let triple = self.src.get(self.pos + 1) == Some(&quote)
            && self.src.get(self.pos + 2) == Some(&quote);
        self.bump();
        if triple {
            self.bump();
            self.bump();
        }
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                let mut e = PyError::new(ErrorKind::Syntax, "unterminated string literal");
                e.push_frame("<module>", start_line);
                return Err(e);
            };
            if c == quote {
                if triple {
                    if self.src.get(self.pos + 1) == Some(&quote)
                        && self.src.get(self.pos + 2) == Some(&quote)
                    {
                        self.bump();
                        self.bump();
                        self.bump();
                        break;
                    }
                    out.push(self.bump().unwrap() as char);
                } else {
                    self.bump();
                    break;
                }
            } else if c == b'\n' && !triple {
                let mut e = PyError::new(ErrorKind::Syntax, "EOL while scanning string literal");
                e.push_frame("<module>", start_line);
                return Err(e);
            } else if c == b'\\' {
                self.bump();
                let Some(esc) = self.bump() else {
                    let mut e = PyError::new(ErrorKind::Syntax, "unterminated string literal");
                    e.push_frame("<module>", start_line);
                    return Err(e);
                };
                match esc {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'\\' => out.push('\\'),
                    b'\'' => out.push('\''),
                    b'"' => out.push('"'),
                    b'0' => out.push('\0'),
                    b'\n' => {} // escaped newline inside string: joined
                    other => {
                        // Unknown escapes are preserved verbatim (like Python
                        // with a deprecation warning).
                        out.push('\\');
                        out.push(other as char);
                    }
                }
            } else {
                // Consume one UTF-8 code point.
                let ch_len = utf8_len(c);
                for _ in 0..ch_len {
                    if let Some(b) = self.bump() {
                        // SAFETY-free approach: collect bytes then convert.
                        out.push(b as char); // provisional; fixed below for multibyte
                        let _ = b;
                    }
                }
                if ch_len > 1 {
                    // Re-do multibyte properly: remove the bogus chars and
                    // push the real code point.
                    for _ in 0..ch_len {
                        out.pop();
                    }
                    let slice = &self.src[self.pos - ch_len..self.pos];
                    match std::str::from_utf8(slice) {
                        Ok(s) => out.push_str(s),
                        Err(_) => {
                            let mut e =
                                PyError::new(ErrorKind::Syntax, "invalid UTF-8 in string literal");
                            e.push_frame("<module>", start_line);
                            return Err(e);
                        }
                    }
                }
            }
        }
        self.tokens.push(Token {
            kind: Tok::Str(out),
            line: start_line,
        });
        Ok(())
    }

    fn lex_operator(&mut self, c: u8) -> Result<(), PyError> {
        let two = |a: u8, b: Option<u8>| -> bool { b == Some(a) };
        let next = self.peek2();
        let tok = match c {
            b'+' if two(b'=', next) => {
                self.bump();
                Tok::PlusEq
            }
            b'+' => Tok::Plus,
            b'-' if two(b'=', next) => {
                self.bump();
                Tok::MinusEq
            }
            b'-' if two(b'>', next) => {
                self.bump();
                Tok::Arrow
            }
            b'-' => Tok::Minus,
            b'*' if two(b'*', next) => {
                self.bump();
                Tok::DoubleStar
            }
            b'*' if two(b'=', next) => {
                self.bump();
                Tok::StarEq
            }
            b'*' => Tok::Star,
            b'/' if two(b'/', next) => {
                self.bump();
                if self.peek2() == Some(b'=') {
                    self.bump();
                    Tok::DoubleSlashEq
                } else {
                    Tok::DoubleSlash
                }
            }
            b'/' if two(b'=', next) => {
                self.bump();
                Tok::SlashEq
            }
            b'/' => Tok::Slash,
            b'%' if two(b'=', next) => {
                self.bump();
                Tok::PercentEq
            }
            b'%' => Tok::Percent,
            b'&' => Tok::Amp,
            b'|' => Tok::Pipe,
            b'^' => Tok::Caret,
            b'=' if two(b'=', next) => {
                self.bump();
                Tok::EqEq
            }
            b'=' => Tok::Eq,
            b'!' if two(b'=', next) => {
                self.bump();
                Tok::NotEq
            }
            b'<' if two(b'=', next) => {
                self.bump();
                Tok::Le
            }
            b'<' => Tok::Lt,
            b'>' if two(b'=', next) => {
                self.bump();
                Tok::Ge
            }
            b'>' => Tok::Gt,
            b'(' => {
                self.paren_depth += 1;
                Tok::LParen
            }
            b')' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Tok::RParen
            }
            b'[' => {
                self.paren_depth += 1;
                Tok::LBracket
            }
            b']' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Tok::RBracket
            }
            b'{' => {
                self.paren_depth += 1;
                Tok::LBrace
            }
            b'}' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Tok::RBrace
            }
            b',' => Tok::Comma,
            b':' => Tok::Colon,
            b';' => Tok::Semicolon,
            other => return Err(self.err(format!("unexpected character '{}'", other as char))),
        };
        self.bump();
        self.push(tok);
        Ok(())
    }
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first >> 5 == 0b110 {
        2
    } else if first >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            kinds("x = 1\n"),
            vec![
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_emits_indent_dedent() {
        let toks = kinds("if x:\n    y = 1\nz = 2\n");
        assert!(toks.contains(&Tok::Indent));
        assert!(toks.contains(&Tok::Dedent));
        let indent_pos = toks.iter().position(|t| *t == Tok::Indent).unwrap();
        let dedent_pos = toks.iter().position(|t| *t == Tok::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn nested_indentation_unwinds_fully_at_eof() {
        let toks = kinds("def f():\n    if x:\n        return 1\n");
        let dedents = toks.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_lines_and_comments_ignored_for_indentation() {
        let toks = kinds("if x:\n    a = 1\n\n    # comment\n    b = 2\n");
        let indents = toks.iter().filter(|t| **t == Tok::Indent).count();
        assert_eq!(indents, 1);
    }

    #[test]
    fn newlines_suppressed_inside_brackets() {
        let toks = kinds("x = (1 +\n     2)\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn string_literals() {
        assert_eq!(kinds("s = 'ab'\n")[2], Tok::Str("ab".into()));
        assert_eq!(kinds("s = \"a\\nb\"\n")[2], Tok::Str("a\nb".into()));
        assert_eq!(
            kinds("s = '''line1\nline2'''\n")[2],
            Tok::Str("line1\nline2".into())
        );
    }

    #[test]
    fn triple_string_line_number_is_start() {
        let toks = tokenize("x = \"\"\"a\nb\nc\"\"\"\n").unwrap();
        let s = toks.iter().find(|t| matches!(t.kind, Tok::Str(_))).unwrap();
        assert_eq!(s.line, 1);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42\n")[0], Tok::Int(42));
        assert_eq!(kinds("3.5\n")[0], Tok::Float(3.5));
        assert_eq!(kinds("1e3\n")[0], Tok::Float(1000.0));
        assert_eq!(kinds("2.5e-1\n")[0], Tok::Float(0.25));
        assert_eq!(kinds("0xff\n")[0], Tok::Int(255));
        assert_eq!(kinds(".5\n")[0], Tok::Float(0.5));
    }

    #[test]
    fn operators() {
        assert_eq!(kinds("a //= 2\n")[1], Tok::DoubleSlashEq);
        assert_eq!(kinds("a ** b\n")[1], Tok::DoubleStar);
        assert_eq!(kinds("a != b\n")[1], Tok::NotEq);
        assert_eq!(kinds("a <= b\n")[1], Tok::Le);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("iffy\n")[0], Tok::Ident("iffy".into()));
        assert_eq!(kinds("if\n")[0], Tok::If);
        assert_eq!(kinds("None\n")[0], Tok::None);
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            kinds("x = 1  # trailing\n"),
            vec![
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_continuation() {
        let toks = kinds("x = 1 + \\\n    2\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn bad_indentation_is_error() {
        let err = tokenize("if x:\n        a = 1\n    b = 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Syntax);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("s = 'oops\n").is_err());
        assert!(tokenize("s = '''oops\n").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("s = 'héllo→'\n")[2], Tok::Str("héllo→".into()));
    }

    #[test]
    fn line_numbers_track_physical_lines() {
        let toks = tokenize("a = 1\nb = 2\nc = 3\n").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
        let c = toks
            .iter()
            .find(|t| t.kind == Tok::Ident("c".into()))
            .unwrap();
        assert_eq!(c.line, 3);
    }

    #[test]
    fn listing4_style_source_tokenizes() {
        let src = "\
mean = 0
for i in range(0, len(column)):
    mean += column[i]
mean = mean / len(column)
";
        assert!(tokenize(src).is_ok());
    }
}
