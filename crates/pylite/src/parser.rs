//! Recursive-descent parser producing the [`crate::ast`] tree.

use std::rc::Rc;

use crate::ast::*;
use crate::error::{ErrorKind, PyError};
use crate::lexer::{tokenize, Tok, Token};

/// Parse a complete module from source text.
pub fn parse_module(source: &str) -> Result<Module, PyError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut body = Vec::new();
    p.skip_newlines();
    while !p.check(&Tok::Eof) {
        body.extend(p.parse_statement()?);
        p.skip_newlines();
    }
    Ok(Module { body })
}

/// Parse a single expression (used by the debugger's watch/eval feature).
pub fn parse_expression(source: &str) -> Result<Expr, PyError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_expr()?;
    p.skip_newlines();
    if !p.check(&Tok::Eof) {
        return Err(p.err_here("unexpected trailing input after expression"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_ahead(&self, n: usize) -> &Tok {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: &Tok) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &Tok) -> Result<(), PyError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn err_here(&self, msg: impl Into<String>) -> PyError {
        let mut e = PyError::new(ErrorKind::Syntax, msg);
        e.push_frame("<module>", self.line());
        e
    }

    fn skip_newlines(&mut self) {
        while self.check(&Tok::Newline) {
            self.bump();
        }
    }

    fn expect_ident(&mut self) -> Result<String, PyError> {
        match self.bump() {
            Tok::Ident(name) => Ok(name),
            other => Err(self.err_here(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parse one logical statement line, which may contain several simple
    /// statements separated by `;`.
    fn parse_statement(&mut self) -> Result<Vec<Stmt>, PyError> {
        match self.peek() {
            Tok::Def => Ok(vec![self.parse_def()?]),
            Tok::If => Ok(vec![self.parse_if()?]),
            Tok::While => Ok(vec![self.parse_while()?]),
            Tok::For => Ok(vec![self.parse_for()?]),
            Tok::Try => Ok(vec![self.parse_try()?]),
            _ => self.parse_simple_line(),
        }
    }

    fn parse_simple_line(&mut self) -> Result<Vec<Stmt>, PyError> {
        let mut stmts = vec![self.parse_simple_statement()?];
        while self.eat(&Tok::Semicolon) {
            if self.check(&Tok::Newline) || self.check(&Tok::Eof) {
                break;
            }
            stmts.push(self.parse_simple_statement()?);
        }
        if !self.check(&Tok::Eof) {
            self.expect(&Tok::Newline)?;
        }
        Ok(stmts)
    }

    fn parse_simple_statement(&mut self) -> Result<Stmt, PyError> {
        let line = self.line();
        let kind = match self.peek().clone() {
            Tok::Return => {
                self.bump();
                if self.check(&Tok::Newline) || self.check(&Tok::Semicolon) || self.check(&Tok::Eof)
                {
                    StmtKind::Return(None)
                } else {
                    StmtKind::Return(Some(self.parse_expr_or_tuple()?))
                }
            }
            Tok::Break => {
                self.bump();
                StmtKind::Break
            }
            Tok::Continue => {
                self.bump();
                StmtKind::Continue
            }
            Tok::Pass => {
                self.bump();
                StmtKind::Pass
            }
            Tok::Import => {
                self.bump();
                let module = self.parse_dotted_name()?;
                let alias = if self.eat(&Tok::As) {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                StmtKind::Import { module, alias }
            }
            Tok::From => {
                self.bump();
                let module = self.parse_dotted_name()?;
                self.expect(&Tok::Import)?;
                let mut names = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    let alias = if self.eat(&Tok::As) {
                        Some(self.expect_ident()?)
                    } else {
                        None
                    };
                    names.push((name, alias));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                StmtKind::FromImport { module, names }
            }
            Tok::Global => {
                self.bump();
                let mut names = vec![self.expect_ident()?];
                while self.eat(&Tok::Comma) {
                    names.push(self.expect_ident()?);
                }
                StmtKind::Global(names)
            }
            Tok::Del => {
                self.bump();
                let mut targets = vec![self.parse_expr()?];
                while self.eat(&Tok::Comma) {
                    targets.push(self.parse_expr()?);
                }
                StmtKind::Del(targets)
            }
            Tok::Raise => {
                self.bump();
                if self.check(&Tok::Newline) || self.check(&Tok::Eof) {
                    StmtKind::Raise(None)
                } else {
                    StmtKind::Raise(Some(self.parse_expr()?))
                }
            }
            Tok::Assert => {
                self.bump();
                let test = self.parse_expr()?;
                let message = if self.eat(&Tok::Comma) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                StmtKind::Assert { test, message }
            }
            _ => return self.parse_expr_statement(),
        };
        Ok(Stmt { kind, line })
    }

    /// Expression statement, assignment, or augmented assignment.
    fn parse_expr_statement(&mut self) -> Result<Stmt, PyError> {
        let line = self.line();
        let first = self.parse_expr_or_tuple()?;

        // Augmented assignment.
        let aug = match self.peek() {
            Tok::PlusEq => Some(BinOp::Add),
            Tok::MinusEq => Some(BinOp::Sub),
            Tok::StarEq => Some(BinOp::Mul),
            Tok::SlashEq => Some(BinOp::Div),
            Tok::PercentEq => Some(BinOp::Mod),
            Tok::DoubleSlashEq => Some(BinOp::FloorDiv),
            _ => None,
        };
        if let Some(op) = aug {
            self.bump();
            let value = self.parse_expr_or_tuple()?;
            self.validate_target(&first)?;
            return Ok(Stmt {
                kind: StmtKind::AugAssign {
                    target: first,
                    op,
                    value,
                },
                line,
            });
        }

        if self.check(&Tok::Eq) {
            let mut targets = vec![first];
            let mut value = None;
            while self.eat(&Tok::Eq) {
                let e = self.parse_expr_or_tuple()?;
                if self.check(&Tok::Eq) {
                    targets.push(e);
                } else {
                    value = Some(e);
                }
            }
            for t in &targets {
                self.validate_target(t)?;
            }
            return Ok(Stmt {
                kind: StmtKind::Assign {
                    targets,
                    value: value.expect("chain loop always sets value"),
                },
                line,
            });
        }

        Ok(Stmt {
            kind: StmtKind::Expr(first),
            line,
        })
    }

    fn validate_target(&self, e: &Expr) -> Result<(), PyError> {
        match &e.kind {
            ExprKind::Name(_) | ExprKind::Attribute { .. } | ExprKind::Subscript { .. } => Ok(()),
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                for item in items {
                    self.validate_target(item)?;
                }
                Ok(())
            }
            _ => {
                let mut err = PyError::new(ErrorKind::Syntax, "cannot assign to this expression");
                err.push_frame("<module>", e.line);
                Err(err)
            }
        }
    }

    fn parse_dotted_name(&mut self) -> Result<String, PyError> {
        let mut name = self.expect_ident()?;
        while self.eat(&Tok::Dot) {
            name.push('.');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    fn parse_def(&mut self) -> Result<Stmt, PyError> {
        let line = self.line();
        self.expect(&Tok::Def)?;
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.check(&Tok::RParen) {
            loop {
                let pname = self.expect_ident()?;
                let default = if self.eat(&Tok::Eq) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                params.push(Param {
                    name: pname,
                    default,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
                if self.check(&Tok::RParen) {
                    break; // trailing comma
                }
            }
        }
        self.expect(&Tok::RParen)?;
        // Optional return annotation `-> expr` (parsed and discarded).
        if self.eat(&Tok::Arrow) {
            let _ = self.parse_expr()?;
        }
        self.expect(&Tok::Colon)?;
        let body = self.parse_suite()?;
        let (local_names, global_names) = scan_scope(&body, &params);
        Ok(Stmt {
            kind: StmtKind::FunctionDef(Rc::new(FunctionDef {
                name,
                params,
                body,
                line,
                local_names,
                global_names,
            })),
            line,
        })
    }

    fn parse_if(&mut self) -> Result<Stmt, PyError> {
        let line = self.line();
        self.expect(&Tok::If)?;
        let mut branches = Vec::new();
        let test = self.parse_expr()?;
        self.expect(&Tok::Colon)?;
        branches.push((test, self.parse_suite()?));
        let mut orelse = Vec::new();
        loop {
            if self.check(&Tok::Elif) {
                self.bump();
                let test = self.parse_expr()?;
                self.expect(&Tok::Colon)?;
                branches.push((test, self.parse_suite()?));
            } else if self.check(&Tok::Else) {
                self.bump();
                self.expect(&Tok::Colon)?;
                orelse = self.parse_suite()?;
                break;
            } else {
                break;
            }
        }
        Ok(Stmt {
            kind: StmtKind::If { branches, orelse },
            line,
        })
    }

    fn parse_while(&mut self) -> Result<Stmt, PyError> {
        let line = self.line();
        self.expect(&Tok::While)?;
        let test = self.parse_expr()?;
        self.expect(&Tok::Colon)?;
        let body = self.parse_suite()?;
        Ok(Stmt {
            kind: StmtKind::While { test, body },
            line,
        })
    }

    fn parse_for(&mut self) -> Result<Stmt, PyError> {
        let line = self.line();
        self.expect(&Tok::For)?;
        let target = self.parse_target_list()?;
        self.expect(&Tok::In)?;
        let iter = self.parse_expr_or_tuple()?;
        self.expect(&Tok::Colon)?;
        let body = self.parse_suite()?;
        Ok(Stmt {
            kind: StmtKind::For { target, iter, body },
            line,
        })
    }

    fn parse_try(&mut self) -> Result<Stmt, PyError> {
        let line = self.line();
        self.expect(&Tok::Try)?;
        self.expect(&Tok::Colon)?;
        let body = self.parse_suite()?;
        let mut handlers = Vec::new();
        let mut finally = Vec::new();
        while self.check(&Tok::Except) {
            self.bump();
            let (class, alias) = if self.check(&Tok::Colon) {
                (None, None)
            } else {
                let class = self.expect_ident()?;
                let alias = if self.eat(&Tok::As) {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                (Some(class), alias)
            };
            self.expect(&Tok::Colon)?;
            let hbody = self.parse_suite()?;
            handlers.push((class, alias, hbody));
        }
        if self.check(&Tok::Finally) {
            self.bump();
            self.expect(&Tok::Colon)?;
            finally = self.parse_suite()?;
        }
        if handlers.is_empty() && finally.is_empty() {
            return Err(self.err_here("try statement needs except or finally"));
        }
        Ok(Stmt {
            kind: StmtKind::Try {
                body,
                handlers,
                finally,
            },
            line,
        })
    }

    /// Parse a `for` target: one or more names/subscripts, comma-separated
    /// (optionally parenthesised).
    fn parse_target_list(&mut self) -> Result<Expr, PyError> {
        let line = self.line();
        let first = self.parse_postfix_target()?;
        if self.check(&Tok::Comma) {
            let mut items = vec![first];
            while self.eat(&Tok::Comma) {
                if self.check(&Tok::In) {
                    break;
                }
                items.push(self.parse_postfix_target()?);
            }
            return Ok(Expr {
                kind: ExprKind::Tuple(items),
                line,
            });
        }
        Ok(first)
    }

    fn parse_postfix_target(&mut self) -> Result<Expr, PyError> {
        if self.check(&Tok::LParen) {
            // Parenthesised tuple target.
            self.bump();
            let inner = self.parse_target_list()?;
            self.expect(&Tok::RParen)?;
            return Ok(inner);
        }
        let e = self.parse_postfix()?;
        self.validate_target(&e)?;
        Ok(e)
    }

    /// Parse an indented suite or a single-line suite after a colon.
    fn parse_suite(&mut self) -> Result<Vec<Stmt>, PyError> {
        if self.eat(&Tok::Newline) {
            self.expect(&Tok::Indent)?;
            let mut body = Vec::new();
            self.skip_newlines();
            while !self.check(&Tok::Dedent) && !self.check(&Tok::Eof) {
                body.extend(self.parse_statement()?);
                self.skip_newlines();
            }
            self.expect(&Tok::Dedent)?;
            if body.is_empty() {
                return Err(self.err_here("expected an indented block"));
            }
            Ok(body)
        } else {
            // Single-line suite: `if x: y = 1`
            self.parse_simple_line()
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Expression, allowing a top-level unparenthesised tuple (`a, b`).
    fn parse_expr_or_tuple(&mut self) -> Result<Expr, PyError> {
        let line = self.line();
        let first = self.parse_expr()?;
        if self.check(&Tok::Comma) {
            let mut items = vec![first];
            while self.eat(&Tok::Comma) {
                if matches!(
                    self.peek(),
                    Tok::Newline | Tok::Eof | Tok::Eq | Tok::RParen | Tok::RBracket | Tok::Colon
                ) {
                    break;
                }
                items.push(self.parse_expr()?);
            }
            return Ok(Expr {
                kind: ExprKind::Tuple(items),
                line,
            });
        }
        Ok(first)
    }

    /// Full expression: ternary over `or`-expressions.
    pub(crate) fn parse_expr(&mut self) -> Result<Expr, PyError> {
        if self.check(&Tok::Lambda) {
            return self.parse_lambda();
        }
        let line = self.line();
        let body = self.parse_or()?;
        if self.check(&Tok::If) {
            self.bump();
            let test = self.parse_or()?;
            self.expect(&Tok::Else)?;
            let orelse = self.parse_expr()?;
            return Ok(Expr {
                kind: ExprKind::IfExp {
                    test: Box::new(test),
                    body: Box::new(body),
                    orelse: Box::new(orelse),
                },
                line,
            });
        }
        Ok(body)
    }

    fn parse_lambda(&mut self) -> Result<Expr, PyError> {
        let line = self.line();
        self.expect(&Tok::Lambda)?;
        let mut params = Vec::new();
        if !self.check(&Tok::Colon) {
            loop {
                let name = self.expect_ident()?;
                let default = if self.eat(&Tok::Eq) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                params.push(Param { name, default });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::Colon)?;
        let body_expr = self.parse_expr()?;
        let body = vec![Stmt {
            kind: StmtKind::Return(Some(body_expr)),
            line,
        }];
        let (local_names, global_names) = scan_scope(&body, &params);
        Ok(Expr {
            kind: ExprKind::Lambda(Rc::new(FunctionDef {
                name: "<lambda>".to_string(),
                params,
                body,
                line,
                local_names,
                global_names,
            })),
            line,
        })
    }

    fn parse_or(&mut self) -> Result<Expr, PyError> {
        let line = self.line();
        let first = self.parse_and()?;
        if !self.check(&Tok::Or) {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat(&Tok::Or) {
            values.push(self.parse_and()?);
        }
        Ok(Expr {
            kind: ExprKind::BoolOp {
                op: BoolOpKind::Or,
                values,
            },
            line,
        })
    }

    fn parse_and(&mut self) -> Result<Expr, PyError> {
        let line = self.line();
        let first = self.parse_not()?;
        if !self.check(&Tok::And) {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat(&Tok::And) {
            values.push(self.parse_not()?);
        }
        Ok(Expr {
            kind: ExprKind::BoolOp {
                op: BoolOpKind::And,
                values,
            },
            line,
        })
    }

    fn parse_not(&mut self) -> Result<Expr, PyError> {
        if self.check(&Tok::Not) {
            let line = self.line();
            self.bump();
            let operand = self.parse_not()?;
            return Ok(Expr {
                kind: ExprKind::UnaryOp {
                    op: UnaryOp::Not,
                    operand: Box::new(operand),
                },
                line,
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, PyError> {
        let line = self.line();
        let left = self.parse_bitor()?;
        let mut ops = Vec::new();
        let mut comparators = Vec::new();
        loop {
            let op = match self.peek() {
                Tok::EqEq => CmpOp::Eq,
                Tok::NotEq => CmpOp::NotEq,
                Tok::Lt => CmpOp::Lt,
                Tok::Le => CmpOp::Le,
                Tok::Gt => CmpOp::Gt,
                Tok::Ge => CmpOp::Ge,
                Tok::In => CmpOp::In,
                Tok::Is => {
                    self.bump();
                    let op = if self.eat(&Tok::Not) {
                        CmpOp::IsNot
                    } else {
                        CmpOp::Is
                    };
                    ops.push(op);
                    comparators.push(self.parse_bitor()?);
                    continue;
                }
                Tok::Not if matches!(self.peek_ahead(1), Tok::In) => {
                    self.bump();
                    self.bump();
                    ops.push(CmpOp::NotIn);
                    comparators.push(self.parse_bitor()?);
                    continue;
                }
                _ => break,
            };
            self.bump();
            ops.push(op);
            comparators.push(self.parse_bitor()?);
        }
        if ops.is_empty() {
            return Ok(left);
        }
        Ok(Expr {
            kind: ExprKind::Compare {
                left: Box::new(left),
                ops,
                comparators,
            },
            line,
        })
    }

    fn parse_bitor(&mut self) -> Result<Expr, PyError> {
        let mut left = self.parse_bitxor()?;
        while self.check(&Tok::Pipe) {
            let line = self.line();
            self.bump();
            let right = self.parse_bitxor()?;
            left = Expr {
                kind: ExprKind::BinOp {
                    left: Box::new(left),
                    op: BinOp::BitOr,
                    right: Box::new(right),
                },
                line,
            };
        }
        Ok(left)
    }

    fn parse_bitxor(&mut self) -> Result<Expr, PyError> {
        let mut left = self.parse_bitand()?;
        while self.check(&Tok::Caret) {
            let line = self.line();
            self.bump();
            let right = self.parse_bitand()?;
            left = Expr {
                kind: ExprKind::BinOp {
                    left: Box::new(left),
                    op: BinOp::BitXor,
                    right: Box::new(right),
                },
                line,
            };
        }
        Ok(left)
    }

    fn parse_bitand(&mut self) -> Result<Expr, PyError> {
        let mut left = self.parse_additive()?;
        while self.check(&Tok::Amp) {
            let line = self.line();
            self.bump();
            let right = self.parse_additive()?;
            left = Expr {
                kind: ExprKind::BinOp {
                    left: Box::new(left),
                    op: BinOp::BitAnd,
                    right: Box::new(right),
                },
                line,
            };
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, PyError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr {
                kind: ExprKind::BinOp {
                    left: Box::new(left),
                    op,
                    right: Box::new(right),
                },
                line,
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, PyError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::DoubleSlash => BinOp::FloorDiv,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let right = self.parse_unary()?;
            left = Expr {
                kind: ExprKind::BinOp {
                    left: Box::new(left),
                    op,
                    right: Box::new(right),
                },
                line,
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, PyError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let operand = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::UnaryOp {
                        op: UnaryOp::Neg,
                        operand: Box::new(operand),
                    },
                    line,
                })
            }
            Tok::Plus => {
                self.bump();
                let operand = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::UnaryOp {
                        op: UnaryOp::Pos,
                        operand: Box::new(operand),
                    },
                    line,
                })
            }
            _ => self.parse_power(),
        }
    }

    fn parse_power(&mut self) -> Result<Expr, PyError> {
        let base = self.parse_postfix()?;
        if self.check(&Tok::DoubleStar) {
            let line = self.line();
            self.bump();
            // Right-associative; exponent may itself be unary (-1).
            let exp = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::BinOp {
                    left: Box::new(base),
                    op: BinOp::Pow,
                    right: Box::new(exp),
                },
                line,
            });
        }
        Ok(base)
    }

    fn parse_postfix(&mut self) -> Result<Expr, PyError> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                Tok::LParen => {
                    let line = self.line();
                    self.bump();
                    let mut args = Vec::new();
                    let mut kwargs = Vec::new();
                    while !self.check(&Tok::RParen) {
                        // keyword argument?
                        if let (Tok::Ident(name), Tok::Eq) =
                            (self.peek().clone(), self.peek_ahead(1).clone())
                        {
                            self.bump();
                            self.bump();
                            let value = self.parse_expr()?;
                            kwargs.push((name, value));
                        } else {
                            if !kwargs.is_empty() {
                                return Err(
                                    self.err_here("positional argument after keyword argument")
                                );
                            }
                            args.push(self.parse_expr()?);
                        }
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    expr = Expr {
                        kind: ExprKind::Call {
                            func: Box::new(expr),
                            args,
                            kwargs,
                        },
                        line,
                    };
                }
                Tok::Dot => {
                    let line = self.line();
                    self.bump();
                    let attr = self.expect_ident()?;
                    expr = Expr {
                        kind: ExprKind::Attribute {
                            value: Box::new(expr),
                            attr,
                        },
                        line,
                    };
                }
                Tok::LBracket => {
                    let line = self.line();
                    self.bump();
                    let index = self.parse_index()?;
                    self.expect(&Tok::RBracket)?;
                    expr = Expr {
                        kind: ExprKind::Subscript {
                            value: Box::new(expr),
                            index: Box::new(index),
                        },
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_index(&mut self) -> Result<Index, PyError> {
        let lower = if self.check(&Tok::Colon) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        if !self.eat(&Tok::Colon) {
            return Ok(Index::Item(
                lower.expect("non-slice index has an expression"),
            ));
        }
        let upper = if self.check(&Tok::Colon) || self.check(&Tok::RBracket) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        let step = if self.eat(&Tok::Colon) {
            if self.check(&Tok::RBracket) {
                None
            } else {
                Some(self.parse_expr()?)
            }
        } else {
            None
        };
        Ok(Index::Slice { lower, upper, step })
    }

    fn parse_atom(&mut self) -> Result<Expr, PyError> {
        let line = self.line();
        let kind = match self.bump() {
            Tok::Int(v) => ExprKind::Int(v),
            Tok::Float(v) => ExprKind::Float(v),
            Tok::Str(s) => {
                // Adjacent string literals concatenate: "a" "b" == "ab".
                let mut full = s;
                while let Tok::Str(next) = self.peek() {
                    full.push_str(next);
                    self.bump();
                }
                ExprKind::Str(Rc::from(full.as_str()))
            }
            Tok::True => ExprKind::Bool(true),
            Tok::False => ExprKind::Bool(false),
            Tok::None => ExprKind::NoneLit,
            Tok::Ident(name) => ExprKind::Name(name),
            Tok::LParen => {
                if self.eat(&Tok::RParen) {
                    ExprKind::Tuple(Vec::new())
                } else {
                    let first = self.parse_expr()?;
                    if self.check(&Tok::Comma) {
                        let mut items = vec![first];
                        while self.eat(&Tok::Comma) {
                            if self.check(&Tok::RParen) {
                                break;
                            }
                            items.push(self.parse_expr()?);
                        }
                        self.expect(&Tok::RParen)?;
                        ExprKind::Tuple(items)
                    } else {
                        self.expect(&Tok::RParen)?;
                        return Ok(first);
                    }
                }
            }
            Tok::LBracket => {
                if self.eat(&Tok::RBracket) {
                    ExprKind::List(Vec::new())
                } else {
                    let first = self.parse_expr()?;
                    if self.check(&Tok::For) {
                        // List comprehension.
                        self.bump();
                        let target = self.parse_target_list()?;
                        self.expect(&Tok::In)?;
                        // The iterable and conditions are `or`-level
                        // expressions (a ternary would swallow the `if`).
                        let iter = self.parse_or()?;
                        let mut conds = Vec::new();
                        while self.eat(&Tok::If) {
                            conds.push(self.parse_or()?);
                        }
                        self.expect(&Tok::RBracket)?;
                        ExprKind::ListComp {
                            elt: Box::new(first),
                            target: Box::new(target),
                            iter: Box::new(iter),
                            conds,
                        }
                    } else {
                        let mut items = vec![first];
                        while self.eat(&Tok::Comma) {
                            if self.check(&Tok::RBracket) {
                                break;
                            }
                            items.push(self.parse_expr()?);
                        }
                        self.expect(&Tok::RBracket)?;
                        ExprKind::List(items)
                    }
                }
            }
            Tok::LBrace => {
                let mut pairs = Vec::new();
                while !self.check(&Tok::RBrace) {
                    let key = self.parse_expr()?;
                    self.expect(&Tok::Colon)?;
                    let value = self.parse_expr()?;
                    pairs.push((key, value));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RBrace)?;
                ExprKind::Dict(pairs)
            }
            other => {
                let mut err = PyError::new(
                    ErrorKind::Syntax,
                    format!("unexpected {}", other.describe()),
                );
                err.push_frame("<module>", line);
                return Err(err);
            }
        };
        Ok(Expr { kind, line })
    }
}

/// Scan a function body for assigned names (locals) and `global` declarations.
///
/// Mirrors Python's compile-time scoping pass: any name assigned anywhere in
/// the body is a local for the whole function unless declared `global`.
fn scan_scope(body: &[Stmt], params: &[Param]) -> (Vec<String>, Vec<String>) {
    let mut locals: Vec<String> = params.iter().map(|p| p.name.clone()).collect();
    let mut globals = Vec::new();
    scan_stmts(body, &mut locals, &mut globals);
    locals.retain(|n| !globals.contains(n));
    locals.dedup();
    (locals, globals)
}

fn add_name(set: &mut Vec<String>, name: &str) {
    if !set.iter().any(|n| n == name) {
        set.push(name.to_string());
    }
}

fn scan_target(e: &Expr, locals: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Name(n) => add_name(locals, n),
        ExprKind::Tuple(items) | ExprKind::List(items) => {
            for item in items {
                scan_target(item, locals);
            }
        }
        // Attribute/subscript targets do not create local bindings.
        _ => {}
    }
}

fn scan_stmts(body: &[Stmt], locals: &mut Vec<String>, globals: &mut Vec<String>) {
    for stmt in body {
        match &stmt.kind {
            StmtKind::Assign { targets, .. } => {
                for t in targets {
                    scan_target(t, locals);
                }
            }
            StmtKind::AugAssign { target, .. } => scan_target(target, locals),
            StmtKind::For { target, body, .. } => {
                scan_target(target, locals);
                scan_stmts(body, locals, globals);
            }
            StmtKind::While { body, .. } => scan_stmts(body, locals, globals),
            StmtKind::If { branches, orelse } => {
                for (_, b) in branches {
                    scan_stmts(b, locals, globals);
                }
                scan_stmts(orelse, locals, globals);
            }
            StmtKind::Try {
                body,
                handlers,
                finally,
            } => {
                scan_stmts(body, locals, globals);
                for (_, alias, hbody) in handlers {
                    if let Some(a) = alias {
                        add_name(locals, a);
                    }
                    scan_stmts(hbody, locals, globals);
                }
                scan_stmts(finally, locals, globals);
            }
            StmtKind::FunctionDef(f) => add_name(locals, &f.name),
            StmtKind::Import { module, alias } => {
                let bound = alias
                    .clone()
                    .unwrap_or_else(|| module.split('.').next().unwrap().to_string());
                add_name(locals, &bound);
            }
            StmtKind::FromImport { names, .. } => {
                for (name, alias) in names {
                    add_name(locals, alias.as_ref().unwrap_or(name));
                }
            }
            StmtKind::Global(names) => {
                for n in names {
                    add_name(globals, n);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Module {
        parse_module(src).unwrap()
    }

    #[test]
    fn parses_assignment_and_expression() {
        let m = parse("x = 1 + 2 * 3\n");
        assert_eq!(m.body.len(), 1);
        match &m.body[0].kind {
            StmtKind::Assign { targets, value } => {
                assert_eq!(targets.len(), 1);
                // Precedence: 1 + (2 * 3)
                match &value.kind {
                    ExprKind::BinOp {
                        op: BinOp::Add,
                        right,
                        ..
                    } => {
                        assert!(matches!(right.kind, ExprKind::BinOp { op: BinOp::Mul, .. }));
                    }
                    other => panic!("wrong shape: {other:?}"),
                }
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_function_def_with_defaults() {
        let m = parse("def f(a, b=2):\n    return a + b\n");
        match &m.body[0].kind {
            StmtKind::FunctionDef(f) => {
                assert_eq!(f.name, "f");
                assert_eq!(f.params.len(), 2);
                assert!(f.params[1].default.is_some());
                assert!(f.local_names.contains(&"a".to_string()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_if_elif_else() {
        let m = parse("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        match &m.body[0].kind {
            StmtKind::If { branches, orelse } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(orelse.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_for_with_tuple_target() {
        let m = parse("for k, v in items:\n    pass\n");
        match &m.body[0].kind {
            StmtKind::For { target, .. } => {
                assert!(matches!(target.kind, ExprKind::Tuple(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_chained_comparison() {
        let m = parse("r = 0 <= x < 10\n");
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Compare {
                    ops, comparators, ..
                } => {
                    assert_eq!(ops, &vec![CmpOp::Le, CmpOp::Lt]);
                    assert_eq!(comparators.len(), 2);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_call_with_kwargs() {
        let m = parse("f(1, 2, key=3)\n");
        match &m.body[0].kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::Call { args, kwargs, .. } => {
                    assert_eq!(args.len(), 2);
                    assert_eq!(kwargs.len(), 1);
                    assert_eq!(kwargs[0].0, "key");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_positional_after_keyword() {
        assert!(parse_module("f(a=1, 2)\n").is_err());
    }

    #[test]
    fn parses_slices() {
        for src in [
            "a[1]\n",
            "a[1:2]\n",
            "a[:2]\n",
            "a[1:]\n",
            "a[:]\n",
            "a[::2]\n",
            "a[1:10:2]\n",
        ] {
            assert!(parse_module(src).is_ok(), "{src}");
        }
    }

    #[test]
    fn parses_dict_and_list_literals() {
        let m = parse("d = {'a': 1, 'b': 2}\nl = [1, 2, 3]\nt = (1, 2)\ne = ()\n");
        assert_eq!(m.body.len(), 4);
    }

    #[test]
    fn parses_list_comprehension() {
        let m = parse("squares = [x * x for x in range(10) if x > 2]\n");
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::ListComp { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_lambda() {
        let m = parse("f = lambda x, y=1: x + y\n");
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Lambda(f) => assert_eq!(f.params.len(), 2),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_try_except_finally() {
        let src = "\
try:
    risky()
except ValueError as e:
    handle(e)
except:
    fallback()
finally:
    cleanup()
";
        let m = parse(src);
        match &m.body[0].kind {
            StmtKind::Try {
                handlers, finally, ..
            } => {
                assert_eq!(handlers.len(), 2);
                assert_eq!(handlers[0].0.as_deref(), Some("ValueError"));
                assert_eq!(handlers[0].1.as_deref(), Some("e"));
                assert!(handlers[1].0.is_none());
                assert_eq!(finally.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_imports() {
        let m = parse("import pickle\nimport os.path as p\nfrom sklearn.ensemble import RandomForestClassifier\n");
        assert_eq!(m.body.len(), 3);
        match &m.body[2].kind {
            StmtKind::FromImport { module, names } => {
                assert_eq!(module, "sklearn.ensemble");
                assert_eq!(names[0].0, "RandomForestClassifier");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_semicolon_separated_statements() {
        let m = parse("a = 1; b = 2; c = 3\n");
        assert_eq!(m.body.len(), 3);
    }

    #[test]
    fn parses_single_line_suite() {
        let m = parse("if x: y = 1\n");
        match &m.body[0].kind {
            StmtKind::If { branches, .. } => assert_eq!(branches[0].1.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scope_scan_distinguishes_global() {
        let m = parse("def f():\n    global g\n    g = 1\n    x = 2\n");
        match &m.body[0].kind {
            StmtKind::FunctionDef(f) => {
                assert!(f.global_names.contains(&"g".to_string()));
                assert!(!f.local_names.contains(&"g".to_string()));
                assert!(f.local_names.contains(&"x".to_string()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_assignment_to_literal() {
        assert!(parse_module("1 = x\n").is_err());
        assert!(parse_module("f() = 3\n").is_err());
    }

    #[test]
    fn string_percent_format_parses() {
        // Listing 3 uses `"""...%d...""" % estimator`.
        let m = parse("q = \"SELECT %d\" % est\n");
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::BinOp { op: BinOp::Mod, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_listing4_mean_deviation_body() {
        let src = "\
mean = 0
for i in range(0, len(column)):
    mean += column[i]
mean = mean / len(column)
distance = 0
for i in range(0, len(column)):
    distance += column[i] - mean
deviation = distance / len(column)
";
        let m = parse(src);
        assert_eq!(m.body.len(), 6);
    }

    #[test]
    fn parses_listing5_loader_body() {
        let src = "\
files = os.listdir(path)
result = []
for i in range(0, len(files) - 1):
    file = open(files[i], \"r\")
    for line in file:
        result.append(int(line))
return result
";
        // `return` at top level is a parse-level construct here; the devudf
        // transformation wraps bodies in a def, but the parser accepts it.
        assert!(parse_module(src).is_ok());
    }

    #[test]
    fn parses_ternary() {
        let m = parse("x = a if cond else b\n");
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => assert!(matches!(value.kind, ExprKind::IfExp { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_power_right_associative() {
        let m = parse("x = 2 ** 3 ** 2\n");
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::BinOp {
                    op: BinOp::Pow,
                    right,
                    ..
                } => {
                    assert!(matches!(right.kind, ExprKind::BinOp { op: BinOp::Pow, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_multiline_call_listing3_style() {
        let src = "res = conn.execute(\n    \"\"\"\n    SELECT *\n    FROM train_rnforest(\n        (SELECT data, labels\n        FROM trainingset), %d);\n    \"\"\" % estimator)\n";
        assert!(parse_module(src).is_ok());
    }

    #[test]
    fn line_numbers_on_statements() {
        let m = parse("a = 1\n\nb = 2\n");
        assert_eq!(m.body[0].line, 1);
        assert_eq!(m.body[1].line, 3);
    }
}
