//! The `pickle` module exposed to interpreted code.

use crate::native::{make_fn, make_module, type_err};
use crate::pickle;
use crate::value::Value;

/// Build the `pickle` module (`dumps`, `loads`, `dump`, `load`).
pub fn module() -> Value {
    make_module(
        "pickle",
        vec![
            (
                "dumps",
                make_fn("dumps", |_interp, args, _kw| {
                    let v = args
                        .first()
                        .ok_or_else(|| type_err("dumps() missing argument"))?;
                    Ok(Value::bytes(pickle::dumps(v)?))
                }),
            ),
            (
                "loads",
                make_fn("loads", |_interp, args, _kw| match args.first() {
                    Some(Value::Bytes(b)) => pickle::loads(b),
                    Some(other) => Err(type_err(format!(
                        "loads() argument must be bytes, not '{}'",
                        other.type_name()
                    ))),
                    None => Err(type_err("loads() missing argument")),
                }),
            ),
            (
                "load",
                make_fn("load", |interp, args, _kw| {
                    // `pickle.load(open('./input.bin','rb'))` — paper Listing 2.
                    let file = args
                        .first()
                        .ok_or_else(|| type_err("load() missing file argument"))?;
                    let data = interp.call_method(file, "read", &[], &[], 0)?;
                    match data {
                        Value::Bytes(b) => pickle::loads(&b),
                        Value::Str(s) => pickle::loads(s.as_bytes()),
                        other => Err(type_err(format!(
                            "load() file.read() returned '{}'",
                            other.type_name()
                        ))),
                    }
                }),
            ),
            (
                "dump",
                make_fn("dump", |interp, args, _kw| {
                    let (Some(value), Some(file)) = (args.first(), args.get(1)) else {
                        return Err(type_err("dump() takes (value, file)"));
                    };
                    let blob = Value::bytes(pickle::dumps(value)?);
                    interp.call_method(file, "write", &[blob], &[], 0)?;
                    Ok(Value::None)
                }),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use crate::fs::{FsProvider, MemFs};
    use crate::interp::Interp;
    use crate::value::Value;

    #[test]
    fn listing2_load_pattern() {
        // Reproduce the exact harness lines from paper Listing 2.
        let fs = Rc::new(MemFs::new());
        // Server-side: write the input blob.
        let mut writer = Interp::with_fs(fs.clone());
        writer
            .eval_module(
                "import pickle\nf = open('./input.bin', 'wb')\npickle.dump({'data': [1, 2, 3], 'n_estimators': 10}, f)\nf.close()\n",
            )
            .unwrap();
        assert!(fs.exists("input.bin"));
        // Client-side: the transformed UDF harness.
        let mut reader = Interp::with_fs(fs);
        reader
            .eval_module(
                "import pickle\ninput_parameters = pickle.load(open('./input.bin', 'rb'))\nn = input_parameters['n_estimators']\nfirst = input_parameters['data'][0]\n",
            )
            .unwrap();
        assert_eq!(reader.get_global("n").unwrap(), Value::Int(10));
        assert_eq!(reader.get_global("first").unwrap(), Value::Int(1));
    }

    #[test]
    fn dumps_loads_in_code() {
        let mut i = Interp::new();
        i.eval_module("import pickle\nb = pickle.dumps([1, 'two', 3.0])\nv = pickle.loads(b)\nok = v[1] == 'two'\n")
            .unwrap();
        assert_eq!(i.get_global("ok").unwrap(), Value::Bool(true));
    }

    #[test]
    fn loads_of_non_bytes_errors() {
        let mut i = Interp::new();
        assert!(i
            .eval_module("import pickle\npickle.loads('text')\n")
            .is_err());
    }
}
