//! The `os` module: directory listing and path helpers over the virtual fs.

use crate::native::{make_fn, make_module, type_err};
use crate::value::Value;

/// Build the `os` module.
pub fn module() -> Value {
    make_module(
        "os",
        vec![
            (
                "listdir",
                make_fn("listdir", |interp, args, _kw| {
                    let path = match args.first() {
                        Some(Value::Str(s)) => s.to_string(),
                        None => ".".to_string(),
                        Some(other) => {
                            return Err(type_err(format!(
                                "listdir() path must be str, not '{}'",
                                other.type_name()
                            )))
                        }
                    };
                    let names = interp
                        .fs
                        .listdir(&path)
                        .map_err(|e| crate::error::PyError::new(crate::error::ErrorKind::Io, e))?;
                    Ok(Value::list(names.into_iter().map(Value::str).collect()))
                }),
            ),
            ("path", path_module()),
            ("sep", Value::str("/")),
        ],
    )
}

/// Build the `os.path` module.
pub fn path_module() -> Value {
    make_module(
        "os.path",
        vec![
            (
                "join",
                make_fn("join", |_interp, args, _kw| {
                    let mut parts = Vec::with_capacity(args.len());
                    for a in args {
                        match a {
                            Value::Str(s) => parts.push(s.to_string()),
                            other => {
                                return Err(type_err(format!(
                                    "join() arguments must be str, not '{}'",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                    let joined = parts
                        .iter()
                        .map(|p| p.trim_end_matches('/'))
                        .filter(|p| !p.is_empty())
                        .collect::<Vec<_>>()
                        .join("/");
                    Ok(Value::str(joined))
                }),
            ),
            (
                "exists",
                make_fn("exists", |interp, args, _kw| {
                    let Some(Value::Str(path)) = args.first() else {
                        return Err(type_err("exists() path must be str"));
                    };
                    Ok(Value::Bool(interp.fs.exists(path)))
                }),
            ),
            (
                "basename",
                make_fn("basename", |_interp, args, _kw| {
                    let Some(Value::Str(path)) = args.first() else {
                        return Err(type_err("basename() path must be str"));
                    };
                    Ok(Value::str(path.rsplit('/').next().unwrap_or_default()))
                }),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use crate::fs::MemFs;
    use crate::interp::Interp;
    use crate::value::Value;

    #[test]
    fn listdir_from_interpreted_code() {
        let fs = MemFs::with_files(&[("data/a.csv", "1"), ("data/b.csv", "2")]);
        let mut i = Interp::with_fs(Rc::new(fs));
        i.eval_module("import os\nfiles = os.listdir('data')\nn = len(files)\n")
            .unwrap();
        assert_eq!(i.get_global("n").unwrap(), Value::Int(2));
    }

    #[test]
    fn path_join_and_exists() {
        let fs = MemFs::with_files(&[("dir/x.txt", "hi")]);
        let mut i = Interp::with_fs(Rc::new(fs));
        i.eval_module(
            "import os\np = os.path.join('dir', 'x.txt')\ne = os.path.exists(p)\nb = os.path.basename(p)\n",
        )
        .unwrap();
        assert_eq!(i.get_global("p").unwrap(), Value::str("dir/x.txt"));
        assert_eq!(i.get_global("e").unwrap(), Value::Bool(true));
        assert_eq!(i.get_global("b").unwrap(), Value::str("x.txt"));
    }

    #[test]
    fn listdir_missing_dir_raises_ioerror() {
        let mut i = Interp::new();
        let e = i
            .eval_module("import os\nos.listdir('missing')\n")
            .unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::Io);
    }

    #[test]
    fn import_os_path_directly() {
        let mut i = Interp::new();
        i.eval_module("from os.path import join\nj = join('a', 'b')\n")
            .unwrap();
        assert_eq!(i.get_global("j").unwrap(), Value::str("a/b"));
    }
}
