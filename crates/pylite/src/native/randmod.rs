//! The `random` module, driven by the interpreter's deterministic seed.
//!
//! Determinism matters for the reproduction: the paper's sampling transfer
//! option ("a uniform random sample of a size specified by the user", §2.1)
//! must be replayable in tests and benchmarks.

use crate::native::{make_fn, make_module, type_err, value_err};
use crate::value::Value;

/// Advance the interpreter's xorshift state and return the next u64.
pub(crate) fn next_u64(state: &mut u64) -> u64 {
    // xorshift64*; the zero state is fixed up to a constant.
    if *state == 0 {
        *state = 0x9e3779b97f4a7c15;
    }
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545f4914f6cdd1d)
}

fn next_f64(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Build the `random` module.
pub fn module() -> Value {
    make_module(
        "random",
        vec![
            (
                "seed",
                make_fn("seed", |interp, args, _kw| {
                    match args.first() {
                        Some(Value::Int(s)) => interp.rng_seed = *s as u64,
                        Some(other) => {
                            return Err(type_err(format!(
                                "seed() argument must be int, not '{}'",
                                other.type_name()
                            )))
                        }
                        None => interp.rng_seed = 0x5eed_cafe,
                    }
                    Ok(Value::None)
                }),
            ),
            (
                "random",
                make_fn("random", |interp, _args, _kw| {
                    Ok(Value::Float(next_f64(&mut interp.rng_seed)))
                }),
            ),
            (
                "randint",
                make_fn("randint", |interp, args, _kw| {
                    let (Some(Value::Int(a)), Some(Value::Int(b))) = (args.first(), args.get(1))
                    else {
                        return Err(type_err("randint() takes two int arguments"));
                    };
                    if a > b {
                        return Err(value_err("randint() empty range"));
                    }
                    let span = (*b - *a + 1) as u64;
                    Ok(Value::Int(
                        a + (next_u64(&mut interp.rng_seed) % span) as i64,
                    ))
                }),
            ),
            (
                "choice",
                make_fn("choice", |interp, args, _kw| {
                    let items = interp.iter_values(
                        args.first()
                            .ok_or_else(|| type_err("choice() missing argument"))?,
                        0,
                    )?;
                    if items.is_empty() {
                        return Err(value_err("choice() on empty sequence"));
                    }
                    let i = (next_u64(&mut interp.rng_seed) % items.len() as u64) as usize;
                    Ok(items[i].clone())
                }),
            ),
            (
                "sample",
                make_fn("sample", |interp, args, _kw| {
                    let items = interp.iter_values(
                        args.first()
                            .ok_or_else(|| type_err("sample() missing population"))?,
                        0,
                    )?;
                    let Some(Value::Int(k)) = args.get(1) else {
                        return Err(type_err("sample() size must be int"));
                    };
                    let k = *k;
                    if k < 0 || k as usize > items.len() {
                        return Err(value_err("sample larger than population or negative"));
                    }
                    // Partial Fisher–Yates.
                    let mut pool = items;
                    let mut out = Vec::with_capacity(k as usize);
                    for _ in 0..k {
                        let i = (next_u64(&mut interp.rng_seed) % pool.len() as u64) as usize;
                        out.push(pool.swap_remove(i));
                    }
                    Ok(Value::list(out))
                }),
            ),
            (
                "shuffle",
                make_fn("shuffle", |interp, args, _kw| {
                    let Some(Value::List(list)) = args.first() else {
                        return Err(type_err("shuffle() argument must be a list"));
                    };
                    let mut items = list.borrow_mut();
                    let n = items.len();
                    for i in (1..n).rev() {
                        let j = (next_u64(&mut interp.rng_seed) % (i as u64 + 1)) as usize;
                        items.swap(i, j);
                    }
                    Ok(Value::None)
                }),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;
    use crate::value::Value;

    #[test]
    fn seeded_sequences_are_deterministic() {
        let run = || {
            let mut i = Interp::new();
            i.eval_module("import random\nrandom.seed(7)\nvals = [random.randint(0, 100) for _ in range(5)]\n")
                .unwrap();
            i.get_global("vals").unwrap().repr()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_in_unit_interval() {
        let mut i = Interp::new();
        i.eval_module("import random\nok = True\nfor _ in range(100):\n    r = random.random()\n    ok = ok and 0.0 <= r < 1.0\n")
            .unwrap();
        assert_eq!(i.get_global("ok").unwrap(), Value::Bool(true));
    }

    #[test]
    fn sample_has_requested_size_and_unique_members() {
        let mut i = Interp::new();
        i.eval_module("import random\nrandom.seed(1)\ns = random.sample(range(100), 10)\nn = len(s)\nuniq = len(sorted(s)) == 10\n")
            .unwrap();
        assert_eq!(i.get_global("n").unwrap(), Value::Int(10));
    }

    #[test]
    fn sample_too_large_errors() {
        let mut i = Interp::new();
        assert!(i
            .eval_module("import random\nrandom.sample([1, 2], 5)\n")
            .is_err());
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut i = Interp::new();
        i.eval_module("import random\nrandom.seed(3)\nl = list(range(20))\nrandom.shuffle(l)\nsame = l == list(range(20))\ntotal = sum(l)\n")
            .unwrap();
        assert_eq!(i.get_global("same").unwrap(), Value::Bool(false));
        assert_eq!(i.get_global("total").unwrap(), Value::Int(190));
    }
}
