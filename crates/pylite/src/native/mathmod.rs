//! The `math` module.

use crate::native::{make_fn, make_module, type_err, value_err};
use crate::value::Value;

fn as_f64(v: &Value, who: &str) -> Result<f64, crate::error::PyError> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        Value::Bool(b) => Ok(*b as i64 as f64),
        other => Err(type_err(format!(
            "{who}() argument must be a number, not '{}'",
            other.type_name()
        ))),
    }
}

macro_rules! unary_math {
    ($name:literal, $f:expr) => {
        (
            $name,
            make_fn($name, move |_interp, args, _kw| {
                let x = as_f64(
                    args.first()
                        .ok_or_else(|| type_err(concat!($name, "() missing argument")))?,
                    $name,
                )?;
                #[allow(clippy::redundant_closure_call)]
                ($f)(x)
            }),
        )
    };
}

/// Build the `math` module.
pub fn module() -> Value {
    make_module(
        "math",
        vec![
            ("pi", Value::Float(std::f64::consts::PI)),
            ("e", Value::Float(std::f64::consts::E)),
            unary_math!("sqrt", |x: f64| {
                if x < 0.0 {
                    Err(value_err("math domain error"))
                } else {
                    Ok(Value::Float(x.sqrt()))
                }
            }),
            unary_math!("floor", |x: f64| Ok(Value::Int(x.floor() as i64))),
            unary_math!("ceil", |x: f64| Ok(Value::Int(x.ceil() as i64))),
            unary_math!("fabs", |x: f64| Ok(Value::Float(x.abs()))),
            unary_math!("exp", |x: f64| Ok(Value::Float(x.exp()))),
            unary_math!("log", |x: f64| {
                if x <= 0.0 {
                    Err(value_err("math domain error"))
                } else {
                    Ok(Value::Float(x.ln()))
                }
            }),
            unary_math!("log2", |x: f64| {
                if x <= 0.0 {
                    Err(value_err("math domain error"))
                } else {
                    Ok(Value::Float(x.log2()))
                }
            }),
            unary_math!("sin", |x: f64| Ok(Value::Float(x.sin()))),
            unary_math!("cos", |x: f64| Ok(Value::Float(x.cos()))),
            (
                "pow",
                make_fn("pow", |_interp, args, _kw| {
                    if args.len() != 2 {
                        return Err(type_err("pow() takes exactly 2 arguments"));
                    }
                    let a = as_f64(&args[0], "pow")?;
                    let b = as_f64(&args[1], "pow")?;
                    Ok(Value::Float(a.powf(b)))
                }),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;
    use crate::value::Value;

    #[test]
    fn math_functions() {
        let mut i = Interp::new();
        i.eval_module(
            "import math\na = math.sqrt(16)\nb = math.floor(2.7)\nc = math.ceil(2.1)\nd = math.fabs(-3.5)\np = math.pi\nq = math.pow(2, 10)\n",
        )
        .unwrap();
        assert_eq!(i.get_global("a").unwrap(), Value::Float(4.0));
        assert_eq!(i.get_global("b").unwrap(), Value::Int(2));
        assert_eq!(i.get_global("c").unwrap(), Value::Int(3));
        assert_eq!(i.get_global("d").unwrap(), Value::Float(3.5));
        assert_eq!(i.get_global("q").unwrap(), Value::Float(1024.0));
        match i.get_global("p").unwrap() {
            Value::Float(f) => assert!((f - std::f64::consts::PI).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sqrt_of_negative_is_domain_error() {
        let mut i = Interp::new();
        let e = i.eval_module("import math\nmath.sqrt(-1)\n").unwrap_err();
        assert_eq!(e.kind, crate::error::ErrorKind::Value);
    }

    #[test]
    fn log_domain() {
        let mut i = Interp::new();
        assert!(i.eval_module("import math\nmath.log(0)\n").is_err());
        let mut i = Interp::new();
        i.eval_module("import math\nx = math.log(math.e)\n")
            .unwrap();
        match i.get_global("x").unwrap() {
            Value::Float(f) => assert!((f - 1.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }
}
