//! The `numpy` module: vectorized helpers over [`Array`].
//!
//! MonetDB/Python hands UDFs their input columns as numpy arrays; pylite's
//! [`Array`] plays that role, and this module provides the handful of numpy
//! functions the paper's listings and realistic UDFs need.

use crate::native::{make_fn, make_module, type_err, value_err};
use crate::value::{Array, Value};

fn to_array(interp: &mut crate::interp::Interp, v: &Value) -> Result<Array, crate::error::PyError> {
    match v {
        Value::Array(a) => Ok(a.as_ref().clone()),
        Value::List(_) | Value::Tuple(_) | Value::Range { .. } => {
            let items = interp.iter_values(v, 0)?;
            Array::from_values(&items)
        }
        Value::Int(i) => Ok(Array::Int(vec![*i])),
        Value::Float(f) => Ok(Array::Float(vec![*f])),
        Value::Bool(b) => Ok(Array::Bool(vec![*b])),
        other => Err(type_err(format!(
            "cannot convert '{}' to array",
            other.type_name()
        ))),
    }
}

fn stats(v: &[f64]) -> (f64, f64) {
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Build the `numpy` module.
pub fn module() -> Value {
    make_module(
        "numpy",
        vec![
            (
                "array",
                make_fn("array", |interp, args, _kw| {
                    let v = args
                        .first()
                        .ok_or_else(|| type_err("array() missing argument"))?;
                    Ok(Value::array(to_array(interp, v)?))
                }),
            ),
            (
                "arange",
                make_fn("arange", |_interp, args, _kw| {
                    let get = |v: &Value| match v {
                        Value::Int(i) => Ok(*i),
                        other => Err(type_err(format!(
                            "arange() argument must be int, not '{}'",
                            other.type_name()
                        ))),
                    };
                    let (start, stop) = match args.len() {
                        1 => (0, get(&args[0])?),
                        2 => (get(&args[0])?, get(&args[1])?),
                        _ => return Err(type_err("arange() takes 1 or 2 arguments")),
                    };
                    Ok(Value::array(Array::Int((start..stop).collect())))
                }),
            ),
            (
                "zeros",
                make_fn("zeros", |_interp, args, _kw| {
                    let Some(Value::Int(n)) = args.first() else {
                        return Err(type_err("zeros() size must be int"));
                    };
                    Ok(Value::array(Array::Float(vec![0.0; (*n).max(0) as usize])))
                }),
            ),
            (
                "ones",
                make_fn("ones", |_interp, args, _kw| {
                    let Some(Value::Int(n)) = args.first() else {
                        return Err(type_err("ones() size must be int"));
                    };
                    Ok(Value::array(Array::Float(vec![1.0; (*n).max(0) as usize])))
                }),
            ),
            (
                "sum",
                make_fn("sum", |interp, args, _kw| {
                    let a = to_array(
                        interp,
                        args.first()
                            .ok_or_else(|| type_err("sum() missing argument"))?,
                    )?;
                    Ok(match a {
                        Array::Int(v) => Value::Int(v.iter().sum()),
                        Array::Float(v) => Value::Float(v.iter().sum()),
                        Array::Bool(v) => Value::Int(v.iter().filter(|b| **b).count() as i64),
                        Array::Str(_) => return Err(type_err("cannot sum string array")),
                    })
                }),
            ),
            (
                "mean",
                make_fn("mean", |interp, args, _kw| {
                    let a = to_array(
                        interp,
                        args.first()
                            .ok_or_else(|| type_err("mean() missing argument"))?,
                    )?;
                    let v = a.as_f64()?;
                    if v.is_empty() {
                        return Err(value_err("mean of empty array"));
                    }
                    Ok(Value::Float(v.iter().sum::<f64>() / v.len() as f64))
                }),
            ),
            (
                "median",
                make_fn("median", |interp, args, _kw| {
                    let a = to_array(
                        interp,
                        args.first()
                            .ok_or_else(|| type_err("median() missing argument"))?,
                    )?;
                    let mut v = a.as_f64()?;
                    if v.is_empty() {
                        return Err(value_err("median of empty array"));
                    }
                    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    let mid = v.len() / 2;
                    Ok(Value::Float(if v.len() % 2 == 1 {
                        v[mid]
                    } else {
                        (v[mid - 1] + v[mid]) / 2.0
                    }))
                }),
            ),
            (
                "std",
                make_fn("std", |interp, args, _kw| {
                    let a = to_array(
                        interp,
                        args.first()
                            .ok_or_else(|| type_err("std() missing argument"))?,
                    )?;
                    let v = a.as_f64()?;
                    if v.is_empty() {
                        return Err(value_err("std of empty array"));
                    }
                    Ok(Value::Float(stats(&v).1.sqrt()))
                }),
            ),
            (
                "absolute",
                make_fn("absolute", |interp, args, _kw| {
                    let a = to_array(
                        interp,
                        args.first()
                            .ok_or_else(|| type_err("absolute() missing argument"))?,
                    )?;
                    Ok(Value::array(match a {
                        Array::Int(v) => Array::Int(v.iter().map(|x| x.abs()).collect()),
                        Array::Float(v) => Array::Float(v.iter().map(|x| x.abs()).collect()),
                        other => other,
                    }))
                }),
            ),
            (
                "sqrt",
                make_fn("sqrt", |interp, args, _kw| {
                    let a = to_array(
                        interp,
                        args.first()
                            .ok_or_else(|| type_err("sqrt() missing argument"))?,
                    )?;
                    let v = a.as_f64()?;
                    Ok(Value::array(Array::Float(
                        v.iter().map(|x| x.sqrt()).collect(),
                    )))
                }),
            ),
            (
                "concatenate",
                make_fn("concatenate", |interp, args, _kw| {
                    let parts = interp.iter_values(
                        args.first()
                            .ok_or_else(|| type_err("concatenate() missing argument"))?,
                        0,
                    )?;
                    let mut all = Vec::new();
                    for p in &parts {
                        let a = to_array(interp, p)?;
                        for i in 0..a.len() {
                            all.push(a.get(i));
                        }
                    }
                    Ok(Value::array(Array::from_values(&all)?))
                }),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;
    use crate::value::{Array, Value};

    fn g(i: &Interp, n: &str) -> Value {
        i.get_global(n).unwrap()
    }

    #[test]
    fn array_construction_and_aggregates() {
        let mut i = Interp::new();
        i.eval_module(
            "import numpy\na = numpy.array([1, 2, 3, 4])\ns = numpy.sum(a)\nm = numpy.mean(a)\nmd = numpy.median(a)\n",
        )
        .unwrap();
        assert_eq!(g(&i, "s"), Value::Int(10));
        assert_eq!(g(&i, "m"), Value::Float(2.5));
        assert_eq!(g(&i, "md"), Value::Float(2.5));
    }

    #[test]
    fn absolute_fixes_scenario_a() {
        // numpy.absolute is the fix for the Listing 4 bug.
        let mut i = Interp::new();
        i.set_global("col", Value::array(Array::Int(vec![1, 2, 3, 4, 5])));
        i.eval_module(
            "import numpy\nmean = numpy.mean(col)\ndev = numpy.mean(numpy.absolute(col - mean))\n",
        )
        .unwrap();
        assert_eq!(g(&i, "dev"), Value::Float(1.2));
    }

    #[test]
    fn sum_over_comparison_counts_matches_listing3() {
        // `numpy.sum(predictions == labels)` — the accuracy count of Listing 3.
        let mut i = Interp::new();
        i.set_global("predictions", Value::array(Array::Int(vec![1, 0, 1, 1])));
        i.set_global("labels", Value::array(Array::Int(vec![1, 1, 1, 0])));
        i.eval_module("import numpy\ncorrect = numpy.sum(predictions == labels)\n")
            .unwrap();
        assert_eq!(g(&i, "correct"), Value::Int(2));
    }

    #[test]
    fn median_odd_and_even() {
        let mut i = Interp::new();
        i.eval_module(
            "import numpy\na = numpy.median([3, 1, 2])\nb = numpy.median([4, 1, 2, 3])\n",
        )
        .unwrap();
        assert_eq!(g(&i, "a"), Value::Float(2.0));
        assert_eq!(g(&i, "b"), Value::Float(2.5));
    }

    #[test]
    fn std_and_sqrt() {
        let mut i = Interp::new();
        i.eval_module("import numpy\ns = numpy.std([2, 2, 2])\nr = numpy.sqrt([4, 9])\n")
            .unwrap();
        assert_eq!(g(&i, "s"), Value::Float(0.0));
        assert_eq!(g(&i, "r"), Value::array(Array::Float(vec![2.0, 3.0])));
    }

    #[test]
    fn arange_zeros_ones_concatenate() {
        let mut i = Interp::new();
        i.eval_module(
            "import numpy\na = numpy.arange(3)\nz = numpy.zeros(2)\no = numpy.ones(2)\nc = numpy.concatenate([a, a])\nn = len(c)\n",
        )
        .unwrap();
        assert_eq!(g(&i, "a"), Value::array(Array::Int(vec![0, 1, 2])));
        assert_eq!(g(&i, "n"), Value::Int(6));
    }

    #[test]
    fn empty_mean_errors() {
        let mut i = Interp::new();
        assert!(i.eval_module("import numpy\nnumpy.mean([])\n").is_err());
    }
}
