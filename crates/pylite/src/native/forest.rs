//! A real (miniature) random-forest classifier.
//!
//! Paper Listings 1 and 3 train a scikit-learn `RandomForestClassifier`
//! inside a UDF and search for the best `n_estimators`. To reproduce that
//! experiment faithfully the substitute must actually *learn* — accuracy has
//! to depend on the data and (noisily, monotonically-ish) on the number of
//! trees — so this module implements bagged CART-style decision trees with
//! gini-impurity splits and majority voting, plus a compact binary
//! serialization so classifiers can travel through `pickle` like the paper's
//! do.

use codecs::varint::{read_u64, write_u64};

/// One node of a decision tree.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf(i64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct Forest {
    pub n_estimators: usize,
    trees: Vec<Node>,
}

/// Deterministic xorshift64* generator (no external dependency so the
/// serialized model is stable across platforms).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

const MAX_DEPTH: usize = 4;
const MIN_SPLIT: usize = 4;
const THRESHOLD_CANDIDATES: usize = 8;

fn gini(labels: &[i64], indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let mut counts: Vec<(i64, usize)> = Vec::new();
    for &i in indices {
        match counts.iter_mut().find(|(l, _)| *l == labels[i]) {
            Some((_, c)) => *c += 1,
            None => counts.push((labels[i], 1)),
        }
    }
    let n = indices.len() as f64;
    1.0 - counts
        .iter()
        .map(|(_, c)| {
            let p = *c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

fn majority(labels: &[i64], indices: &[usize]) -> i64 {
    let mut counts: Vec<(i64, usize)> = Vec::new();
    for &i in indices {
        match counts.iter_mut().find(|(l, _)| *l == labels[i]) {
            Some((_, c)) => *c += 1,
            None => counts.push((labels[i], 1)),
        }
    }
    counts
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .map(|(l, _)| l)
        .unwrap_or(0)
}

fn build_tree(
    features: &[Vec<f64>],
    labels: &[i64],
    indices: &[usize],
    depth: usize,
    rng: &mut Rng,
) -> Node {
    let impurity = gini(labels, indices);
    if depth >= MAX_DEPTH || indices.len() < MIN_SPLIT || impurity < 1e-9 {
        return Node::Leaf(majority(labels, indices));
    }
    let n_features = features[0].len();
    // Random feature subset of size ~sqrt(k), at least 1.
    let subset = ((n_features as f64).sqrt().ceil() as usize).max(1);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    for _ in 0..subset {
        let f = rng.below(n_features);
        for _ in 0..THRESHOLD_CANDIDATES {
            let pivot = features[indices[rng.below(indices.len())]][f];
            let (left, right): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| features[i][f] <= pivot);
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let n = indices.len() as f64;
            let score = (left.len() as f64 / n) * gini(labels, &left)
                + (right.len() as f64 / n) * gini(labels, &right);
            if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                best = Some((f, pivot, score));
            }
        }
    }
    let Some((feature, threshold, score)) = best else {
        return Node::Leaf(majority(labels, indices));
    };
    if score >= impurity - 1e-12 {
        return Node::Leaf(majority(labels, indices));
    }
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| features[i][feature] <= threshold);
    Node::Split {
        feature,
        threshold,
        left: Box::new(build_tree(features, labels, &left_idx, depth + 1, rng)),
        right: Box::new(build_tree(features, labels, &right_idx, depth + 1, rng)),
    }
}

impl Forest {
    /// Train a forest of `n_estimators` bagged trees.
    ///
    /// `features` is row-major (`n_rows × n_features`), `labels` one class
    /// label per row. `seed` makes training deterministic.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[i64],
        n_estimators: usize,
        seed: u64,
    ) -> Result<Forest, String> {
        if features.is_empty() {
            return Err("fit() requires at least one sample".to_string());
        }
        if features.len() != labels.len() {
            return Err(format!(
                "feature rows ({}) != labels ({})",
                features.len(),
                labels.len()
            ));
        }
        let width = features[0].len();
        if width == 0 {
            return Err("fit() requires at least one feature".to_string());
        }
        if features.iter().any(|r| r.len() != width) {
            return Err("ragged feature matrix".to_string());
        }
        if n_estimators == 0 {
            return Err("n_estimators must be positive".to_string());
        }
        let mut trees = Vec::with_capacity(n_estimators);
        for t in 0..n_estimators {
            let mut rng = Rng::new(seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ 0xabcd);
            // Bootstrap sample (with replacement).
            let indices: Vec<usize> = (0..features.len())
                .map(|_| rng.below(features.len()))
                .collect();
            trees.push(build_tree(features, labels, &indices, 0, &mut rng));
        }
        Ok(Forest {
            n_estimators,
            trees,
        })
    }

    /// Predict the class of one row by majority vote.
    pub fn predict_row(&self, row: &[f64]) -> i64 {
        let mut votes: Vec<(i64, usize)> = Vec::new();
        for tree in &self.trees {
            let label = Self::walk(tree, row);
            match votes.iter_mut().find(|(l, _)| *l == label) {
                Some((_, c)) => *c += 1,
                None => votes.push((label, 1)),
            }
        }
        votes
            .into_iter()
            .max_by_key(|(_, c)| *c)
            .map(|(l, _)| l)
            .unwrap_or(0)
    }

    /// Predict a batch of rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<i64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Fraction of `rows` classified as `labels`.
    pub fn accuracy(&self, rows: &[Vec<f64>], labels: &[i64]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let correct = rows
            .iter()
            .zip(labels)
            .filter(|(r, l)| self.predict_row(r) == **l)
            .count();
        correct as f64 / rows.len() as f64
    }

    fn walk(node: &Node, row: &[f64]) -> i64 {
        match node {
            Node::Leaf(l) => *l,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let v = row.get(*feature).copied().unwrap_or(0.0);
                if v <= *threshold {
                    Self::walk(left, row)
                } else {
                    Self::walk(right, row)
                }
            }
        }
    }

    /// Serialize to bytes (for `pickle`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_u64(&mut out, self.n_estimators as u64);
        write_u64(&mut out, self.trees.len() as u64);
        for tree in &self.trees {
            Self::write_node(&mut out, tree);
        }
        out
    }

    fn write_node(out: &mut Vec<u8>, node: &Node) {
        match node {
            Node::Leaf(l) => {
                out.push(0);
                let zig = ((l << 1) ^ (l >> 63)) as u64;
                write_u64(out, zig);
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                out.push(1);
                write_u64(out, *feature as u64);
                out.extend_from_slice(&threshold.to_le_bytes());
                Self::write_node(out, left);
                Self::write_node(out, right);
            }
        }
    }

    /// Deserialize bytes produced by [`Forest::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Forest, String> {
        let mut cursor = 0usize;
        let n_estimators = Self::read_varint(data, &mut cursor)? as usize;
        let n_trees = Self::read_varint(data, &mut cursor)? as usize;
        if n_trees > 1 << 20 {
            return Err("implausible tree count".to_string());
        }
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            trees.push(Self::read_node(data, &mut cursor, 0)?);
        }
        if cursor != data.len() {
            return Err("trailing bytes in forest payload".to_string());
        }
        Ok(Forest {
            n_estimators,
            trees,
        })
    }

    fn read_varint(data: &[u8], cursor: &mut usize) -> Result<u64, String> {
        let (v, used) =
            read_u64(&data[(*cursor).min(data.len())..]).map_err(|e| format!("bad varint: {e}"))?;
        *cursor += used;
        Ok(v)
    }

    fn read_node(data: &[u8], cursor: &mut usize, depth: usize) -> Result<Node, String> {
        if depth > 64 {
            return Err("tree too deep".to_string());
        }
        let tag = *data.get(*cursor).ok_or("truncated forest payload")?;
        *cursor += 1;
        match tag {
            0 => {
                let zig = Self::read_varint(data, cursor)?;
                let label = ((zig >> 1) as i64) ^ -((zig & 1) as i64);
                Ok(Node::Leaf(label))
            }
            1 => {
                let feature = Self::read_varint(data, cursor)? as usize;
                if *cursor + 8 > data.len() {
                    return Err("truncated threshold".to_string());
                }
                let threshold =
                    f64::from_le_bytes(data[*cursor..*cursor + 8].try_into().expect("8 bytes"));
                *cursor += 8;
                let left = Self::read_node(data, cursor, depth + 1)?;
                let right = Self::read_node(data, cursor, depth + 1)?;
                Ok(Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            other => Err(format!("unknown node tag {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// label = 1 iff x > 5, single feature 0..10.
    fn threshold_data(n: usize) -> (Vec<Vec<f64>>, Vec<i64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 11) as f64]).collect();
        let labels: Vec<i64> = rows.iter().map(|r| (r[0] > 5.0) as i64).collect();
        (rows, labels)
    }

    /// label = 1 iff x + y > 10, two features.
    fn diagonal_data(n: usize) -> (Vec<Vec<f64>>, Vec<i64>) {
        let mut rng = Rng::new(42);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.below(11) as f64, rng.below(11) as f64])
            .collect();
        let labels: Vec<i64> = rows.iter().map(|r| (r[0] + r[1] > 10.0) as i64).collect();
        (rows, labels)
    }

    #[test]
    fn learns_simple_threshold_perfectly() {
        let (rows, labels) = threshold_data(200);
        let f = Forest::fit(&rows, &labels, 8, 1).unwrap();
        assert!(f.accuracy(&rows, &labels) > 0.99);
    }

    #[test]
    fn learns_two_feature_boundary_reasonably() {
        let (rows, labels) = diagonal_data(400);
        let f = Forest::fit(&rows, &labels, 16, 1).unwrap();
        let acc = f.accuracy(&rows, &labels);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn more_trees_do_not_hurt_much() {
        let (rows, labels) = diagonal_data(300);
        let small = Forest::fit(&rows, &labels, 1, 7)
            .unwrap()
            .accuracy(&rows, &labels);
        let large = Forest::fit(&rows, &labels, 32, 7)
            .unwrap()
            .accuracy(&rows, &labels);
        assert!(
            large + 0.02 >= small,
            "32 trees ({large}) should be at least as good as 1 tree ({small})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, labels) = diagonal_data(100);
        let a = Forest::fit(&rows, &labels, 4, 9).unwrap();
        let b = Forest::fit(&rows, &labels, 4, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (rows, labels) = diagonal_data(100);
        let a = Forest::fit(&rows, &labels, 4, 1).unwrap();
        let b = Forest::fit(&rows, &labels, 4, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn serialization_round_trip() {
        let (rows, labels) = diagonal_data(150);
        let f = Forest::fit(&rows, &labels, 8, 3).unwrap();
        let bytes = f.to_bytes();
        let back = Forest::from_bytes(&bytes).unwrap();
        assert_eq!(f, back);
        assert_eq!(f.predict(&rows), back.predict(&rows));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Forest::from_bytes(&[]).is_err());
        assert!(Forest::from_bytes(&[9, 9, 9]).is_err());
        let (rows, labels) = threshold_data(50);
        let mut bytes = Forest::fit(&rows, &labels, 2, 1).unwrap().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Forest::from_bytes(&bytes).is_err());
    }

    #[test]
    fn fit_input_validation() {
        assert!(Forest::fit(&[], &[], 4, 1).is_err());
        assert!(Forest::fit(&[vec![1.0]], &[1, 2], 4, 1).is_err());
        assert!(Forest::fit(&[vec![1.0], vec![]], &[1, 2], 4, 1).is_err());
        assert!(Forest::fit(&[vec![1.0]], &[1], 0, 1).is_err());
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels = vec![7i64; 20];
        let f = Forest::fit(&rows, &labels, 4, 1).unwrap();
        assert_eq!(f.predict_row(&[3.0]), 7);
    }
}
