//! Native (Rust-implemented) modules exposed to interpreted code.
//!
//! The paper's UDFs import `pickle`, `os`, `numpy` and
//! `sklearn.ensemble.RandomForestClassifier` (Listings 1–5). Each of those is
//! implemented here against the interpreter's value model — including a real
//! miniature random forest ([`forest`]) so the nested-UDF experiment of
//! Listing 3 behaves like the original.

pub mod fileobj;
pub mod forest;
pub mod mathmod;
pub mod numpy;
pub mod osmod;
pub mod picklemod;
pub mod randmod;
pub mod sklearn;

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::error::{ErrorKind, PyError};
use crate::interp::Interp;
use crate::value::{Builtin, Module, Value};

/// Load a native module by dotted name.
pub fn load_module(interp: &mut Interp, name: &str) -> Option<Value> {
    let _ = interp;
    match name {
        "os" => Some(osmod::module()),
        "os.path" => Some(osmod::path_module()),
        "numpy" => Some(numpy::module()),
        "math" => Some(mathmod::module()),
        "pickle" => Some(picklemod::module()),
        "random" => Some(randmod::module()),
        "sklearn" => Some(sklearn::root_module()),
        "sklearn.ensemble" => Some(sklearn::ensemble_module()),
        _ => None,
    }
}

/// Reconstruct a pickled native object by registered type name.
pub fn unpickle_native(type_name: &str, payload: &[u8]) -> Result<Value, PyError> {
    match type_name {
        "RandomForestClassifier" => sklearn::unpickle_classifier(payload),
        other => Err(PyError::new(
            ErrorKind::Value,
            format!("unknown pickled native type '{other}'"),
        )),
    }
}

/// Build a module value from (name, value) attribute pairs.
pub(crate) fn make_module(name: &str, attrs: Vec<(&str, Value)>) -> Value {
    let mut map = HashMap::with_capacity(attrs.len());
    for (k, v) in attrs {
        map.insert(k.to_string(), v);
    }
    Value::Module(Rc::new(Module {
        name: name.to_string(),
        attrs: RefCell::new(map),
    }))
}

/// Build a builtin-function value.
pub(crate) fn make_fn(
    name: &'static str,
    f: impl Fn(&mut Interp, &[Value], &[(String, Value)]) -> Result<Value, PyError> + 'static,
) -> Value {
    Value::Builtin(Rc::new(Builtin {
        name,
        func: Box::new(f),
    }))
}

pub(crate) fn type_err(msg: impl Into<String>) -> PyError {
    PyError::new(ErrorKind::Type, msg)
}

pub(crate) fn value_err(msg: impl Into<String>) -> PyError {
    PyError::new(ErrorKind::Value, msg)
}
