//! File objects returned by `open()`, backed by the virtual filesystem.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::{ErrorKind, PyError};
use crate::fs::FsProvider;
use crate::interp::Interp;
use crate::native::{type_err, value_err};
use crate::value::{NativeObject, Value};

/// An open file handle.
pub struct FileObj {
    path: String,
    binary: bool,
    writable: bool,
    /// Full contents for readers; accumulating buffer for writers.
    content: RefCell<Vec<u8>>,
    /// Read cursor (byte offset).
    pos: RefCell<usize>,
    closed: RefCell<bool>,
    fs: Rc<dyn FsProvider>,
}

impl FileObj {
    /// Open `path` in `mode` (`r`, `rb`, `w`, `wb`, `a`, `ab`).
    pub fn open(interp: &mut Interp, path: &str, mode: &str) -> Result<Value, PyError> {
        let binary = mode.contains('b');
        let writable = mode.contains('w') || mode.contains('a');
        let readable = mode.contains('r') || !writable;
        let fs = interp.fs.clone();
        let content = if readable {
            fs.read(path).map_err(|e| PyError::new(ErrorKind::Io, e))?
        } else if mode.contains('a') && fs.exists(path) {
            fs.read(path).map_err(|e| PyError::new(ErrorKind::Io, e))?
        } else {
            Vec::new()
        };
        Ok(Value::Native(Rc::new(FileObj {
            path: path.to_string(),
            binary,
            writable,
            content: RefCell::new(content),
            pos: RefCell::new(0),
            closed: RefCell::new(false),
            fs,
        })))
    }

    fn check_open(&self) -> Result<(), PyError> {
        if *self.closed.borrow() {
            return Err(value_err("I/O operation on closed file"));
        }
        Ok(())
    }

    fn rest(&self) -> Vec<u8> {
        let content = self.content.borrow();
        let mut pos = self.pos.borrow_mut();
        let out = content[*pos..].to_vec();
        *pos = content.len();
        out
    }

    fn as_text(&self, bytes: Vec<u8>) -> Result<Value, PyError> {
        if self.binary {
            Ok(Value::bytes(bytes))
        } else {
            String::from_utf8(bytes)
                .map(Value::str)
                .map_err(|_| value_err("file is not valid UTF-8; open it in binary mode"))
        }
    }

    fn flush_to_fs(&self) -> Result<(), PyError> {
        if self.writable {
            self.fs
                .write(&self.path, &self.content.borrow())
                .map_err(|e| PyError::new(ErrorKind::Io, e))?;
        }
        Ok(())
    }

    /// Lines of the file, each including its trailing newline (CPython
    /// iteration semantics).
    fn lines(&self) -> Vec<Value> {
        let content = self.content.borrow();
        let text = String::from_utf8_lossy(&content);
        let mut out = Vec::new();
        let mut start = 0usize;
        let bytes = text.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                out.push(Value::str(&text[start..=i]));
                start = i + 1;
            }
        }
        if start < text.len() {
            out.push(Value::str(&text[start..]));
        }
        out
    }
}

impl NativeObject for FileObj {
    fn type_name(&self) -> &'static str {
        "file"
    }

    fn repr(&self) -> String {
        format!(
            "<{} file '{}'>",
            if *self.closed.borrow() {
                "closed"
            } else {
                "open"
            },
            self.path
        )
    }

    fn iterate(&self) -> Option<Vec<Value>> {
        Some(self.lines())
    }

    fn call_method(
        &self,
        name: &str,
        _interp: &mut Interp,
        args: &[Value],
        _kwargs: &[(String, Value)],
    ) -> Result<Value, PyError> {
        match name {
            "read" => {
                self.check_open()?;
                self.as_text(self.rest())
            }
            "readline" => {
                self.check_open()?;
                let content = self.content.borrow();
                let mut pos = self.pos.borrow_mut();
                let rest = &content[*pos..];
                let end = rest
                    .iter()
                    .position(|&b| b == b'\n')
                    .map(|i| i + 1)
                    .unwrap_or(rest.len());
                let line = rest[..end].to_vec();
                *pos += end;
                drop(content);
                self.as_text(line)
            }
            "readlines" => {
                self.check_open()?;
                Ok(Value::list(self.lines()))
            }
            "write" => {
                self.check_open()?;
                if !self.writable {
                    return Err(value_err("file not open for writing"));
                }
                let bytes = match args.first() {
                    Some(Value::Str(s)) => s.as_bytes().to_vec(),
                    Some(Value::Bytes(b)) => b.to_vec(),
                    Some(other) => {
                        return Err(type_err(format!(
                            "write() argument must be str or bytes, not '{}'",
                            other.type_name()
                        )))
                    }
                    None => return Err(type_err("write() missing argument")),
                };
                let n = bytes.len();
                self.content.borrow_mut().extend_from_slice(&bytes);
                self.flush_to_fs()?;
                Ok(Value::Int(n as i64))
            }
            "close" => {
                if !*self.closed.borrow() {
                    self.flush_to_fs()?;
                    *self.closed.borrow_mut() = true;
                }
                Ok(Value::None)
            }
            "flush" => {
                self.check_open()?;
                self.flush_to_fs()?;
                Ok(Value::None)
            }
            other => Err(PyError::new(
                ErrorKind::Attribute,
                format!("'file' object has no method '{other}'"),
            )),
        }
    }

    fn get_attr(&self, name: &str) -> Option<Value> {
        match name {
            "name" => Some(Value::str(self.path.clone())),
            "closed" => Some(Value::Bool(*self.closed.borrow())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    fn interp_with(files: &[(&str, &str)]) -> Interp {
        Interp::with_fs(Rc::new(MemFs::with_files(files)))
    }

    #[test]
    fn read_text_file() {
        let mut i = interp_with(&[("a.txt", "hello\nworld\n")]);
        i.eval_module("f = open('a.txt')\ncontent = f.read()\nf.close()\n")
            .unwrap();
        assert_eq!(
            i.get_global("content").unwrap(),
            Value::str("hello\nworld\n")
        );
    }

    #[test]
    fn read_binary_file() {
        let mut i = interp_with(&[("b.bin", "xyz")]);
        i.eval_module("f = open('b.bin', 'rb')\ndata = f.read()\n")
            .unwrap();
        assert_eq!(i.get_global("data").unwrap(), Value::bytes(b"xyz".to_vec()));
    }

    #[test]
    fn iterate_lines_like_listing5() {
        let mut i = interp_with(&[("nums.csv", "1\n2\n3\n")]);
        i.eval_module(
            "result = []\nfile = open('nums.csv', 'r')\nfor line in file:\n    result.append(int(line))\n",
        )
        .unwrap();
        assert_eq!(
            i.get_global("result").unwrap(),
            Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn last_line_without_newline_still_yields() {
        let mut i = interp_with(&[("f.txt", "a\nb")]);
        i.eval_module("lines = open('f.txt').readlines()\nn = len(lines)\n")
            .unwrap();
        assert_eq!(i.get_global("n").unwrap(), Value::Int(2));
    }

    #[test]
    fn readline_advances() {
        let mut i = interp_with(&[("f.txt", "one\ntwo\n")]);
        i.eval_module("f = open('f.txt')\na = f.readline()\nb = f.readline()\nc = f.readline()\n")
            .unwrap();
        assert_eq!(i.get_global("a").unwrap(), Value::str("one\n"));
        assert_eq!(i.get_global("b").unwrap(), Value::str("two\n"));
        assert_eq!(i.get_global("c").unwrap(), Value::str(""));
    }

    #[test]
    fn write_creates_file() {
        let fs = Rc::new(MemFs::new());
        let mut i = Interp::with_fs(fs.clone());
        i.eval_module("f = open('out.txt', 'w')\nf.write('data')\nf.close()\n")
            .unwrap();
        assert_eq!(fs.read("out.txt").unwrap(), b"data");
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut i = interp_with(&[]);
        let e = i.eval_module("open('ghost.txt')\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Io);
    }

    #[test]
    fn closed_file_rejects_reads() {
        let mut i = interp_with(&[("a.txt", "x")]);
        let e = i
            .eval_module("f = open('a.txt')\nf.close()\nf.read()\n")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
    }

    #[test]
    fn write_to_readonly_rejected() {
        let mut i = interp_with(&[("a.txt", "x")]);
        let e = i
            .eval_module("f = open('a.txt', 'r')\nf.write('y')\n")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
    }
}
