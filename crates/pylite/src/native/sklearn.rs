//! `sklearn.ensemble` with a working `RandomForestClassifier`.
//!
//! Reproduces the API surface used by paper Listings 1 and 3:
//!
//! ```python
//! from sklearn.ensemble import RandomForestClassifier
//! clf = RandomForestClassifier(n)
//! clf.fit(data, classes)
//! predictions = clf.predict(tdata)
//! pickle.dumps(clf)  # and loads
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::PyError;
use crate::interp::Interp;
use crate::native::forest::Forest;
use crate::native::{make_fn, make_module, type_err, value_err};
use crate::value::{Array, NativeObject, Value};

/// The `sklearn` root module (so `import sklearn.ensemble` works).
pub fn root_module() -> Value {
    make_module("sklearn", vec![("ensemble", ensemble_module())])
}

/// The `sklearn.ensemble` module.
pub fn ensemble_module() -> Value {
    make_module(
        "sklearn.ensemble",
        vec![(
            "RandomForestClassifier",
            make_fn("RandomForestClassifier", |interp, args, kwargs| {
                let n = match (
                    args.first(),
                    kwargs.iter().find(|(k, _)| k == "n_estimators"),
                ) {
                    (Some(Value::Int(n)), _) | (None, Some((_, Value::Int(n)))) => *n,
                    (None, None) => 10,
                    _ => {
                        return Err(type_err(
                            "RandomForestClassifier(n_estimators) expects an int",
                        ))
                    }
                };
                if n <= 0 {
                    return Err(value_err("n_estimators must be positive"));
                }
                Ok(Value::Native(Rc::new(Classifier {
                    n_estimators: n as usize,
                    seed: interp.rng_seed,
                    forest: RefCell::new(None),
                })))
            }),
        )],
    )
}

/// Reconstruct a pickled classifier (dispatched from the pickle decoder).
pub fn unpickle_classifier(payload: &[u8]) -> Result<Value, PyError> {
    let forest = Forest::from_bytes(payload)
        .map_err(|e| value_err(format!("corrupt pickled classifier: {e}")))?;
    Ok(Value::Native(Rc::new(Classifier {
        n_estimators: forest.n_estimators,
        seed: 0,
        forest: RefCell::new(Some(forest)),
    })))
}

/// The native classifier object.
pub struct Classifier {
    n_estimators: usize,
    seed: u64,
    forest: RefCell<Option<Forest>>,
}

/// Convert a UDF-style value into a row-major feature matrix.
///
/// Accepted shapes:
/// * 1-D array / list of numbers → n rows × 1 feature,
/// * list/tuple of 1-D arrays (columns) → n rows × k features,
/// * list of lists/tuples (rows) → as-is.
fn to_matrix(interp: &mut Interp, v: &Value) -> Result<Vec<Vec<f64>>, PyError> {
    match v {
        Value::Array(a) => Ok(a.as_f64()?.into_iter().map(|x| vec![x]).collect()),
        Value::List(_) | Value::Tuple(_) => {
            let items = interp.iter_values(v, 0)?;
            if items.is_empty() {
                return Ok(Vec::new());
            }
            match &items[0] {
                // Columns of arrays → transpose into rows.
                Value::Array(_) => {
                    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(items.len());
                    for item in &items {
                        let Value::Array(a) = item else {
                            return Err(type_err("mixed column types in feature matrix"));
                        };
                        cols.push(a.as_f64()?);
                    }
                    let n = cols[0].len();
                    if cols.iter().any(|c| c.len() != n) {
                        return Err(value_err("feature columns have different lengths"));
                    }
                    Ok((0..n)
                        .map(|row| cols.iter().map(|c| c[row]).collect())
                        .collect())
                }
                // Rows of lists/tuples.
                Value::List(_) | Value::Tuple(_) => {
                    let mut rows = Vec::with_capacity(items.len());
                    for item in &items {
                        let cells = interp.iter_values(item, 0)?;
                        let mut row = Vec::with_capacity(cells.len());
                        for c in cells {
                            row.push(scalar_f64(&c)?);
                        }
                        rows.push(row);
                    }
                    Ok(rows)
                }
                // Flat list of numbers.
                _ => {
                    let mut rows = Vec::with_capacity(items.len());
                    for item in &items {
                        rows.push(vec![scalar_f64(item)?]);
                    }
                    Ok(rows)
                }
            }
        }
        other => Err(type_err(format!(
            "cannot use '{}' as a feature matrix",
            other.type_name()
        ))),
    }
}

fn scalar_f64(v: &Value) -> Result<f64, PyError> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        Value::Bool(b) => Ok(*b as i64 as f64),
        other => Err(type_err(format!(
            "feature values must be numeric, not '{}'",
            other.type_name()
        ))),
    }
}

fn to_labels(interp: &mut Interp, v: &Value) -> Result<Vec<i64>, PyError> {
    let items = match v {
        Value::Array(a) => {
            return match a.as_ref() {
                Array::Int(v) => Ok(v.clone()),
                Array::Bool(v) => Ok(v.iter().map(|b| *b as i64).collect()),
                Array::Float(v) => Ok(v.iter().map(|f| *f as i64).collect()),
                Array::Str(_) => Err(type_err("labels must be numeric")),
            }
        }
        other => interp.iter_values(other, 0)?,
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(match item {
            Value::Int(i) => i,
            Value::Bool(b) => b as i64,
            Value::Float(f) => f as i64,
            other => {
                return Err(type_err(format!(
                    "labels must be numeric, not '{}'",
                    other.type_name()
                )))
            }
        });
    }
    Ok(out)
}

impl NativeObject for Classifier {
    fn type_name(&self) -> &'static str {
        "RandomForestClassifier"
    }

    fn repr(&self) -> String {
        format!(
            "RandomForestClassifier(n_estimators={}, fitted={})",
            self.n_estimators,
            self.forest.borrow().is_some()
        )
    }

    fn get_attr(&self, name: &str) -> Option<Value> {
        match name {
            "n_estimators" => Some(Value::Int(self.n_estimators as i64)),
            _ => None,
        }
    }

    fn pickle(&self) -> Option<(String, Vec<u8>)> {
        self.forest
            .borrow()
            .as_ref()
            .map(|f| ("RandomForestClassifier".to_string(), f.to_bytes()))
    }

    fn call_method(
        &self,
        name: &str,
        interp: &mut Interp,
        args: &[Value],
        _kwargs: &[(String, Value)],
    ) -> Result<Value, PyError> {
        match name {
            "fit" => {
                let (Some(data), Some(classes)) = (args.first(), args.get(1)) else {
                    return Err(type_err("fit() takes (data, classes)"));
                };
                let features = to_matrix(interp, data)?;
                let labels = to_labels(interp, classes)?;
                let forest = Forest::fit(&features, &labels, self.n_estimators, self.seed)
                    .map_err(value_err)?;
                *self.forest.borrow_mut() = Some(forest);
                Ok(Value::None)
            }
            "predict" => {
                let Some(data) = args.first() else {
                    return Err(type_err("predict() takes (data)"));
                };
                let rows = to_matrix(interp, data)?;
                let forest = self.forest.borrow();
                let Some(forest) = forest.as_ref() else {
                    return Err(value_err(
                        "this classifier is not fitted yet; call fit() first",
                    ));
                };
                Ok(Value::array(Array::Int(forest.predict(&rows))))
            }
            "score" => {
                let (Some(data), Some(classes)) = (args.first(), args.get(1)) else {
                    return Err(type_err("score() takes (data, classes)"));
                };
                let rows = to_matrix(interp, data)?;
                let labels = to_labels(interp, classes)?;
                let forest = self.forest.borrow();
                let Some(forest) = forest.as_ref() else {
                    return Err(value_err(
                        "this classifier is not fitted yet; call fit() first",
                    ));
                };
                Ok(Value::Float(forest.accuracy(&rows, &labels)))
            }
            other => Err(PyError::new(
                crate::error::ErrorKind::Attribute,
                format!("'RandomForestClassifier' object has no method '{other}'"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;
    use crate::value::{Array, Value};

    #[test]
    fn listing1_style_training() {
        // The stored body of `train_rnforest` from paper Listing 1.
        let src = "\
import pickle
from sklearn.ensemble import RandomForestClassifier
clf = RandomForestClassifier(n)
clf.fit(data, classes)
result = {'clf': pickle.dumps(clf), 'estimators': n}
";
        let mut i = Interp::new();
        i.set_global("n", Value::Int(8));
        i.set_global(
            "data",
            Value::array(Array::Int((0..100).map(|x| x % 11).collect())),
        );
        i.set_global(
            "classes",
            Value::array(Array::Int(
                (0..100).map(|x| ((x % 11) > 5) as i64).collect(),
            )),
        );
        i.eval_module(src).unwrap();
        let result = i.get_global("result").unwrap();
        let Value::Dict(d) = result else {
            panic!("expected dict")
        };
        assert!(matches!(
            d.borrow().get(&Value::str("clf")).unwrap().unwrap(),
            Value::Bytes(_)
        ));
    }

    #[test]
    fn pickle_round_trip_preserves_predictions() {
        let src = "\
import pickle
from sklearn.ensemble import RandomForestClassifier
clf = RandomForestClassifier(4)
clf.fit(data, classes)
blob = pickle.dumps(clf)
clf2 = pickle.loads(blob)
p1 = clf.predict(data)
p2 = clf2.predict(data)
same = sum(p1 == p2) == len(p1)
";
        let mut i = Interp::new();
        i.set_global(
            "data",
            Value::array(Array::Int((0..60).map(|x| x % 7).collect())),
        );
        i.set_global(
            "classes",
            Value::array(Array::Int((0..60).map(|x| ((x % 7) > 3) as i64).collect())),
        );
        i.eval_module(src).unwrap();
        assert_eq!(i.get_global("same").unwrap(), Value::Bool(true));
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut i = Interp::new();
        let e = i
            .eval_module(
                "from sklearn.ensemble import RandomForestClassifier\nclf = RandomForestClassifier(2)\nclf.predict([1, 2])\n",
            )
            .unwrap_err();
        assert!(e.message.contains("not fitted"));
    }

    #[test]
    fn accuracy_is_high_on_learnable_data() {
        let src = "\
from sklearn.ensemble import RandomForestClassifier
clf = RandomForestClassifier(16)
clf.fit(data, classes)
acc = clf.score(data, classes)
";
        let mut i = Interp::new();
        i.set_global(
            "data",
            Value::array(Array::Int((0..200).map(|x| x % 13).collect())),
        );
        i.set_global(
            "classes",
            Value::array(Array::Int(
                (0..200).map(|x| ((x % 13) > 6) as i64).collect(),
            )),
        );
        i.eval_module(src).unwrap();
        match i.get_global("acc").unwrap() {
            Value::Float(f) => assert!(f > 0.95, "accuracy {f}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_column_features() {
        // Columns-of-arrays shape, as a two-column SQL input would arrive.
        let src = "\
from sklearn.ensemble import RandomForestClassifier
clf = RandomForestClassifier(8)
clf.fit([colx, coly], classes)
acc = clf.score([colx, coly], classes)
";
        let mut i = Interp::new();
        let xs: Vec<i64> = (0..150).map(|v| v % 10).collect();
        let ys: Vec<i64> = (0..150).map(|v| (v * 7) % 10).collect();
        let labels: Vec<i64> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| ((x + y) > 9) as i64)
            .collect();
        i.set_global("colx", Value::array(Array::Int(xs)));
        i.set_global("coly", Value::array(Array::Int(ys)));
        i.set_global("classes", Value::array(Array::Int(labels)));
        i.eval_module(src).unwrap();
        match i.get_global("acc").unwrap() {
            Value::Float(f) => assert!(f > 0.8, "accuracy {f}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_constructor_args() {
        let mut i = Interp::new();
        assert!(i
            .eval_module(
                "from sklearn.ensemble import RandomForestClassifier\nRandomForestClassifier(0)\n"
            )
            .is_err());
        let mut i = Interp::new();
        assert!(i
            .eval_module("from sklearn.ensemble import RandomForestClassifier\nRandomForestClassifier('x')\n")
            .is_err());
    }
}
