//! Abstract syntax tree for the Python subset.

use std::rc::Rc;

/// A parsed module: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub body: Vec<Stmt>,
}

/// A statement tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: u32,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `def name(params): body`
    FunctionDef(Rc<FunctionDef>),
    /// `return expr?`
    Return(Option<Expr>),
    /// `target = value` (possibly chained `a = b = v`, or tuple targets)
    Assign {
        targets: Vec<Expr>,
        value: Expr,
    },
    /// `target op= value`
    AugAssign {
        target: Expr,
        op: BinOp,
        value: Expr,
    },
    /// Bare expression statement.
    Expr(Expr),
    If {
        branches: Vec<(Expr, Vec<Stmt>)>,
        orelse: Vec<Stmt>,
    },
    While {
        test: Expr,
        body: Vec<Stmt>,
    },
    For {
        target: Expr,
        iter: Expr,
        body: Vec<Stmt>,
    },
    Break,
    Continue,
    Pass,
    /// `import a.b.c [as name]`
    Import {
        module: String,
        alias: Option<String>,
    },
    /// `from a.b import x [as y], z`
    FromImport {
        module: String,
        names: Vec<(String, Option<String>)>,
    },
    Global(Vec<String>),
    Del(Vec<Expr>),
    Try {
        body: Vec<Stmt>,
        /// (exception class name or None for bare except, alias, handler body)
        handlers: Vec<(Option<String>, Option<String>, Vec<Stmt>)>,
        finally: Vec<Stmt>,
    },
    /// `raise Name(message?)` or bare `raise`
    Raise(Option<Expr>),
    Assert {
        test: Expr,
        message: Option<Expr>,
    },
}

/// A function definition (also used for lambdas, with a synthetic name).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    /// First line of the `def` statement.
    pub line: u32,
    /// Names assigned somewhere in the body (locals), precomputed at parse
    /// time so the interpreter can implement Python scoping rules.
    pub local_names: Vec<String>,
    /// Names declared `global` in the body.
    pub global_names: Vec<String>,
}

/// A formal parameter with an optional default value expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub default: Option<Expr>,
}

/// An expression tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Int(i64),
    Float(f64),
    Str(Rc<str>),
    Bool(bool),
    NoneLit,
    Name(String),
    Tuple(Vec<Expr>),
    List(Vec<Expr>),
    Dict(Vec<(Expr, Expr)>),
    BinOp {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    UnaryOp {
        op: UnaryOp,
        operand: Box<Expr>,
    },
    BoolOp {
        op: BoolOpKind,
        values: Vec<Expr>,
    },
    /// Chained comparison: `a < b <= c`.
    Compare {
        left: Box<Expr>,
        ops: Vec<CmpOp>,
        comparators: Vec<Expr>,
    },
    Call {
        func: Box<Expr>,
        args: Vec<Expr>,
        kwargs: Vec<(String, Expr)>,
    },
    Attribute {
        value: Box<Expr>,
        attr: String,
    },
    Subscript {
        value: Box<Expr>,
        index: Box<Index>,
    },
    Lambda(Rc<FunctionDef>),
    /// `body if test else orelse`
    IfExp {
        test: Box<Expr>,
        body: Box<Expr>,
        orelse: Box<Expr>,
    },
    /// `[elt for target in iter if cond*]`
    ListComp {
        elt: Box<Expr>,
        target: Box<Expr>,
        iter: Box<Expr>,
        conds: Vec<Expr>,
    },
}

/// Subscript index: single item or slice.
#[derive(Debug, Clone, PartialEq)]
pub enum Index {
    Item(Expr),
    Slice {
        lower: Option<Expr>,
        upper: Option<Expr>,
        step: Option<Expr>,
    },
}

/// Binary arithmetic/bitwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    FloorDiv,
    Mod,
    Pow,
    BitAnd,
    BitOr,
    BitXor,
}

impl BinOp {
    /// Source-level symbol, for error messages.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Pos,
    Not,
}

/// Short-circuit boolean operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOpKind {
    And,
    Or,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    In,
    NotIn,
    Is,
    IsNot,
}

impl CmpOp {
    /// Source-level symbol, for error messages.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::NotEq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
            CmpOp::Is => "is",
            CmpOp::IsNot => "is not",
        }
    }
}
