//! Statement execution: the tree-walking reference interpreter and the
//! shared machinery (frames, scopes, operators, calls) that both it and
//! the bytecode VM delegate to.
//!
//! [`Interp`] executes code in one of two [`ExecMode`]s:
//!
//! * [`ExecMode::Bytecode`] (the default) — lower the AST through
//!   [`crate::compile`] and run it on the [`crate::vm`] dispatch loop.
//!   Function bodies compile lazily on first call and are cached per
//!   definition.
//! * [`ExecMode::Ast`] — walk the tree directly. This is the reference
//!   oracle: slower, but definitionally correct, and kept observably
//!   identical to the VM (values, errors, tracebacks, stdout, statement
//!   counts, debugger pauses). Differential tests run both.
//!
//! Everything below statement dispatch — name binding and lookup,
//! operators, calls, subscripts, imports — is a single implementation
//! used by both modes, so semantic fixes land in one place.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use crate::ast::*;
use crate::builtins;
use crate::compile;
use crate::debugger::{DebugHook, HookOutcome};
use crate::error::{ErrorKind, PyError};
use crate::fs::{FsProvider, MemFs};
use crate::methods;
use crate::native;
use crate::parser::parse_module;
use crate::value::{Array, Dict, PyFunction, Value};
use crate::vm;

/// Which execution engine runs statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Walk the AST directly (the reference oracle, `--interp=ast`).
    Ast,
    /// Compile to bytecode and run the VM dispatch loop (default).
    #[default]
    Bytecode,
}

impl ExecMode {
    /// Parse the setting/CLI spelling (`"ast"` / `"bytecode"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ast" => Some(ExecMode::Ast),
            "bytecode" => Some(ExecMode::Bytecode),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            ExecMode::Ast => "ast",
            ExecMode::Bytecode => "bytecode",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Maximum interpreter call depth.
/// Chosen so the interpreter's own Rust recursion stays comfortably inside a
/// 2 MiB thread stack even in unoptimized builds.
const MAX_DEPTH: usize = 48;

type Scope = Rc<RefCell<HashMap<String, Value>>>;

/// One call frame.
pub struct Frame {
    /// Function name (`<module>` for top-level code).
    pub name: String,
    /// Local variable bindings.
    pub locals: Scope,
    /// Captured enclosing scopes for closures, innermost last.
    closure: Vec<Scope>,
    /// Names declared `global` in this function.
    globals_decl: Vec<String>,
    /// Current line being executed (for tracebacks and the debugger).
    pub line: u32,
    /// True for the synthetic module-level frame.
    is_module: bool,
}

/// Control-flow signal threaded through statement execution.
pub(crate) enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Line-profiler buffer: per-(function, line) hit and nanosecond
/// accumulation, local to one interpreter run so the dispatch loop never
/// touches the global registry. Elapsed time is attributed to the
/// *previous* statement — its execution spans the gap between two
/// statement events — while the current statement takes the hit count.
#[derive(Default)]
pub(crate) struct ProfBuf {
    rows: HashMap<(String, u32), (u64, u64)>,
    last: Option<((String, u32), Instant)>,
}

impl ProfBuf {
    /// Statement event: close the previous statement's time slice and
    /// open the next one.
    fn on_statement(&mut self, func: &str, line: u32) {
        let now = Instant::now();
        if let Some((key, started)) = self.last.take() {
            self.rows.entry(key).or_insert((0, 0)).1 += (now - started).as_nanos() as u64;
        }
        let key = (func.to_string(), line);
        self.rows.entry(key.clone()).or_insert((0, 0)).0 += 1;
        self.last = Some((key, now));
    }

    /// End of run: close the trailing slice and merge everything into
    /// the global profile store in one batch.
    fn flush(mut self) {
        if let Some((key, started)) = self.last.take() {
            self.rows.entry(key).or_insert((0, 0)).1 += started.elapsed().as_nanos() as u64;
        }
        let batch: Vec<_> = self.rows.into_iter().collect();
        obs::profile::record(&batch);
    }
}

/// The interpreter. One instance executes one module/UDF at a time but may
/// be reused across runs; globals persist until [`Interp::reset`].
pub struct Interp {
    globals: Scope,
    pub(crate) frames: Vec<Frame>,
    /// Captured `print` output.
    stdout: String,
    /// Also forward `print` to the process stdout.
    pub echo_stdout: bool,
    /// Virtual filesystem used by `open` / `os.listdir`.
    pub fs: Rc<dyn FsProvider>,
    /// Debug hook consulted before each statement.
    pub(crate) hook: Option<Rc<RefCell<dyn DebugHook>>>,
    /// Statement budget; `Some(0)` means exhausted.
    pub(crate) steps_left: Option<u64>,
    /// Line-profiler buffer, armed per run while [`obs::profile::active`]
    /// (boxed so the steady-state `Interp` stays small).
    pub(crate) prof: Option<Box<ProfBuf>>,
    /// Deterministic seed consumed by the `random` module and sklearn.
    pub rng_seed: u64,
    /// Statements executed over this interpreter's lifetime (flushed to
    /// the `pylite.statements` metric once per module run, keeping the
    /// per-statement hot path free of atomics).
    pub(crate) stmts_executed: u64,
    /// Extra modules injected by the embedder (e.g. a loopback `_conn`).
    pub extra_modules: HashMap<String, Value>,
    /// Which engine executes statements (bytecode VM by default).
    exec_mode: ExecMode,
    /// Compiled function bodies, keyed by definition identity.
    code_cache: vm::CodeCache,
    /// Source line of the builtin call currently executing, so errors
    /// raised inside builtins blame the call site instead of line 0.
    call_line: u32,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// Create an interpreter with an empty in-memory filesystem.
    pub fn new() -> Self {
        Interp {
            globals: Rc::new(RefCell::new(HashMap::new())),
            frames: Vec::new(),
            stdout: String::new(),
            echo_stdout: false,
            fs: Rc::new(MemFs::new()),
            hook: None,
            steps_left: None,
            prof: None,
            rng_seed: 0x5eed_cafe,
            stmts_executed: 0,
            extra_modules: HashMap::new(),
            exec_mode: ExecMode::default(),
            code_cache: vm::CodeCache::default(),
            call_line: 0,
        }
    }

    /// Create an interpreter with a caller-provided filesystem.
    pub fn with_fs(fs: Rc<dyn FsProvider>) -> Self {
        let mut interp = Self::new();
        interp.fs = fs;
        interp
    }

    /// Install a debug hook consulted before every statement.
    pub fn set_hook(&mut self, hook: Rc<RefCell<dyn DebugHook>>) {
        self.hook = Some(hook);
    }

    /// Remove the debug hook.
    pub fn clear_hook(&mut self) {
        self.hook = None;
    }

    /// Limit the number of statements executed (guards runaway loops).
    pub fn set_step_budget(&mut self, steps: u64) {
        self.steps_left = Some(steps);
    }

    /// Select the execution engine (bytecode VM vs. AST walker).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The currently selected execution engine.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Source line of the builtin call currently executing. Builtins pass
    /// this to interpreter helpers (`binop`, `iter_values`, …) so errors
    /// they raise point at the call site rather than line 0.
    pub fn call_line(&self) -> u32 {
        self.call_line
    }

    /// Clear globals and captured output.
    pub fn reset(&mut self) {
        self.globals.borrow_mut().clear();
        self.stdout.clear();
        self.frames.clear();
    }

    /// Bind a global variable before (or after) running code.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.globals.borrow_mut().insert(name.to_string(), value);
    }

    /// Read a global variable.
    pub fn get_global(&self, name: &str) -> Option<Value> {
        self.globals.borrow().get(name).cloned()
    }

    /// All global names currently bound (sorted), for debugger display.
    pub fn global_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.globals.borrow().keys().cloned().collect();
        names.sort();
        names
    }

    /// Captured `print` output so far.
    pub fn stdout(&self) -> &str {
        &self.stdout
    }

    /// Clear captured output.
    pub fn take_stdout(&mut self) -> String {
        std::mem::take(&mut self.stdout)
    }

    pub(crate) fn write_stdout(&mut self, text: &str) {
        if self.echo_stdout {
            print!("{text}");
        }
        self.stdout.push_str(text);
    }

    /// Current call stack, outermost first, as (function, line) pairs.
    pub fn stack(&self) -> Vec<(String, u32)> {
        self.frames
            .iter()
            .map(|f| (f.name.clone(), f.line))
            .collect()
    }

    /// Snapshot the innermost frame's locals as (name, repr) pairs, sorted.
    pub fn locals_snapshot(&self) -> Vec<(String, String)> {
        let Some(frame) = self.frames.last() else {
            return Vec::new();
        };
        let mut out: Vec<(String, String)> = frame
            .locals
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.repr()))
            .collect();
        out.sort();
        out
    }

    /// Look up a variable as the debugger would: innermost frame, then
    /// closure scopes, then globals.
    pub fn debug_lookup(&self, name: &str) -> Option<Value> {
        if let Some(frame) = self.frames.last() {
            if let Some(v) = frame.locals.borrow().get(name) {
                return Some(v.clone());
            }
            for scope in frame.closure.iter().rev() {
                if let Some(v) = scope.borrow().get(name) {
                    return Some(v.clone());
                }
            }
        }
        self.get_global(name)
    }

    /// Evaluate an expression string in the context of the current frame
    /// (used by the debugger's watch/eval command).
    pub fn eval_in_frame(&mut self, source: &str) -> Result<Value, PyError> {
        let expr = crate::parser::parse_expression(source)?;
        if self.frames.is_empty() {
            self.push_module_frame();
            let r = self.eval_expr(&expr);
            self.frames.pop();
            r
        } else {
            self.eval_expr(&expr)
        }
    }

    fn push_module_frame(&mut self) {
        self.frames.push(Frame {
            name: "<module>".to_string(),
            locals: self.globals.clone(),
            closure: Vec::new(),
            globals_decl: Vec::new(),
            line: 0,
            is_module: true,
        });
    }

    /// Parse and execute `source` as a module. Returns the value of a
    /// top-level `return` if one executes (MonetDB UDF bodies end in
    /// `return`), otherwise `Value::None`.
    pub fn eval_module(&mut self, source: &str) -> Result<Value, PyError> {
        let module = parse_module(source)?;
        self.run_module(&module)
    }

    /// Execute an already-parsed module. In [`ExecMode::Bytecode`] the
    /// module is compiled first (callers that re-run the same module
    /// should compile once with [`compile::compile_module`] and use
    /// [`Interp::run_code`] directly).
    pub fn run_module(&mut self, module: &Module) -> Result<Value, PyError> {
        match self.exec_mode {
            ExecMode::Bytecode => {
                let code = compile::compile_module(module);
                self.run_code(&code)
            }
            ExecMode::Ast => {
                let start = Instant::now();
                let stmts_before = self.stmts_executed;
                let profiling = self.arm_profiler();
                self.push_module_frame();
                let result = self.exec_block(&module.body);
                let frame_line = self.frames.last().map(|f| f.line).unwrap_or(0);
                self.frames.pop();
                if profiling {
                    self.flush_profiler();
                }
                obs::counter!("pylite.statements").add(self.stmts_executed - stmts_before);
                obs::histogram!("pylite.exec_ast_ns").record(start.elapsed().as_nanos() as u64);
                match result {
                    Ok(Flow::Return(v)) => Ok(v),
                    Ok(_) => Ok(Value::None),
                    Err(mut e) => {
                        if e.traceback.is_empty() {
                            e.push_frame("<module>", frame_line);
                        }
                        Err(e)
                    }
                }
            }
        }
    }

    /// Execute a pre-compiled module body on the bytecode VM,
    /// regardless of the configured [`ExecMode`].
    pub fn run_code(&mut self, code: &compile::CodeObject) -> Result<Value, PyError> {
        let start = Instant::now();
        let stmts_before = self.stmts_executed;
        let profiling = self.arm_profiler();
        self.push_module_frame();
        let result = vm::run(self, code);
        let frame_line = self.frames.last().map(|f| f.line).unwrap_or(0);
        self.frames.pop();
        if profiling {
            self.flush_profiler();
        }
        obs::counter!("pylite.statements").add(self.stmts_executed - stmts_before);
        obs::histogram!("pylite.exec_bytecode_ns").record(start.elapsed().as_nanos() as u64);
        match result {
            Ok(Flow::Return(v)) => Ok(v),
            Ok(_) => Ok(Value::None),
            Err(mut e) => {
                if e.traceback.is_empty() {
                    e.push_frame("<module>", frame_line);
                }
                Err(e)
            }
        }
    }

    /// Arm the line profiler for this run when the global profiler is
    /// switched on. Returns whether this call armed it (and therefore
    /// owns the flush) — a nested run under an already-armed profiler
    /// keeps feeding the outer buffer.
    fn arm_profiler(&mut self) -> bool {
        if self.prof.is_none() && obs::profile::active() {
            self.prof = Some(Box::default());
            return true;
        }
        false
    }

    /// Close the trailing statement slice and publish the buffered rows.
    fn flush_profiler(&mut self) {
        if let Some(buf) = self.prof.take() {
            buf.flush();
        }
    }

    /// One profiled statement event; out-of-line so the unprofiled
    /// dispatch paths pay only the `prof.is_some()` check.
    #[cold]
    pub(crate) fn prof_statement(&mut self, line: u32) {
        let fname = self
            .frames
            .last()
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<module>".to_string());
        if let Some(buf) = self.prof.as_mut() {
            buf.on_statement(&fname, line);
        }
    }

    /// Call a callable value with positional and keyword arguments.
    pub fn call_function(
        &mut self,
        func: &Value,
        args: &[Value],
        kwargs: &[(String, Value)],
        call_line: u32,
    ) -> Result<Value, PyError> {
        match func {
            Value::Function(f) => self.call_py_function(f, args, kwargs),
            Value::Builtin(b) => self.call_builtin(b, args, kwargs, call_line),
            Value::Native(n) => {
                // Calling a native object directly: constructor-style natives
                // implement `call_method("__call__", ...)`.
                n.clone().call_method("__call__", self, args, kwargs)
            }
            other => Err(PyError::new(
                ErrorKind::Type,
                format!("'{}' object is not callable", other.type_name()),
            )),
        }
    }

    /// The builtin arm of [`Self::call_function`], inlinable from the
    /// VM's fused call path. Records the call site so errors raised
    /// inside the builtin (via [`Self::call_line`]) blame this line,
    /// not line 0. Save/restore: a builtin that calls back into user
    /// code may trigger nested builtin calls at other lines.
    #[inline]
    pub(crate) fn call_builtin(
        &mut self,
        b: &crate::value::Builtin,
        args: &[Value],
        kwargs: &[(String, Value)],
        call_line: u32,
    ) -> Result<Value, PyError> {
        let saved = self.call_line;
        self.call_line = call_line;
        let result = (b.func)(self, args, kwargs).map_err(|mut e| {
            if e.traceback.is_empty() {
                e.push_frame(b.name, call_line);
            }
            e
        });
        self.call_line = saved;
        result
    }

    fn call_py_function(
        &mut self,
        f: &Rc<PyFunction>,
        args: &[Value],
        kwargs: &[(String, Value)],
    ) -> Result<Value, PyError> {
        if self.frames.len() >= MAX_DEPTH {
            return Err(PyError::new(
                ErrorKind::Resource,
                format!("maximum recursion depth exceeded ({MAX_DEPTH})"),
            ));
        }
        let def = &f.def;
        let locals: Scope = Rc::new(RefCell::new(HashMap::new()));

        // Bind positional arguments.
        if args.len() > def.params.len() {
            return Err(PyError::new(
                ErrorKind::Type,
                format!(
                    "{}() takes {} arguments but {} were given",
                    def.name,
                    def.params.len(),
                    args.len()
                ),
            ));
        }
        for (param, arg) in def.params.iter().zip(args.iter()) {
            locals.borrow_mut().insert(param.name.clone(), arg.clone());
        }
        // Bind keyword arguments.
        for (name, value) in kwargs {
            if !def.params.iter().any(|p| &p.name == name) {
                return Err(PyError::new(
                    ErrorKind::Type,
                    format!("{}() got an unexpected keyword argument '{name}'", def.name),
                ));
            }
            if locals.borrow().contains_key(name) {
                return Err(PyError::new(
                    ErrorKind::Type,
                    format!("{}() got multiple values for argument '{name}'", def.name),
                ));
            }
            locals.borrow_mut().insert(name.clone(), value.clone());
        }
        // Defaults for unbound parameters.
        for param in &def.params {
            if locals.borrow().contains_key(&param.name) {
                continue;
            }
            match &param.default {
                Some(default_expr) => {
                    let v = self.eval_expr(default_expr)?;
                    locals.borrow_mut().insert(param.name.clone(), v);
                }
                None => {
                    return Err(PyError::new(
                        ErrorKind::Type,
                        format!("{}() missing required argument: '{}'", def.name, param.name),
                    ))
                }
            }
        }

        self.frames.push(Frame {
            name: def.name.clone(),
            locals,
            closure: f.closure.clone(),
            globals_decl: def.global_names.clone(),
            line: def.line,
            is_module: false,
        });
        if let Some(hook) = self.hook.clone() {
            hook.borrow_mut().on_call(&def.name, def.line);
        }
        let result = match self.exec_mode {
            ExecMode::Ast => self.exec_block(&def.body),
            ExecMode::Bytecode => {
                let code = self.code_cache.get_or_compile(def);
                vm::run(self, &code)
            }
        };
        let frame_line = self.frames.last().map(|f| f.line).unwrap_or(def.line);
        self.frames.pop();
        if let Some(hook) = self.hook.clone() {
            hook.borrow_mut().on_return(&def.name);
        }
        match result {
            Ok(Flow::Return(v)) => Ok(v),
            Ok(Flow::Normal) => Ok(Value::None),
            Ok(Flow::Break) | Ok(Flow::Continue) => Err(PyError::new(
                ErrorKind::Syntax,
                "'break' or 'continue' outside loop",
            )),
            Err(mut e) => {
                e.push_frame(def.name.clone(), frame_line);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    fn exec_block(&mut self, body: &[Stmt]) -> Result<Flow, PyError> {
        for stmt in body {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, PyError> {
        self.stmts_executed += 1;
        if let Some(frame) = self.frames.last_mut() {
            frame.line = stmt.line;
        }
        if let Some(budget) = self.steps_left.as_mut() {
            if *budget == 0 {
                return Err(PyError::new(
                    ErrorKind::Resource,
                    "statement budget exhausted (possible infinite loop)",
                ));
            }
            *budget -= 1;
        }
        if self.prof.is_some() {
            self.prof_statement(stmt.line);
        }
        if let Some(hook) = self.hook.clone() {
            let outcome = {
                let fname = self
                    .frames
                    .last()
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| "<module>".to_string());
                hook.borrow_mut().on_statement(self, &fname, stmt.line)?
            };
            if matches!(outcome, HookOutcome::Terminate) {
                return Err(PyError::new(ErrorKind::Resource, "terminated by debugger"));
            }
        }

        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.eval_expr(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Assign { targets, value } => {
                let v = self.eval_expr(value)?;
                for target in targets {
                    self.assign(target, v.clone())?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::AugAssign { target, op, value } => {
                let current = self.eval_expr(target)?;
                let rhs = self.eval_expr(value)?;
                let combined = self.binop(*op, &current, &rhs, stmt.line)?;
                self.assign(target, combined)?;
                Ok(Flow::Normal)
            }
            StmtKind::Return(expr) => {
                let v = match expr {
                    Some(e) => self.eval_expr(e)?,
                    None => Value::None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::If { branches, orelse } => {
                for (test, body) in branches {
                    if self.eval_expr(test)?.truthy() {
                        return self.exec_block(body);
                    }
                }
                self.exec_block(orelse)
            }
            StmtKind::While { test, body } => {
                while self.eval_expr(test)?.truthy() {
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { target, iter, body } => {
                let iterable = self.eval_expr(iter)?;
                // Ranges iterate lazily; everything else materializes.
                if let Value::Range { start, stop, step } = iterable {
                    if step == 0 {
                        return Err(self.err_at(
                            ErrorKind::Value,
                            "range() step must not be zero",
                            stmt.line,
                        ));
                    }
                    let mut i = start;
                    while (step > 0 && i < stop) || (step < 0 && i > stop) {
                        self.assign(target, Value::Int(i))?;
                        match self.exec_block(body)? {
                            Flow::Break => return Ok(Flow::Normal),
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            Flow::Normal | Flow::Continue => {}
                        }
                        i += step;
                    }
                    return Ok(Flow::Normal);
                }
                let items = self.iter_values(&iterable, stmt.line)?;
                for item in items {
                    self.assign(target, item)?;
                    match self.exec_block(body)? {
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Pass => Ok(Flow::Normal),
            StmtKind::FunctionDef(def) => {
                let closure = self.current_closure();
                let func = Value::Function(Rc::new(PyFunction {
                    def: def.clone(),
                    closure,
                }));
                self.bind_name(&def.name, func)?;
                Ok(Flow::Normal)
            }
            StmtKind::Import { module, alias } => {
                let value = self.load_module(module, stmt.line)?;
                let bind_as = match alias {
                    Some(a) => a.clone(),
                    None => {
                        // `import a.b` binds `a`.
                        let top = module.split('.').next().unwrap().to_string();
                        if top != *module {
                            let top_mod = self.load_module(&top, stmt.line)?;
                            self.bind_name(&top, top_mod)?;
                            return Ok(Flow::Normal);
                        }
                        top
                    }
                };
                self.bind_name(&bind_as, value)?;
                Ok(Flow::Normal)
            }
            StmtKind::FromImport { module, names } => {
                let value = self.load_module(module, stmt.line)?;
                let Value::Module(m) = &value else {
                    return Err(self.err_at(
                        ErrorKind::Import,
                        format!("'{module}' is not a module"),
                        stmt.line,
                    ));
                };
                for (name, alias) in names {
                    let attr = m.attrs.borrow().get(name).cloned().ok_or_else(|| {
                        self.err_at(
                            ErrorKind::Import,
                            format!("cannot import name '{name}' from '{module}'"),
                            stmt.line,
                        )
                    })?;
                    self.bind_name(alias.as_ref().unwrap_or(name), attr)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Global(_) => Ok(Flow::Normal), // handled at scope-scan time
            StmtKind::Del(targets) => {
                for target in targets {
                    self.delete(target)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Try {
                body,
                handlers,
                finally,
            } => {
                let result = self.exec_block(body);
                let outcome = match result {
                    Err(err) => {
                        let mut handled = None;
                        for (class, alias, hbody) in handlers {
                            let matches = match class {
                                None => true,
                                Some(c) => c == err.class_name() || c == "Exception",
                            };
                            if matches {
                                if let Some(a) = alias {
                                    self.bind_name(a, Value::str(err.message.clone()))?;
                                }
                                handled = Some(self.exec_block(hbody));
                                break;
                            }
                        }
                        handled.unwrap_or(Err(err))
                    }
                    ok => ok,
                };
                // `finally` always runs; its error wins.
                match self.exec_block(finally)? {
                    Flow::Normal => outcome,
                    other => Ok(other),
                }
            }
            StmtKind::Raise(expr) => {
                let err = match expr {
                    None => {
                        PyError::user("RuntimeError", "re-raise outside except is not supported")
                    }
                    Some(e) => self.eval_raise_expr(e)?,
                };
                Err(err)
            }
            StmtKind::Assert { test, message } => {
                if !self.eval_expr(test)?.truthy() {
                    let msg = match message {
                        Some(m) => self.eval_expr(m)?.py_str(),
                        None => "assertion failed".to_string(),
                    };
                    return Err(self.err_at(ErrorKind::Assertion, msg, stmt.line));
                }
                Ok(Flow::Normal)
            }
        }
    }

    /// Turn `raise Name("msg")` / `raise Name` / `raise "msg"` into a PyError.
    fn eval_raise_expr(&mut self, e: &Expr) -> Result<PyError, PyError> {
        match &e.kind {
            ExprKind::Call { func, args, .. } => {
                if let ExprKind::Name(class) = &func.kind {
                    let msg = match args.first() {
                        Some(a) => self.eval_expr(a)?.py_str(),
                        None => String::new(),
                    };
                    let mut err = PyError::user(class.clone(), msg);
                    err.push_frame(self.current_function_name(), e.line);
                    return Ok(err);
                }
                let v = self.eval_expr(e)?;
                Ok(PyError::user("Exception", v.py_str()))
            }
            ExprKind::Name(class) => {
                let mut err = PyError::user(class.clone(), String::new());
                err.push_frame(self.current_function_name(), e.line);
                Ok(err)
            }
            _ => {
                let v = self.eval_expr(e)?;
                Ok(PyError::user("Exception", v.py_str()))
            }
        }
    }

    pub(crate) fn current_function_name(&self) -> String {
        self.frames
            .last()
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<module>".to_string())
    }

    pub(crate) fn current_closure(&self) -> Vec<Scope> {
        match self.frames.last() {
            Some(f) if !f.is_module => {
                let mut c = f.closure.clone();
                c.push(f.locals.clone());
                c
            }
            _ => Vec::new(),
        }
    }

    pub(crate) fn err_at(&self, kind: ErrorKind, msg: impl Into<String>, line: u32) -> PyError {
        let mut e = PyError::new(kind, msg);
        e.push_frame(self.current_function_name(), line);
        e
    }

    // ------------------------------------------------------------------
    // Names, assignment, deletion
    // ------------------------------------------------------------------

    pub(crate) fn bind_name(&mut self, name: &str, value: Value) -> Result<(), PyError> {
        let frame = self.frames.last().expect("bind outside any frame");
        if !frame.is_module && frame.globals_decl.iter().any(|g| g == name) {
            self.globals.borrow_mut().insert(name.to_string(), value);
        } else {
            frame.locals.borrow_mut().insert(name.to_string(), value);
        }
        Ok(())
    }

    pub(crate) fn lookup_name(&self, name: &str, line: u32) -> Result<Value, PyError> {
        if let Some(frame) = self.frames.last() {
            if let Some(v) = frame.locals.borrow().get(name) {
                return Ok(v.clone());
            }
            for scope in frame.closure.iter().rev() {
                if let Some(v) = scope.borrow().get(name) {
                    return Ok(v.clone());
                }
            }
        }
        if let Some(v) = self.globals.borrow().get(name) {
            return Ok(v.clone());
        }
        if let Some(v) = builtins::lookup(name) {
            return Ok(v);
        }
        Err(self.err_at(
            ErrorKind::Name,
            format!("name '{name}' is not defined"),
            line,
        ))
    }

    fn assign(&mut self, target: &Expr, value: Value) -> Result<(), PyError> {
        match &target.kind {
            ExprKind::Name(name) => self.bind_name(name, value),
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                let values = self.iter_values(&value, target.line)?;
                if values.len() != items.len() {
                    return Err(self.err_at(
                        ErrorKind::Value,
                        format!(
                            "cannot unpack {} values into {} targets",
                            values.len(),
                            items.len()
                        ),
                        target.line,
                    ));
                }
                for (item, v) in items.iter().zip(values) {
                    self.assign(item, v)?;
                }
                Ok(())
            }
            ExprKind::Subscript { value: obj, index } => {
                let container = self.eval_expr(obj)?;
                match index.as_ref() {
                    Index::Item(idx_expr) => {
                        let idx = self.eval_expr(idx_expr)?;
                        self.set_item(&container, &idx, value, target.line)
                    }
                    Index::Slice { .. } => Err(self.err_at(
                        ErrorKind::Type,
                        "slice assignment is not supported",
                        target.line,
                    )),
                }
            }
            ExprKind::Attribute { value: obj, attr } => {
                let container = self.eval_expr(obj)?;
                match container {
                    Value::Module(m) => {
                        m.attrs.borrow_mut().insert(attr.clone(), value);
                        Ok(())
                    }
                    other => Err(self.err_at(
                        ErrorKind::Attribute,
                        format!("cannot set attribute '{attr}' on '{}'", other.type_name()),
                        target.line,
                    )),
                }
            }
            _ => Err(self.err_at(ErrorKind::Syntax, "invalid assignment target", target.line)),
        }
    }

    pub(crate) fn set_item(
        &mut self,
        container: &Value,
        index: &Value,
        value: Value,
        line: u32,
    ) -> Result<(), PyError> {
        match container {
            Value::List(l) => {
                let mut l = l.borrow_mut();
                let len = l.len();
                let i = normalize_index(index, len, line, self)?;
                l[i] = value;
                Ok(())
            }
            Value::Dict(d) => {
                d.borrow_mut().insert(index.clone(), value)?;
                Ok(())
            }
            other => Err(self.err_at(
                ErrorKind::Type,
                format!(
                    "'{}' object does not support item assignment",
                    other.type_name()
                ),
                line,
            )),
        }
    }

    fn delete(&mut self, target: &Expr) -> Result<(), PyError> {
        match &target.kind {
            ExprKind::Name(name) => self.delete_name(name, target.line),
            ExprKind::Subscript { value: obj, index } => {
                let container = self.eval_expr(obj)?;
                let Index::Item(idx_expr) = index.as_ref() else {
                    return Err(self.err_at(
                        ErrorKind::Type,
                        "slice deletion is not supported",
                        target.line,
                    ));
                };
                let idx = self.eval_expr(idx_expr)?;
                self.del_item(&container, &idx, target.line)
            }
            _ => Err(self.err_at(ErrorKind::Syntax, "invalid del target", target.line)),
        }
    }

    /// `del name`: remove a binding from locals (or globals).
    pub(crate) fn delete_name(&mut self, name: &str, line: u32) -> Result<(), PyError> {
        let frame = self.frames.last().expect("delete outside frame");
        let removed = frame.locals.borrow_mut().remove(name).is_some()
            || self.globals.borrow_mut().remove(name).is_some();
        if !removed {
            return Err(self.err_at(
                ErrorKind::Name,
                format!("name '{name}' is not defined"),
                line,
            ));
        }
        Ok(())
    }

    /// `del obj[idx]`.
    pub(crate) fn del_item(
        &mut self,
        container: &Value,
        idx: &Value,
        line: u32,
    ) -> Result<(), PyError> {
        match container {
            Value::List(l) => {
                let mut l = l.borrow_mut();
                let len = l.len();
                let i = normalize_index(idx, len, line, self)?;
                l.remove(i);
                Ok(())
            }
            Value::Dict(d) => {
                let removed = d.borrow_mut().remove(idx)?;
                if removed.is_none() {
                    return Err(self.err_at(ErrorKind::Key, idx.repr(), line));
                }
                Ok(())
            }
            other => Err(self.err_at(
                ErrorKind::Type,
                format!("cannot delete items of '{}'", other.type_name()),
                line,
            )),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    pub(crate) fn eval_expr(&mut self, e: &Expr) -> Result<Value, PyError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::NoneLit => Ok(Value::None),
            ExprKind::Name(name) => self.lookup_name(name, e.line),
            ExprKind::Tuple(items) => {
                let mut vs = Vec::with_capacity(items.len());
                for item in items {
                    vs.push(self.eval_expr(item)?);
                }
                Ok(Value::tuple(vs))
            }
            ExprKind::List(items) => {
                let mut vs = Vec::with_capacity(items.len());
                for item in items {
                    vs.push(self.eval_expr(item)?);
                }
                Ok(Value::list(vs))
            }
            ExprKind::Dict(pairs) => {
                let mut d = Dict::new();
                for (k, v) in pairs {
                    let key = self.eval_expr(k)?;
                    let value = self.eval_expr(v)?;
                    d.insert(key, value)?;
                }
                Ok(Value::dict(d))
            }
            ExprKind::BinOp { left, op, right } => {
                let l = self.eval_expr(left)?;
                let r = self.eval_expr(right)?;
                self.binop(*op, &l, &r, e.line)
            }
            ExprKind::UnaryOp { op, operand } => {
                let v = self.eval_expr(operand)?;
                self.unaryop(*op, &v, e.line)
            }
            ExprKind::BoolOp { op, values } => {
                let mut last = Value::None;
                for (i, v) in values.iter().enumerate() {
                    last = self.eval_expr(v)?;
                    let t = last.truthy();
                    let is_last = i == values.len() - 1;
                    match op {
                        BoolOpKind::And if !t && !is_last => return Ok(last),
                        BoolOpKind::Or if t && !is_last => return Ok(last),
                        _ => {}
                    }
                    // Short-circuit check must consider non-last values only;
                    // the final value is returned as-is (Python semantics).
                    if !is_last {
                        match op {
                            BoolOpKind::And if !t => return Ok(last),
                            BoolOpKind::Or if t => return Ok(last),
                            _ => {}
                        }
                    }
                }
                Ok(last)
            }
            ExprKind::Compare {
                left,
                ops,
                comparators,
            } => {
                let mut lhs = self.eval_expr(left)?;
                // Vectorized single comparison over arrays.
                if ops.len() == 1 {
                    let rhs = self.eval_expr(&comparators[0])?;
                    if matches!(lhs, Value::Array(_)) || matches!(rhs, Value::Array(_)) {
                        return self.array_compare(ops[0], &lhs, &rhs, e.line);
                    }
                    return Ok(Value::Bool(self.compare_once(ops[0], &lhs, &rhs, e.line)?));
                }
                for (op, comp) in ops.iter().zip(comparators.iter()) {
                    let rhs = self.eval_expr(comp)?;
                    if !self.compare_once(*op, &lhs, &rhs, e.line)? {
                        return Ok(Value::Bool(false));
                    }
                    lhs = rhs;
                }
                Ok(Value::Bool(true))
            }
            ExprKind::Call { func, args, kwargs } => self.eval_call(func, args, kwargs, e.line),
            ExprKind::Attribute { value, attr } => {
                let obj = self.eval_expr(value)?;
                self.get_attribute(&obj, attr, e.line)
            }
            ExprKind::Subscript { value, index } => {
                let obj = self.eval_expr(value)?;
                self.eval_subscript(&obj, index, e.line)
            }
            ExprKind::Lambda(def) => {
                let closure = self.current_closure();
                Ok(Value::Function(Rc::new(PyFunction {
                    def: def.clone(),
                    closure,
                })))
            }
            ExprKind::IfExp { test, body, orelse } => {
                if self.eval_expr(test)?.truthy() {
                    self.eval_expr(body)
                } else {
                    self.eval_expr(orelse)
                }
            }
            ExprKind::ListComp {
                elt,
                target,
                iter,
                conds,
            } => {
                let iterable = self.eval_expr(iter)?;
                let items = self.iter_values(&iterable, e.line)?;
                let mut out = Vec::with_capacity(items.len());
                'outer: for item in items {
                    self.assign(target, item)?;
                    for cond in conds {
                        if !self.eval_expr(cond)?.truthy() {
                            continue 'outer;
                        }
                    }
                    out.push(self.eval_expr(elt)?);
                }
                Ok(Value::list(out))
            }
        }
    }

    fn eval_call(
        &mut self,
        func: &Expr,
        args: &[Expr],
        kwargs: &[(String, Expr)],
        line: u32,
    ) -> Result<Value, PyError> {
        let mut arg_values = Vec::with_capacity(args.len());
        for a in args {
            arg_values.push(self.eval_expr(a)?);
        }
        let mut kwarg_values = Vec::with_capacity(kwargs.len());
        for (name, v) in kwargs {
            kwarg_values.push((name.clone(), self.eval_expr(v)?));
        }

        // Method call: obj.method(...)
        if let ExprKind::Attribute { value, attr } = &func.kind {
            let obj = self.eval_expr(value)?;
            return self
                .call_method(&obj, attr, &arg_values, &kwarg_values, line)
                .map_err(|mut e| {
                    if e.traceback.is_empty() {
                        e.push_frame(self.current_function_name(), line);
                    }
                    e
                });
        }

        let callee = self.eval_expr(func)?;
        self.call_function(&callee, &arg_values, &kwarg_values, line)
            .map_err(|mut e| {
                if e.innermost_line().is_none() {
                    e.push_frame(self.current_function_name(), line);
                }
                e
            })
    }

    /// Dispatch a method call on any receiver type.
    pub fn call_method(
        &mut self,
        obj: &Value,
        name: &str,
        args: &[Value],
        kwargs: &[(String, Value)],
        line: u32,
    ) -> Result<Value, PyError> {
        match obj {
            Value::Native(n) => n.clone().call_method(name, self, args, kwargs),
            Value::Module(m) => {
                let attr = m.attrs.borrow().get(name).cloned().ok_or_else(|| {
                    self.err_at(
                        ErrorKind::Attribute,
                        format!("module '{}' has no attribute '{name}'", m.name),
                        line,
                    )
                })?;
                self.call_function(&attr, args, kwargs, line)
            }
            other => methods::call_builtin_method(self, other, name, args, kwargs, line),
        }
    }

    pub(crate) fn get_attribute(
        &mut self,
        obj: &Value,
        attr: &str,
        line: u32,
    ) -> Result<Value, PyError> {
        match obj {
            Value::Module(m) => m.attrs.borrow().get(attr).cloned().ok_or_else(|| {
                self.err_at(
                    ErrorKind::Attribute,
                    format!("module '{}' has no attribute '{attr}'", m.name),
                    line,
                )
            }),
            Value::Native(n) => n.get_attr(attr).ok_or_else(|| {
                self.err_at(
                    ErrorKind::Attribute,
                    format!("'{}' object has no attribute '{attr}'", n.type_name()),
                    line,
                )
            }),
            other => Err(self.err_at(
                ErrorKind::Attribute,
                format!(
                    "'{}' object has no attribute '{attr}' (methods must be called directly)",
                    other.type_name()
                ),
                line,
            )),
        }
    }

    fn eval_subscript(&mut self, obj: &Value, index: &Index, line: u32) -> Result<Value, PyError> {
        match index {
            Index::Item(idx_expr) => {
                let idx = self.eval_expr(idx_expr)?;
                self.get_item(obj, &idx, line)
            }
            Index::Slice { lower, upper, step } => {
                let len = self.value_len(obj, line)?;
                let step_v = match step {
                    Some(s) => match self.eval_expr(s)? {
                        Value::Int(0) => {
                            return Err(self.err_at(
                                ErrorKind::Value,
                                "slice step cannot be zero",
                                line,
                            ))
                        }
                        Value::Int(i) => i,
                        other => {
                            return Err(self.err_at(
                                ErrorKind::Type,
                                format!("slice step must be int, not {}", other.type_name()),
                                line,
                            ))
                        }
                    },
                    None => 1,
                };
                let lo = match lower {
                    Some(l) => Some(self.slice_bound(l, line)?),
                    None => None,
                };
                let hi = match upper {
                    Some(u) => Some(self.slice_bound(u, line)?),
                    None => None,
                };
                self.slice_select(obj, lo, hi, step_v, len, line)
            }
        }
    }

    /// Apply a resolved slice (`lo:hi:step` over a known `len`) to a
    /// sliceable value.
    pub(crate) fn slice_select(
        &self,
        obj: &Value,
        lo: Option<i64>,
        hi: Option<i64>,
        step: i64,
        len: usize,
        line: u32,
    ) -> Result<Value, PyError> {
        let indices = slice_indices(lo, hi, step, len);
        match obj {
            Value::List(l) => {
                let l = l.borrow();
                Ok(Value::list(indices.iter().map(|&i| l[i].clone()).collect()))
            }
            Value::Tuple(t) => Ok(Value::tuple(
                indices.iter().map(|&i| t[i].clone()).collect(),
            )),
            Value::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                Ok(Value::str(
                    indices.iter().map(|&i| chars[i]).collect::<String>(),
                ))
            }
            Value::Array(a) => {
                let picked: Vec<Value> = indices.iter().map(|&i| a.get(i)).collect();
                Ok(Value::array(Array::from_values(&picked)?))
            }
            Value::Bytes(b) => Ok(Value::bytes(indices.iter().map(|&i| b[i]).collect())),
            other => Err(self.err_at(
                ErrorKind::Type,
                format!("'{}' object is not sliceable", other.type_name()),
                line,
            )),
        }
    }

    fn slice_bound(&mut self, e: &Expr, line: u32) -> Result<i64, PyError> {
        match self.eval_expr(e)? {
            Value::Int(i) => Ok(i),
            other => Err(self.err_at(
                ErrorKind::Type,
                format!("slice index must be int, not {}", other.type_name()),
                line,
            )),
        }
    }

    /// Item access: `obj[idx]`.
    pub fn get_item(&mut self, obj: &Value, idx: &Value, line: u32) -> Result<Value, PyError> {
        match obj {
            Value::List(l) => {
                let l = l.borrow();
                let i = normalize_index(idx, l.len(), line, self)?;
                Ok(l[i].clone())
            }
            Value::Tuple(t) => {
                let i = normalize_index(idx, t.len(), line, self)?;
                Ok(t[i].clone())
            }
            Value::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let i = normalize_index(idx, chars.len(), line, self)?;
                Ok(Value::str(chars[i].to_string()))
            }
            Value::Bytes(b) => {
                let i = normalize_index(idx, b.len(), line, self)?;
                Ok(Value::Int(b[i] as i64))
            }
            Value::Array(a) => {
                // Boolean-mask indexing: arr[mask].
                if let Value::Array(mask) = idx {
                    if let Array::Bool(m) = mask.as_ref() {
                        if m.len() != a.len() {
                            return Err(self.err_at(
                                ErrorKind::Value,
                                format!("mask length {} != array length {}", m.len(), a.len()),
                                line,
                            ));
                        }
                        let picked: Vec<Value> = m
                            .iter()
                            .enumerate()
                            .filter(|(_, keep)| **keep)
                            .map(|(i, _)| a.get(i))
                            .collect();
                        return Ok(Value::array(Array::from_values(&picked)?));
                    }
                }
                let i = normalize_index(idx, a.len(), line, self)?;
                Ok(a.get(i))
            }
            Value::Dict(d) => {
                let v = d.borrow().get(idx)?;
                v.ok_or_else(|| self.err_at(ErrorKind::Key, idx.repr(), line))
            }
            Value::Range { start, stop, step } => {
                let len = range_len(*start, *stop, *step);
                let i = normalize_index(idx, len, line, self)?;
                Ok(Value::Int(start + step * (i as i64)))
            }
            Value::Native(n) => {
                n.clone()
                    .call_method("__getitem__", self, std::slice::from_ref(idx), &[])
            }
            other => Err(self.err_at(
                ErrorKind::Type,
                format!("'{}' object is not subscriptable", other.type_name()),
                line,
            )),
        }
    }

    /// Length of a value, raising `TypeError` when it has none.
    pub fn value_len(&self, v: &Value, line: u32) -> Result<usize, PyError> {
        match v {
            Value::Str(s) => Ok(s.chars().count()),
            Value::Bytes(b) => Ok(b.len()),
            Value::List(l) => Ok(l.borrow().len()),
            Value::Tuple(t) => Ok(t.len()),
            Value::Dict(d) => Ok(d.borrow().len()),
            Value::Array(a) => Ok(a.len()),
            Value::Range { start, stop, step } => Ok(range_len(*start, *stop, *step)),
            other => Err(self.err_at(
                ErrorKind::Type,
                format!("object of type '{}' has no len()", other.type_name()),
                line,
            )),
        }
    }

    /// Materialize an iterable into values.
    pub fn iter_values(&mut self, v: &Value, line: u32) -> Result<Vec<Value>, PyError> {
        match v {
            Value::List(l) => Ok(l.borrow().clone()),
            Value::Tuple(t) => Ok(t.to_vec()),
            Value::Str(s) => Ok(s.chars().map(|c| Value::str(c.to_string())).collect()),
            Value::Dict(d) => Ok(d.borrow().keys()),
            Value::Array(a) => Ok((0..a.len()).map(|i| a.get(i)).collect()),
            Value::Range { start, stop, step } => {
                if *step == 0 {
                    return Err(self.err_at(
                        ErrorKind::Value,
                        "range() step must not be zero",
                        line,
                    ));
                }
                let mut out = Vec::new();
                let mut i = *start;
                while (*step > 0 && i < *stop) || (*step < 0 && i > *stop) {
                    out.push(Value::Int(i));
                    i += step;
                }
                Ok(out)
            }
            Value::Bytes(b) => Ok(b.iter().map(|&x| Value::Int(x as i64)).collect()),
            Value::Native(n) => n.iterate().ok_or_else(|| {
                self.err_at(
                    ErrorKind::Type,
                    format!("'{}' object is not iterable", n.type_name()),
                    line,
                )
            }),
            other => Err(self.err_at(
                ErrorKind::Type,
                format!("'{}' object is not iterable", other.type_name()),
                line,
            )),
        }
    }

    // ------------------------------------------------------------------
    // Operators
    // ------------------------------------------------------------------

    /// Apply a binary operator with numpy-style broadcasting over arrays.
    pub fn binop(&mut self, op: BinOp, l: &Value, r: &Value, line: u32) -> Result<Value, PyError> {
        // Vectorized paths first.
        if matches!(l, Value::Array(_)) || matches!(r, Value::Array(_)) {
            return self.array_binop(op, l, r, line);
        }
        match op {
            BinOp::Add => self.add_values(l, r, line),
            BinOp::Sub => self.numeric_binop(op, l, r, line),
            BinOp::Mul => self.mul_values(l, r, line),
            BinOp::Div | BinOp::FloorDiv | BinOp::Pow => self.numeric_binop(op, l, r, line),
            BinOp::Mod => match l {
                Value::Str(fmt) => methods::percent_format(self, fmt, r, line),
                _ => self.numeric_binop(op, l, r, line),
            },
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => {
                let (a, b) = match (l, r) {
                    (Value::Bool(a), Value::Bool(b)) => {
                        return Ok(Value::Bool(match op {
                            BinOp::BitAnd => *a && *b,
                            BinOp::BitOr => *a || *b,
                            _ => *a != *b,
                        }))
                    }
                    (Value::Int(a), Value::Int(b)) => (*a, *b),
                    (Value::Bool(a), Value::Int(b)) => (*a as i64, *b),
                    (Value::Int(a), Value::Bool(b)) => (*a, *b as i64),
                    _ => {
                        return Err(self.type_mismatch(op, l, r, line));
                    }
                };
                Ok(Value::Int(match op {
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    _ => a ^ b,
                }))
            }
        }
    }

    fn add_values(&mut self, l: &Value, r: &Value, line: u32) -> Result<Value, PyError> {
        match (l, r) {
            (Value::Str(a), Value::Str(b)) => {
                let mut s = String::with_capacity(a.len() + b.len());
                s.push_str(a);
                s.push_str(b);
                Ok(Value::str(s))
            }
            (Value::List(a), Value::List(b)) => {
                let mut out = a.borrow().clone();
                out.extend(b.borrow().iter().cloned());
                Ok(Value::list(out))
            }
            (Value::Tuple(a), Value::Tuple(b)) => {
                let mut out = a.to_vec();
                out.extend(b.iter().cloned());
                Ok(Value::tuple(out))
            }
            _ => self.numeric_binop(BinOp::Add, l, r, line),
        }
    }

    fn mul_values(&mut self, l: &Value, r: &Value, line: u32) -> Result<Value, PyError> {
        match (l, r) {
            (Value::Str(s), Value::Int(n)) | (Value::Int(n), Value::Str(s)) => {
                Ok(Value::str(s.repeat((*n).max(0) as usize)))
            }
            (Value::List(list), Value::Int(n)) | (Value::Int(n), Value::List(list)) => {
                let items = list.borrow();
                let mut out = Vec::with_capacity(items.len() * (*n).max(0) as usize);
                for _ in 0..(*n).max(0) {
                    out.extend(items.iter().cloned());
                }
                Ok(Value::list(out))
            }
            _ => self.numeric_binop(BinOp::Mul, l, r, line),
        }
    }

    fn numeric_binop(&self, op: BinOp, l: &Value, r: &Value, line: u32) -> Result<Value, PyError> {
        let both_int = matches!(
            (l, r),
            (
                Value::Int(_) | Value::Bool(_),
                Value::Int(_) | Value::Bool(_)
            )
        );
        if both_int {
            let a = as_i64(l);
            let b = as_i64(r);
            return match op {
                BinOp::Add => a
                    .checked_add(b)
                    .map(Value::Int)
                    .ok_or_else(|| self.err_at(ErrorKind::Value, "integer overflow in +", line)),
                BinOp::Sub => a
                    .checked_sub(b)
                    .map(Value::Int)
                    .ok_or_else(|| self.err_at(ErrorKind::Value, "integer overflow in -", line)),
                BinOp::Mul => a
                    .checked_mul(b)
                    .map(Value::Int)
                    .ok_or_else(|| self.err_at(ErrorKind::Value, "integer overflow in *", line)),
                BinOp::Div => {
                    if b == 0 {
                        Err(self.err_at(ErrorKind::ZeroDivision, "division by zero", line))
                    } else {
                        Ok(Value::Float(a as f64 / b as f64))
                    }
                }
                BinOp::FloorDiv => {
                    if b == 0 {
                        Err(self.err_at(ErrorKind::ZeroDivision, "integer division by zero", line))
                    } else {
                        // i64::MIN // -1 overflows; div_euclid would panic.
                        a.checked_div_euclid(b).map(Value::Int).ok_or_else(|| {
                            self.err_at(ErrorKind::Value, "integer overflow in //", line)
                        })
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Err(self.err_at(ErrorKind::ZeroDivision, "modulo by zero", line))
                    } else {
                        a.checked_rem_euclid(b).map(Value::Int).ok_or_else(|| {
                            self.err_at(ErrorKind::Value, "integer overflow in %", line)
                        })
                    }
                }
                BinOp::Pow => {
                    if b >= 0 {
                        let exp = u32::try_from(b).map_err(|_| {
                            self.err_at(ErrorKind::Value, "exponent too large", line)
                        })?;
                        a.checked_pow(exp).map(Value::Int).ok_or_else(|| {
                            self.err_at(ErrorKind::Value, "integer overflow in **", line)
                        })
                    } else {
                        Ok(Value::Float((a as f64).powf(b as f64)))
                    }
                }
                _ => Err(self.type_mismatch(op, l, r, line)),
            };
        }
        let (Some(a), Some(b)) = (as_f64_opt(l), as_f64_opt(r)) else {
            return Err(self.type_mismatch(op, l, r, line));
        };
        match op {
            BinOp::Add => Ok(Value::Float(a + b)),
            BinOp::Sub => Ok(Value::Float(a - b)),
            BinOp::Mul => Ok(Value::Float(a * b)),
            BinOp::Div => {
                if b == 0.0 {
                    Err(self.err_at(ErrorKind::ZeroDivision, "float division by zero", line))
                } else {
                    Ok(Value::Float(a / b))
                }
            }
            BinOp::FloorDiv => {
                if b == 0.0 {
                    Err(self.err_at(
                        ErrorKind::ZeroDivision,
                        "float floor division by zero",
                        line,
                    ))
                } else {
                    Ok(Value::Float((a / b).floor()))
                }
            }
            BinOp::Mod => {
                if b == 0.0 {
                    Err(self.err_at(ErrorKind::ZeroDivision, "float modulo by zero", line))
                } else {
                    Ok(Value::Float(a - b * (a / b).floor()))
                }
            }
            BinOp::Pow => Ok(Value::Float(a.powf(b))),
            _ => Err(self.type_mismatch(op, l, r, line)),
        }
    }

    fn type_mismatch(&self, op: BinOp, l: &Value, r: &Value, line: u32) -> PyError {
        self.err_at(
            ErrorKind::Type,
            format!(
                "unsupported operand type(s) for {}: '{}' and '{}'",
                op.symbol(),
                l.type_name(),
                r.type_name()
            ),
            line,
        )
    }

    /// Vectorized binary operation when at least one side is an array.
    fn array_binop(
        &mut self,
        op: BinOp,
        l: &Value,
        r: &Value,
        line: u32,
    ) -> Result<Value, PyError> {
        let len = match (l, r) {
            (Value::Array(a), Value::Array(b)) => {
                if a.len() != b.len() {
                    return Err(self.err_at(
                        ErrorKind::Value,
                        format!("array length mismatch: {} vs {}", a.len(), b.len()),
                        line,
                    ));
                }
                a.len()
            }
            (Value::Array(a), _) => a.len(),
            (_, Value::Array(b)) => b.len(),
            _ => unreachable!("array_binop requires an array operand"),
        };
        // Fast numeric paths for the common cases. These must keep the same
        // checked-overflow semantics as the scalar path: a wrapping shortcut
        // here would silently disagree with `numeric_binop` (and with the
        // inlined relational plan, which the differential harness compares
        // against).
        if let (Value::Array(a), Value::Array(b)) = (l, r) {
            if let (Array::Int(x), Array::Int(y)) = (a.as_ref(), b.as_ref()) {
                let checked: Option<fn(i64, i64) -> Option<i64>> = match op {
                    BinOp::Add => Some(i64::checked_add),
                    BinOp::Sub => Some(i64::checked_sub),
                    BinOp::Mul => Some(i64::checked_mul),
                    _ => None,
                };
                if let Some(f) = checked {
                    let mut out = Vec::with_capacity(x.len());
                    for (p, q) in x.iter().zip(y) {
                        out.push(f(*p, *q).ok_or_else(|| {
                            self.err_at(
                                ErrorKind::Value,
                                format!("integer overflow in {}", op.symbol()),
                                line,
                            )
                        })?);
                    }
                    return Ok(Value::array(Array::Int(out)));
                }
            }
        }
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let a = element_at(l, i);
            let b = element_at(r, i);
            out.push(self.binop_scalar_for_array(op, &a, &b, line)?);
        }
        Ok(Value::array(Array::from_values(&out)?))
    }

    /// Scalar op used inside array broadcasting (no nested array recursion).
    fn binop_scalar_for_array(
        &mut self,
        op: BinOp,
        l: &Value,
        r: &Value,
        line: u32,
    ) -> Result<Value, PyError> {
        match op {
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => match (l, r) {
                (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(match op {
                    BinOp::BitAnd => *a && *b,
                    BinOp::BitOr => *a || *b,
                    _ => a != b,
                })),
                _ => self.binop(op, l, r, line),
            },
            _ => self.binop(op, l, r, line),
        }
    }

    pub(crate) fn array_compare(
        &mut self,
        op: CmpOp,
        l: &Value,
        r: &Value,
        line: u32,
    ) -> Result<Value, PyError> {
        let len = match (l, r) {
            (Value::Array(a), Value::Array(b)) => {
                if a.len() != b.len() {
                    return Err(self.err_at(
                        ErrorKind::Value,
                        format!("array length mismatch: {} vs {}", a.len(), b.len()),
                        line,
                    ));
                }
                a.len()
            }
            (Value::Array(a), _) => a.len(),
            (_, Value::Array(b)) => b.len(),
            _ => unreachable!(),
        };
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let a = element_at(l, i);
            let b = element_at(r, i);
            out.push(self.compare_once(op, &a, &b, line)?);
        }
        Ok(Value::array(Array::Bool(out)))
    }

    pub(crate) fn unaryop(&mut self, op: UnaryOp, v: &Value, line: u32) -> Result<Value, PyError> {
        match op {
            UnaryOp::Not => Ok(Value::Bool(!v.truthy())),
            UnaryOp::Pos => match v {
                Value::Int(_) | Value::Float(_) | Value::Bool(_) => Ok(v.clone()),
                Value::Array(_) => Ok(v.clone()),
                other => Err(self.err_at(
                    ErrorKind::Type,
                    format!("bad operand type for unary +: '{}'", other.type_name()),
                    line,
                )),
            },
            UnaryOp::Neg => match v {
                // -i64::MIN does not fit; match the binary-op overflow errors.
                Value::Int(i) => i.checked_neg().map(Value::Int).ok_or_else(|| {
                    self.err_at(ErrorKind::Value, "integer overflow in unary -", line)
                }),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Bool(b) => Ok(Value::Int(-(*b as i64))),
                Value::Array(a) => {
                    let out: Result<Vec<Value>, PyError> = (0..a.len())
                        .map(|i| self.unaryop(UnaryOp::Neg, &a.get(i), line))
                        .collect();
                    Ok(Value::array(Array::from_values(&out?)?))
                }
                other => Err(self.err_at(
                    ErrorKind::Type,
                    format!("bad operand type for unary -: '{}'", other.type_name()),
                    line,
                )),
            },
        }
    }

    /// Evaluate one comparison operator between two scalars.
    pub fn compare_once(
        &mut self,
        op: CmpOp,
        l: &Value,
        r: &Value,
        line: u32,
    ) -> Result<bool, PyError> {
        match op {
            CmpOp::Eq => Ok(l.py_eq(r)),
            CmpOp::NotEq => Ok(!l.py_eq(r)),
            CmpOp::Is => Ok(l.py_is(r)),
            CmpOp::IsNot => Ok(!l.py_is(r)),
            CmpOp::In => self.contains(r, l, line),
            CmpOp::NotIn => Ok(!self.contains(r, l, line)?),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let ord = self.order_values(l, r, line)?;
                Ok(match op {
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                })
            }
        }
    }

    /// Total-order comparison used by `<`-style operators and `sorted`.
    pub fn order_values(&mut self, l: &Value, r: &Value, line: u32) -> Result<Ordering, PyError> {
        match (l, r) {
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::List(a), Value::List(b)) => {
                let (a, b) = (a.borrow().clone(), b.borrow().clone());
                self.order_seq(&a, &b, line)
            }
            (Value::Tuple(a), Value::Tuple(b)) => {
                let (a, b) = (a.to_vec(), b.to_vec());
                self.order_seq(&a, &b, line)
            }
            _ => {
                let (Some(a), Some(b)) = (as_f64_opt(l), as_f64_opt(r)) else {
                    return Err(self.err_at(
                        ErrorKind::Type,
                        format!(
                            "'<' not supported between instances of '{}' and '{}'",
                            l.type_name(),
                            r.type_name()
                        ),
                        line,
                    ));
                };
                Ok(a.partial_cmp(&b).unwrap_or(Ordering::Equal))
            }
        }
    }

    fn order_seq(&mut self, a: &[Value], b: &[Value], line: u32) -> Result<Ordering, PyError> {
        for (x, y) in a.iter().zip(b.iter()) {
            if !x.py_eq(y) {
                return self.order_values(x, y, line);
            }
        }
        Ok(a.len().cmp(&b.len()))
    }

    fn contains(&mut self, container: &Value, item: &Value, line: u32) -> Result<bool, PyError> {
        match container {
            Value::Str(s) => match item {
                Value::Str(sub) => Ok(s.contains(sub.as_ref())),
                other => Err(self.err_at(
                    ErrorKind::Type,
                    format!("'in <string>' requires string, not '{}'", other.type_name()),
                    line,
                )),
            },
            Value::Dict(d) => d.borrow().contains(item),
            Value::List(l) => Ok(l.borrow().iter().any(|v| v.py_eq(item))),
            Value::Tuple(t) => Ok(t.iter().any(|v| v.py_eq(item))),
            Value::Range { start, stop, step } => match item {
                Value::Int(i) => {
                    if *step > 0 {
                        Ok(*i >= *start && *i < *stop && (i - start) % step == 0)
                    } else if *step < 0 {
                        Ok(*i <= *start && *i > *stop && (start - i) % (-step) == 0)
                    } else {
                        Ok(false)
                    }
                }
                _ => Ok(false),
            },
            Value::Array(a) => Ok((0..a.len()).any(|i| a.get(i).py_eq(item))),
            other => Err(self.err_at(
                ErrorKind::Type,
                format!("argument of type '{}' is not iterable", other.type_name()),
                line,
            )),
        }
    }

    /// Load a module by dotted name, consulting embedder-injected modules
    /// first and the native registry second.
    pub(crate) fn load_module(&mut self, name: &str, line: u32) -> Result<Value, PyError> {
        if let Some(v) = self.extra_modules.get(name) {
            return Ok(v.clone());
        }
        native::load_module(self, name).ok_or_else(|| {
            self.err_at(ErrorKind::Import, format!("no module named '{name}'"), line)
        })
    }
}

/// Broadcast helper: element i of an array, or the scalar itself.
fn element_at(v: &Value, i: usize) -> Value {
    match v {
        Value::Array(a) => a.get(i),
        other => other.clone(),
    }
}

fn as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        _ => unreachable!("caller checked integer-ness"),
    }
}

fn as_f64_opt(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Bool(b) => Some(*b as i64 as f64),
        _ => None,
    }
}

fn range_len(start: i64, stop: i64, step: i64) -> usize {
    if step > 0 && stop > start {
        ((stop - start + step - 1) / step) as usize
    } else if step < 0 && stop < start {
        ((start - stop - step - 1) / -step) as usize
    } else {
        0
    }
}

/// Compute the element indices selected by a Python slice, following
/// CPython's `slice.indices()` semantics (negative bounds and steps, out of
/// range bounds clamped, never an error).
fn slice_indices(lower: Option<i64>, upper: Option<i64>, step: i64, len: usize) -> Vec<usize> {
    debug_assert_ne!(step, 0);
    let n = len as i64;
    let adjust = |v: i64| if v < 0 { v + n } else { v };
    let mut out = Vec::new();
    if step > 0 {
        let start = lower.map(adjust).unwrap_or(0).clamp(0, n);
        let stop = upper.map(adjust).unwrap_or(n).clamp(0, n);
        let mut i = start;
        while i < stop {
            out.push(i as usize);
            i += step;
        }
    } else {
        let start = lower.map(adjust).unwrap_or(n - 1).clamp(-1, n - 1);
        let stop = upper.map(adjust).unwrap_or(-1).clamp(-1, n - 1);
        let mut i = start;
        while i > stop {
            out.push(i as usize);
            i += step;
        }
    }
    out
}

/// Normalize a (possibly negative) index against `len`, raising IndexError.
fn normalize_index(idx: &Value, len: usize, line: u32, interp: &Interp) -> Result<usize, PyError> {
    let i = match idx {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        other => {
            return Err(interp.err_at(
                ErrorKind::Type,
                format!("indices must be integers, not '{}'", other.type_name()),
                line,
            ))
        }
    };
    let adjusted = if i < 0 { i + len as i64 } else { i };
    if adjusted < 0 || adjusted as usize >= len {
        return Err(interp.err_at(
            ErrorKind::Index,
            format!("index {i} out of range (len {len})"),
            line,
        ));
    }
    Ok(adjusted as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Interp {
        let mut interp = Interp::new();
        interp.eval_module(src).unwrap();
        interp
    }

    fn global(interp: &Interp, name: &str) -> Value {
        interp
            .get_global(name)
            .unwrap_or_else(|| panic!("no global {name}"))
    }

    #[test]
    fn arithmetic_basics() {
        let i =
            run("a = 2 + 3 * 4\nb = (2 + 3) * 4\nc = 7 / 2\nd = 7 // 2\ne = 7 % 3\nf = 2 ** 10\n");
        assert_eq!(global(&i, "a"), Value::Int(14));
        assert_eq!(global(&i, "b"), Value::Int(20));
        assert_eq!(global(&i, "c"), Value::Float(3.5));
        assert_eq!(global(&i, "d"), Value::Int(3));
        assert_eq!(global(&i, "e"), Value::Int(1));
        assert_eq!(global(&i, "f"), Value::Int(1024));
    }

    #[test]
    fn python_mod_and_floordiv_semantics() {
        let i = run("a = -7 % 3\nb = -7 // 2\n");
        assert_eq!(global(&i, "a"), Value::Int(2));
        assert_eq!(global(&i, "b"), Value::Int(-4));
    }

    #[test]
    fn division_by_zero() {
        let mut i = Interp::new();
        let e = i.eval_module("x = 1 / 0\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::ZeroDivision);
        assert_eq!(e.innermost_line(), Some(1));
    }

    #[test]
    fn regression_floordiv_min_by_minus_one_errors_not_panics() {
        // i64::MIN // -1 used to panic inside div_euclid; it must raise the
        // same overflow error family as +/-/*.
        // The literal -9223372036854775808 cannot be lexed directly (the
        // magnitude overflows before unary minus applies), same as CPython's
        // tokenizer distinction; build MIN arithmetically.
        let mut i = Interp::new();
        let e = i
            .eval_module("m = -9223372036854775807 - 1\nx = m // -1\n")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
        assert_eq!(e.message, "integer overflow in //");
        assert_eq!(e.innermost_line(), Some(2));
        let e = i
            .eval_module("m = -9223372036854775807 - 1\nx = m % -1\n")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
        assert_eq!(e.message, "integer overflow in %");
    }

    #[test]
    fn regression_unary_neg_min_errors_not_panics() {
        let mut i = Interp::new();
        i.set_global("m", Value::Int(i64::MIN));
        let e = i.eval_module("x = -m\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
        assert_eq!(e.message, "integer overflow in unary -");
    }

    #[test]
    fn regression_array_fast_path_checks_overflow_like_scalar_path() {
        // The Int x Int array fast path used wrapping_add/sub/mul while the
        // scalar path raised "integer overflow in +": a silent divergence.
        for op in ["+", "-", "*"] {
            let mut i = Interp::new();
            let big = if op == "-" { i64::MIN } else { i64::MAX };
            i.set_global("a", Value::array(Array::Int(vec![big, 1])));
            let other = if op == "*" { 2 } else { 1 };
            i.set_global("b", Value::array(Array::Int(vec![other, 1])));
            let e = i.eval_module(&format!("c = a {op} b\n")).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Value, "op {op}");
            assert_eq!(e.message, format!("integer overflow in {op}"));
            assert_eq!(e.innermost_line(), Some(1));
        }
        // Non-overflowing arrays still take the fast path and agree.
        let mut i = Interp::new();
        i.set_global("a", Value::array(Array::Int(vec![1, 2])));
        i.set_global("b", Value::array(Array::Int(vec![3, 4])));
        i.eval_module("c = a + b\n").unwrap();
        let Value::Array(arr) = global(&i, "c") else {
            panic!("expected array")
        };
        assert_eq!(arr.as_ref(), &Array::Int(vec![4, 6]));
    }

    #[test]
    fn string_ops() {
        let i = run("a = 'foo' + 'bar'\nb = 'ab' * 3\nc = 'x' in 'xyz'\n");
        assert_eq!(global(&i, "a"), Value::str("foobar"));
        assert_eq!(global(&i, "b"), Value::str("ababab"));
        assert_eq!(global(&i, "c"), Value::Bool(true));
    }

    #[test]
    fn functions_and_returns() {
        let i = run(
            "def add(a, b=10):\n    return a + b\nx = add(1, 2)\ny = add(5)\nz = add(b=1, a=2)\n",
        );
        assert_eq!(global(&i, "x"), Value::Int(3));
        assert_eq!(global(&i, "y"), Value::Int(15));
        assert_eq!(global(&i, "z"), Value::Int(3));
    }

    #[test]
    fn recursion() {
        let i = run("def fib(n):\n    if n < 2:\n        return n\n    return fib(n-1) + fib(n-2)\nx = fib(15)\n");
        assert_eq!(global(&i, "x"), Value::Int(610));
    }

    #[test]
    fn recursion_limit() {
        let mut i = Interp::new();
        let e = i
            .eval_module("def f():\n    return f()\nf()\n")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Resource);
    }

    #[test]
    fn while_loop_with_break_continue() {
        let i = run("total = 0\ni = 0\nwhile True:\n    i += 1\n    if i > 10:\n        break\n    if i % 2 == 0:\n        continue\n    total += i\n");
        assert_eq!(global(&i, "total"), Value::Int(25));
    }

    #[test]
    fn for_over_range_and_list() {
        let i = run(
            "s = 0\nfor i in range(5):\n    s += i\nt = 0\nfor x in [10, 20, 30]:\n    t += x\n",
        );
        assert_eq!(global(&i, "s"), Value::Int(10));
        assert_eq!(global(&i, "t"), Value::Int(60));
    }

    #[test]
    fn range_three_arg_and_negative_step() {
        let i = run("a = []\nfor i in range(10, 0, -3):\n    a.append(i)\n");
        assert_eq!(
            global(&i, "a"),
            Value::list(vec![
                Value::Int(10),
                Value::Int(7),
                Value::Int(4),
                Value::Int(1)
            ])
        );
    }

    #[test]
    fn tuple_unpacking() {
        let i =
            run("a, b = 1, 2\n(c, d) = (b, a)\nfor k, v in [(1, 'x'), (2, 'y')]:\n    last = v\n");
        assert_eq!(global(&i, "c"), Value::Int(2));
        assert_eq!(global(&i, "d"), Value::Int(1));
        assert_eq!(global(&i, "last"), Value::str("y"));
    }

    #[test]
    fn list_and_dict_operations() {
        let i = run("l = [1, 2]\nl.append(3)\nl[0] = 99\nd = {'a': 1}\nd['b'] = 2\nx = d['a'] + d['b'] + l[0]\n");
        assert_eq!(global(&i, "x"), Value::Int(102));
    }

    #[test]
    fn scoping_locals_do_not_leak() {
        let mut i = Interp::new();
        i.eval_module("def f():\n    inner = 42\n    return inner\nx = f()\n")
            .unwrap();
        assert_eq!(i.get_global("x"), Some(Value::Int(42)));
        assert_eq!(i.get_global("inner"), None);
    }

    #[test]
    fn global_statement() {
        let i = run("g = 1\ndef bump():\n    global g\n    g = g + 1\nbump()\nbump()\n");
        assert_eq!(global(&i, "g"), Value::Int(3));
    }

    #[test]
    fn closures_capture_enclosing_scope() {
        let i = run("def outer():\n    x = 10\n    def inner():\n        return x + 1\n    return inner()\nr = outer()\n");
        assert_eq!(global(&i, "r"), Value::Int(11));
    }

    #[test]
    fn lambda_and_sorted_with_key() {
        let i = run("pairs = [(2, 'b'), (1, 'a'), (3, 'c')]\ns = sorted(pairs, key=lambda p: p[0])\nfirst = s[0][1]\n");
        assert_eq!(global(&i, "first"), Value::str("a"));
    }

    #[test]
    fn name_error_with_line() {
        let mut i = Interp::new();
        let e = i.eval_module("x = 1\ny = missing\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Name);
        assert_eq!(e.innermost_line(), Some(2));
    }

    #[test]
    fn traceback_spans_call_chain() {
        let mut i = Interp::new();
        let e = i
            .eval_module(
                "def inner():\n    return 1 / 0\ndef outer():\n    return inner()\nouter()\n",
            )
            .unwrap_err();
        let names: Vec<&str> = e.traceback.iter().map(|t| t.function.as_str()).collect();
        assert!(names.contains(&"inner"));
        assert!(names.contains(&"outer"));
    }

    #[test]
    fn try_except_catches_matching_class() {
        let i = run("try:\n    x = 1 / 0\nexcept ZeroDivisionError:\n    x = -1\n");
        assert_eq!(global(&i, "x"), Value::Int(-1));
    }

    #[test]
    fn try_except_skips_non_matching() {
        let mut i = Interp::new();
        let e = i
            .eval_module("try:\n    x = 1 / 0\nexcept ValueError:\n    x = -1\n")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::ZeroDivision);
    }

    #[test]
    fn finally_always_runs() {
        let i = run("log = []\ntry:\n    log.append(1)\nexcept:\n    log.append(2)\nfinally:\n    log.append(3)\n");
        assert_eq!(
            global(&i, "log"),
            Value::list(vec![Value::Int(1), Value::Int(3)])
        );
    }

    #[test]
    fn raise_and_catch_user_exception() {
        let i = run("try:\n    raise ValueError('bad input')\nexcept ValueError as msg:\n    caught = msg\n");
        assert_eq!(global(&i, "caught"), Value::str("bad input"));
    }

    #[test]
    fn assert_statement() {
        let mut i = Interp::new();
        let e = i
            .eval_module("assert 1 == 2, 'math is broken'\n")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Assertion);
        assert_eq!(e.message, "math is broken");
        assert!(i.eval_module("assert 1 == 1\n").is_ok());
    }

    #[test]
    fn list_comprehension() {
        let i = run(
            "squares = [x * x for x in range(5)]\nevens = [x for x in range(10) if x % 2 == 0]\n",
        );
        assert_eq!(
            global(&i, "squares"),
            Value::list(vec![
                Value::Int(0),
                Value::Int(1),
                Value::Int(4),
                Value::Int(9),
                Value::Int(16)
            ])
        );
        assert_eq!(i.value_len(&global(&i, "evens"), 0).unwrap(), 5);
    }

    #[test]
    fn ternary_expression() {
        let i = run("x = 'big' if 10 > 5 else 'small'\n");
        assert_eq!(global(&i, "x"), Value::str("big"));
    }

    #[test]
    fn chained_comparison_evaluates() {
        let i = run("a = 1 < 2 < 3\nb = 1 < 2 > 5\n");
        assert_eq!(global(&i, "a"), Value::Bool(true));
        assert_eq!(global(&i, "b"), Value::Bool(false));
    }

    #[test]
    fn boolop_short_circuit_returns_operand() {
        let i = run("a = 0 or 'fallback'\nb = 1 and 'taken'\nc = None and crash_if_evaluated\n");
        assert_eq!(global(&i, "a"), Value::str("fallback"));
        assert_eq!(global(&i, "b"), Value::str("taken"));
        assert_eq!(global(&i, "c"), Value::None);
    }

    #[test]
    fn slicing() {
        let i = run("l = [0, 1, 2, 3, 4, 5]\na = l[1:3]\nb = l[:2]\nc = l[3:]\nd = l[::2]\ns = 'hello'[1:4]\nn = l[-2]\n");
        assert_eq!(
            global(&i, "a"),
            Value::list(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(i.value_len(&global(&i, "b"), 0).unwrap(), 2);
        assert_eq!(i.value_len(&global(&i, "c"), 0).unwrap(), 3);
        assert_eq!(i.value_len(&global(&i, "d"), 0).unwrap(), 3);
        assert_eq!(global(&i, "s"), Value::str("ell"));
        assert_eq!(global(&i, "n"), Value::Int(4));
    }

    #[test]
    fn negative_step_slicing() {
        let i = run("l = [0, 1, 2, 3, 4]\nr = l[::-1]\ns = 'hello'[::-1]\nt = l[3:0:-1]\nu = l[::-2]\ne = l[1:3:-1]\n");
        assert_eq!(
            global(&i, "r"),
            Value::list(vec![
                Value::Int(4),
                Value::Int(3),
                Value::Int(2),
                Value::Int(1),
                Value::Int(0)
            ])
        );
        assert_eq!(global(&i, "s"), Value::str("olleh"));
        assert_eq!(
            global(&i, "t"),
            Value::list(vec![Value::Int(3), Value::Int(2), Value::Int(1)])
        );
        assert_eq!(
            global(&i, "u"),
            Value::list(vec![Value::Int(4), Value::Int(2), Value::Int(0)])
        );
        assert_eq!(global(&i, "e"), Value::list(vec![]));
    }

    #[test]
    fn slice_bounds_clamp_like_python() {
        let i =
            run("l = [0, 1, 2]\na = l[-100:100]\nb = l[5:9]\nc = l[-100::-1]\nd = l[2:-100:-1]\n");
        assert_eq!(i.value_len(&global(&i, "a"), 0).unwrap(), 3);
        assert_eq!(i.value_len(&global(&i, "b"), 0).unwrap(), 0);
        assert_eq!(i.value_len(&global(&i, "c"), 0).unwrap(), 0);
        assert_eq!(
            global(&i, "d"),
            Value::list(vec![Value::Int(2), Value::Int(1), Value::Int(0)])
        );
    }

    #[test]
    fn zero_slice_step_errors() {
        let mut i = Interp::new();
        let e = i.eval_module("x = [1, 2][::0]\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Value);
    }

    #[test]
    fn array_vectorized_arithmetic() {
        let mut i = Interp::new();
        i.set_global("col", Value::array(Array::Int(vec![1, 2, 3, 4])));
        i.eval_module(
            "doubled = col * 2\nshifted = col + 10\nmask = col > 2\nfiltered = col[mask]\n",
        )
        .unwrap();
        assert_eq!(
            global(&i, "doubled"),
            Value::array(Array::Int(vec![2, 4, 6, 8]))
        );
        assert_eq!(
            global(&i, "mask"),
            Value::array(Array::Bool(vec![false, false, true, true]))
        );
        assert_eq!(global(&i, "filtered"), Value::array(Array::Int(vec![3, 4])));
    }

    #[test]
    fn array_equality_comparison_is_elementwise() {
        let mut i = Interp::new();
        i.set_global("a", Value::array(Array::Int(vec![1, 2, 3])));
        i.set_global("b", Value::array(Array::Int(vec![1, 9, 3])));
        i.eval_module("eq = a == b\n").unwrap();
        assert_eq!(
            global(&i, "eq"),
            Value::array(Array::Bool(vec![true, false, true]))
        );
    }

    #[test]
    fn step_budget_stops_infinite_loop() {
        let mut i = Interp::new();
        i.set_step_budget(1000);
        let e = i.eval_module("while True:\n    pass\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Resource);
    }

    #[test]
    fn module_return_value_surfaces() {
        let mut i = Interp::new();
        let v = i.eval_module("x = 21\nreturn x * 2\n").unwrap();
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn semicolons_and_single_line_ifs() {
        let i = run("a = 1; b = 2\nif a < b: winner = 'b'\n");
        assert_eq!(global(&i, "winner"), Value::str("b"));
    }

    #[test]
    fn del_statement() {
        let mut i = Interp::new();
        i.eval_module("x = 1\ndel x\nl = [1, 2, 3]\ndel l[1]\nd = {'k': 1}\ndel d['k']\n")
            .unwrap();
        assert_eq!(i.get_global("x"), None);
        assert_eq!(i.value_len(&i.get_global("l").unwrap(), 0).unwrap(), 2);
        assert_eq!(i.value_len(&i.get_global("d").unwrap(), 0).unwrap(), 0);
    }

    #[test]
    fn negative_index_and_index_errors() {
        let mut i = Interp::new();
        let e = i.eval_module("l = [1]\nx = l[5]\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Index);
        let e = i.eval_module("d = {}\nx = d['missing']\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Key);
    }

    #[test]
    fn aug_assign_on_subscript() {
        let i = run("l = [1, 2]\nl[0] += 10\nd = {'k': 5}\nd['k'] *= 2\n");
        if let Value::List(l) = global(&i, "l") {
            assert_eq!(l.borrow()[0], Value::Int(11));
        } else {
            panic!("not a list");
        }
    }

    #[test]
    fn print_captures_output() {
        let mut i = Interp::new();
        i.eval_module("print('hello', 42)\nprint('next')\n")
            .unwrap();
        assert_eq!(i.stdout(), "hello 42\nnext\n");
    }

    #[test]
    fn listing4_buggy_mean_deviation_runs_and_is_wrong() {
        // Scenario A: the paper's buggy UDF (missing abs) returns ~0 on
        // symmetric data, while the correct answer is positive.
        let src = "\
def mean_deviation(column):
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation
result = mean_deviation([1, 2, 3, 4, 5])
";
        let mut i = Interp::new();
        i.eval_module(src).unwrap();
        match global(&i, "result") {
            Value::Float(f) => assert!(f.abs() < 1e-9, "buggy version sums to ~0, got {f}"),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn eval_in_frame_sees_globals() {
        let mut i = Interp::new();
        i.eval_module("x = 41\n").unwrap();
        let v = i.eval_in_frame("x + 1").unwrap();
        assert_eq!(v, Value::Int(42));
    }

    /// The line profiler's hit counts are the VM's executed-line ground
    /// truth: running the same branching body (EXPERIMENTS Scenario B)
    /// under the bytecode VM and the AST walker must report identical
    /// per-line hits, and the branch lines must match the inputs.
    #[test]
    fn line_profiler_vm_and_walker_agree_on_hits() {
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        // The profile store is process-global and the profiler switch
        // arms every concurrently running interpreter, so assert only on
        // a function name no other test defines.
        let src = "def clamp_profile_probe(column):\n    score = column * 3 + 7\n    if score > 500:\n        return 500.0\n    elif score < 50:\n        return score / 2\n    return score * 1.0\nx = clamp_profile_probe(column)\n";
        let mut per_mode = Vec::new();
        let mut ns_totals = Vec::new();
        for mode in [ExecMode::Bytecode, ExecMode::Ast] {
            obs::profile::reset();
            obs::profile::set_active(true);
            let mut interp = Interp::new();
            interp.set_exec_mode(mode);
            // One clamp-high input, one clamp-low, one fall-through.
            for column in [200i64, 10, 50] {
                interp.reset();
                interp.set_global("column", Value::Int(column));
                interp.eval_module(src).unwrap();
            }
            obs::profile::set_active(false);
            let rows: Vec<_> = obs::profile::rows()
                .into_iter()
                .filter(|r| r.func == "clamp_profile_probe")
                .collect();
            ns_totals.push(rows.iter().map(|r| r.ns).sum::<u64>());
            per_mode.push(
                rows.into_iter()
                    .map(|r| (r.func, r.line, r.hits))
                    .collect::<Vec<_>>(),
            );
        }
        obs::profile::reset();
        assert_eq!(
            per_mode[0], per_mode[1],
            "VM and walker line hits must agree"
        );
        let hits = |line: u32| {
            per_mode[0]
                .iter()
                .find(|(_, l, _)| *l == line)
                .map(|(_, _, h)| *h)
                .unwrap_or(0)
        };
        assert_eq!(hits(2), 3, "first body line runs every invocation");
        assert_eq!(hits(4), 1, "clamp-high branch taken once");
        assert_eq!(hits(6), 1, "clamp-low branch taken once");
        assert_eq!(hits(7), 1, "fall-through return taken once");
        assert!(ns_totals.iter().all(|&ns| ns > 0), "{ns_totals:?}");
    }

    #[test]
    fn profiler_attributes_module_lines_to_module_scope() {
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        obs::profile::reset();
        obs::profile::set_active(true);
        let mut interp = Interp::new();
        interp
            .eval_module("def f():\n    return 1\nx = f()\n")
            .unwrap();
        obs::profile::set_active(false);
        let rows = obs::profile::rows();
        obs::profile::reset();
        assert!(
            rows.iter().any(|r| r.func == "<module>" && r.line == 3),
            "{rows:?}"
        );
        assert!(
            rows.iter().any(|r| r.func == "f" && r.line == 2),
            "{rows:?}"
        );
    }
}
