//! Virtual filesystem used by `open()` and `os.listdir()`.
//!
//! UDF code in the paper (Listing 5) reads CSV files from a directory. The
//! interpreter never touches the host filesystem directly; it goes through a
//! [`FsProvider`] so tests and the devUDF debug sandbox control exactly what
//! the UDF sees. [`MemFs`] is the standard in-memory provider; a real-disk
//! provider can be implemented by embedders when needed.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Abstraction over the file operations the interpreter needs.
pub trait FsProvider {
    /// Read the full contents of `path`.
    fn read(&self, path: &str) -> Result<Vec<u8>, String>;
    /// Create/overwrite `path` with `data`.
    fn write(&self, path: &str, data: &[u8]) -> Result<(), String>;
    /// Names of the entries directly inside directory `path`, sorted.
    fn listdir(&self, path: &str) -> Result<Vec<String>, String>;
    /// Whether `path` exists as a file.
    fn exists(&self, path: &str) -> bool;
}

/// In-memory filesystem with `/`-separated paths.
///
/// Uses a sorted map so `listdir` output is deterministic — important for
/// reproducing Scenario B, where the *order* of files interacts with the
/// off-by-one bug.
#[derive(Default)]
pub struct MemFs {
    files: RefCell<BTreeMap<String, Vec<u8>>>,
}

impl MemFs {
    pub fn new() -> Self {
        MemFs::default()
    }

    /// Convenience constructor from (path, content) pairs.
    pub fn with_files(files: &[(&str, &str)]) -> Self {
        let fs = MemFs::new();
        for (path, content) in files {
            fs.write(path, content.as_bytes()).expect("memfs write");
        }
        fs
    }

    fn normalize(path: &str) -> String {
        let mut p = path.replace("./", "");
        while p.starts_with('/') {
            p.remove(0);
        }
        while p.ends_with('/') {
            p.pop();
        }
        if p == "." {
            p.clear();
        }
        p
    }
}

impl FsProvider for MemFs {
    fn read(&self, path: &str) -> Result<Vec<u8>, String> {
        let p = Self::normalize(path);
        self.files
            .borrow()
            .get(&p)
            .cloned()
            .ok_or_else(|| format!("no such file: '{path}'"))
    }

    fn write(&self, path: &str, data: &[u8]) -> Result<(), String> {
        let p = Self::normalize(path);
        if p.is_empty() {
            return Err("empty path".to_string());
        }
        self.files.borrow_mut().insert(p, data.to_vec());
        Ok(())
    }

    fn listdir(&self, path: &str) -> Result<Vec<String>, String> {
        let p = Self::normalize(path);
        let prefix = if p.is_empty() {
            String::new()
        } else {
            format!("{p}/")
        };
        let files = self.files.borrow();
        let mut out = Vec::new();
        let mut found_prefix = p.is_empty();
        for name in files.keys() {
            if let Some(rest) = name.strip_prefix(&prefix) {
                found_prefix = true;
                // Only direct children; for nested paths report the first
                // path segment (a "subdirectory").
                let first = rest.split('/').next().unwrap().to_string();
                if !out.contains(&first) {
                    out.push(first);
                }
            }
        }
        if !found_prefix && !files.keys().any(|k| k.starts_with(&prefix)) && !p.is_empty() {
            return Err(format!("no such directory: '{path}'"));
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &str) -> bool {
        self.files.borrow().contains_key(&Self::normalize(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let fs = MemFs::new();
        fs.write("dir/a.csv", b"1\n2\n").unwrap();
        assert_eq!(fs.read("dir/a.csv").unwrap(), b"1\n2\n");
        assert_eq!(fs.read("./dir/a.csv").unwrap(), b"1\n2\n");
        assert!(fs.exists("dir/a.csv"));
        assert!(!fs.exists("dir/b.csv"));
    }

    #[test]
    fn missing_file_errors() {
        let fs = MemFs::new();
        assert!(fs.read("nope.txt").is_err());
    }

    #[test]
    fn listdir_is_sorted_and_direct_children_only() {
        let fs = MemFs::with_files(&[
            ("data/b.csv", "2"),
            ("data/a.csv", "1"),
            ("data/sub/c.csv", "3"),
            ("other/x.csv", "9"),
        ]);
        assert_eq!(
            fs.listdir("data").unwrap(),
            vec!["a.csv".to_string(), "b.csv".to_string(), "sub".to_string()]
        );
    }

    #[test]
    fn listdir_missing_directory_errors() {
        let fs = MemFs::new();
        assert!(fs.listdir("ghost").is_err());
    }

    #[test]
    fn listdir_root() {
        let fs = MemFs::with_files(&[("a.txt", "x"), ("b.txt", "y")]);
        assert_eq!(fs.listdir("").unwrap(), vec!["a.txt", "b.txt"]);
        assert_eq!(fs.listdir(".").unwrap(), vec!["a.txt", "b.txt"]);
    }

    #[test]
    fn overwrite_replaces_content() {
        let fs = MemFs::new();
        fs.write("f", b"one").unwrap();
        fs.write("f", b"two").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"two");
    }
}
