//! `pylite` — a Python-subset interpreter with an interactive debugger.
//!
//! This crate stands in for CPython (plus `pdb`) in the devUDF reproduction.
//! MonetDB/Python UDFs are written in Python; the devUDF plugin's headline
//! feature is *interactive, line-level debugging* of those UDFs on the
//! developer's machine. `pylite` therefore implements:
//!
//! * an indentation-sensitive lexer, a recursive-descent parser and *two*
//!   execution engines for a practical Python subset — a bytecode VM
//!   ([`compile`] + [`vm`], the default) and a tree-walking reference
//!   interpreter kept as a differential-testing oracle, selected by
//!   [`ExecMode`] — every listing in the paper (Listings 1–5) runs
//!   unmodified on both,
//! * numpy-style **vectorized arrays** ([`value::Array`]) so UDFs receive
//!   whole columns, matching MonetDB's operator-at-a-time model,
//! * a **debugger** ([`debugger`]) with breakpoints, step-into/over/out,
//!   call-stack and variable inspection, driven through a trace-hook so an
//!   embedder (the IDE facade) can pause/resume execution interactively,
//! * **pickle** ([`pickle`]) — the binary value serialization used for the
//!   `input.bin` transfer file of paper Listing 2,
//! * a **virtual filesystem** ([`fs`]) so the paper's CSV-loading demo
//!   (Listing 5) is reproducible and sandboxed,
//! * native modules ([`native`]): `os`, `numpy`, `pickle`, `math`, `random`
//!   and `sklearn.ensemble` with a real miniature random-forest classifier
//!   (paper Listings 1 and 3).
//!
//! # Quick example
//!
//! ```
//! use pylite::{Interp, Value};
//!
//! let mut interp = Interp::new();
//! interp
//!     .eval_module("def double(x):\n    return x * 2\nresult = double(21)\n")
//!     .unwrap();
//! assert_eq!(interp.get_global("result").unwrap(), Value::Int(42));
//! ```

pub mod ast;
pub mod builtins;
pub mod compile;
pub mod debugger;
pub mod error;
pub mod fs;
pub mod interp;
pub mod lexer;
pub mod methods;
pub mod native;
pub mod parser;
pub mod pickle;
pub mod value;
pub mod vm;

pub use compile::{compile_module, CodeObject};
pub use debugger::{DebugCommand, Debugger, LineTracer, PauseInfo};
pub use error::{ErrorKind, PyError, TraceEntry};
pub use fs::{FsProvider, MemFs};
pub use interp::{ExecMode, Interp};
pub use parser::parse_module;
pub use value::{Array, Value};
