//! Binary serialization of interpreter values — the `pickle` stand-in.
//!
//! The devUDF plugin ships UDF input data to the developer's machine as a
//! binary blob and the transformed code loads it with
//! `pickle.load(open('./input.bin','rb'))` (paper Listing 2). This module is
//! that format: a tagged, varint-framed encoding of every picklable
//! [`Value`], including native objects that opt in via
//! [`crate::value::NativeObject::pickle`].

use std::rc::Rc;

use codecs::varint::{read_u64, write_u64};

use crate::error::{ErrorKind, PyError};
use crate::native;
use crate::value::{Array, Dict, Value};

const TAG_NONE: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_TUPLE: u8 = 8;
const TAG_DICT: u8 = 9;
const TAG_ARRAY_INT: u8 = 10;
const TAG_ARRAY_FLOAT: u8 = 11;
const TAG_ARRAY_BOOL: u8 = 12;
const TAG_ARRAY_STR: u8 = 13;
const TAG_NATIVE: u8 = 14;

/// Magic prefix identifying a pickle stream (and its version).
const MAGIC: &[u8; 4] = b"PKL1";

fn perr(msg: impl Into<String>) -> PyError {
    PyError::new(ErrorKind::Value, msg)
}

/// Serialize a value to bytes. Errors on unpicklable values (functions,
/// modules, open files…).
pub fn dumps(value: &Value) -> Result<Vec<u8>, PyError> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(MAGIC);
    write_value(&mut out, value)?;
    Ok(out)
}

/// Deserialize bytes produced by [`dumps`].
pub fn loads(data: &[u8]) -> Result<Value, PyError> {
    if data.len() < 4 || &data[..4] != MAGIC {
        return Err(perr("not a pickle stream (bad magic)"));
    }
    let mut cursor = 4usize;
    let v = read_value(data, &mut cursor)?;
    if cursor != data.len() {
        return Err(perr(format!(
            "trailing garbage after pickle payload ({} bytes)",
            data.len() - cursor
        )));
    }
    Ok(v)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_value(out: &mut Vec<u8>, value: &Value) -> Result<(), PyError> {
    match value {
        Value::None => out.push(TAG_NONE),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            write_u64(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            write_u64(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::List(l) => {
            out.push(TAG_LIST);
            let items = l.borrow();
            write_u64(out, items.len() as u64);
            for item in items.iter() {
                write_value(out, item)?;
            }
        }
        Value::Tuple(t) => {
            out.push(TAG_TUPLE);
            write_u64(out, t.len() as u64);
            for item in t.iter() {
                write_value(out, item)?;
            }
        }
        Value::Dict(d) => {
            out.push(TAG_DICT);
            let d = d.borrow();
            write_u64(out, d.len() as u64);
            for (k, v) in d.entries() {
                write_value(out, k)?;
                write_value(out, v)?;
            }
        }
        Value::Array(a) => match a.as_ref() {
            Array::Int(v) => {
                out.push(TAG_ARRAY_INT);
                write_u64(out, v.len() as u64);
                for x in v {
                    write_u64(out, zigzag(*x));
                }
            }
            Array::Float(v) => {
                out.push(TAG_ARRAY_FLOAT);
                write_u64(out, v.len() as u64);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Array::Bool(v) => {
                out.push(TAG_ARRAY_BOOL);
                write_u64(out, v.len() as u64);
                // Bit-packed.
                let mut byte = 0u8;
                for (i, b) in v.iter().enumerate() {
                    if *b {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        out.push(byte);
                        byte = 0;
                    }
                }
                if v.len() % 8 != 0 {
                    out.push(byte);
                }
            }
            Array::Str(v) => {
                out.push(TAG_ARRAY_STR);
                write_u64(out, v.len() as u64);
                for s in v {
                    write_u64(out, s.len() as u64);
                    out.extend_from_slice(s.as_bytes());
                }
            }
        },
        Value::Native(n) => {
            let Some((type_name, payload)) = n.pickle() else {
                return Err(perr(format!("cannot pickle '{}' object", n.type_name())));
            };
            out.push(TAG_NATIVE);
            write_u64(out, type_name.len() as u64);
            out.extend_from_slice(type_name.as_bytes());
            write_u64(out, payload.len() as u64);
            out.extend_from_slice(&payload);
        }
        Value::Range { .. } | Value::Function(_) | Value::Builtin(_) | Value::Module(_) => {
            return Err(perr(format!(
                "cannot pickle '{}' object",
                value.type_name()
            )))
        }
    }
    Ok(())
}

fn take<'a>(data: &'a [u8], cursor: &mut usize, n: usize) -> Result<&'a [u8], PyError> {
    if *cursor + n > data.len() {
        return Err(perr("truncated pickle stream"));
    }
    let s = &data[*cursor..*cursor + n];
    *cursor += n;
    Ok(s)
}

fn read_varint(data: &[u8], cursor: &mut usize) -> Result<u64, PyError> {
    let (v, used) =
        read_u64(&data[*cursor..]).map_err(|e| perr(format!("bad varint in pickle: {e}")))?;
    *cursor += used;
    Ok(v)
}

fn read_len(data: &[u8], cursor: &mut usize) -> Result<usize, PyError> {
    let v = read_varint(data, cursor)?;
    usize::try_from(v).map_err(|_| perr("pickle length overflows usize"))
}

fn read_value(data: &[u8], cursor: &mut usize) -> Result<Value, PyError> {
    let tag = *take(data, cursor, 1)?.first().expect("take(1)");
    Ok(match tag {
        TAG_NONE => Value::None,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(unzigzag(read_varint(data, cursor)?)),
        TAG_FLOAT => {
            let bytes = take(data, cursor, 8)?;
            Value::Float(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
        }
        TAG_STR => {
            let n = read_len(data, cursor)?;
            let bytes = take(data, cursor, n)?;
            Value::str(
                std::str::from_utf8(bytes).map_err(|_| perr("invalid UTF-8 in pickled string"))?,
            )
        }
        TAG_BYTES => {
            let n = read_len(data, cursor)?;
            Value::bytes(take(data, cursor, n)?.to_vec())
        }
        TAG_LIST => {
            let n = read_len(data, cursor)?;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(read_value(data, cursor)?);
            }
            Value::list(items)
        }
        TAG_TUPLE => {
            let n = read_len(data, cursor)?;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(read_value(data, cursor)?);
            }
            Value::tuple(items)
        }
        TAG_DICT => {
            let n = read_len(data, cursor)?;
            let mut d = Dict::new();
            for _ in 0..n {
                let k = read_value(data, cursor)?;
                let v = read_value(data, cursor)?;
                d.insert(k, v)?;
            }
            Value::dict(d)
        }
        TAG_ARRAY_INT => {
            let n = read_len(data, cursor)?;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(unzigzag(read_varint(data, cursor)?));
            }
            Value::array(Array::Int(v))
        }
        TAG_ARRAY_FLOAT => {
            let n = read_len(data, cursor)?;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let bytes = take(data, cursor, 8)?;
                v.push(f64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            }
            Value::array(Array::Float(v))
        }
        TAG_ARRAY_BOOL => {
            let n = read_len(data, cursor)?;
            let nbytes = n.div_ceil(8);
            let bytes = take(data, cursor, nbytes)?;
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                v.push(bytes[i / 8] & (1 << (i % 8)) != 0);
            }
            Value::array(Array::Bool(v))
        }
        TAG_ARRAY_STR => {
            let n = read_len(data, cursor)?;
            let mut v = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let len = read_len(data, cursor)?;
                let bytes = take(data, cursor, len)?;
                v.push(
                    std::str::from_utf8(bytes)
                        .map_err(|_| perr("invalid UTF-8 in pickled string array"))?
                        .to_string(),
                );
            }
            Value::array(Array::Str(v))
        }
        TAG_NATIVE => {
            let name_len = read_len(data, cursor)?;
            let name_bytes = take(data, cursor, name_len)?;
            let type_name = std::str::from_utf8(name_bytes)
                .map_err(|_| perr("invalid UTF-8 in native type name"))?
                .to_string();
            let payload_len = read_len(data, cursor)?;
            let payload = take(data, cursor, payload_len)?.to_vec();
            native::unpickle_native(&type_name, &payload)?
        }
        other => return Err(perr(format!("unknown pickle tag {other}"))),
    })
}

/// `Rc<str>` convenience used by callers round-tripping names.
pub fn dumps_str(s: &str) -> Vec<u8> {
    dumps(&Value::Str(Rc::from(s))).expect("strings always pickle")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        loads(&dumps(v).unwrap()).unwrap()
    }

    #[test]
    fn scalars() {
        for v in [
            Value::None,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::str(""),
            Value::str("héllo"),
            Value::bytes(vec![0, 255, 3]),
        ] {
            assert!(round_trip(&v).py_eq(&v), "{v:?}");
        }
    }

    #[test]
    fn nan_round_trips() {
        let v = round_trip(&Value::Float(f64::NAN));
        match v {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn containers() {
        let mut d = Dict::new();
        d.insert(Value::str("clf"), Value::bytes(vec![1, 2, 3]))
            .unwrap();
        d.insert(Value::str("estimators"), Value::Int(10)).unwrap();
        let v = Value::list(vec![
            Value::Int(1),
            Value::tuple(vec![Value::str("a"), Value::Float(2.5)]),
            Value::dict(d),
            Value::list(vec![]),
        ]);
        assert!(round_trip(&v).py_eq(&v));
    }

    #[test]
    fn arrays() {
        for a in [
            Array::Int(vec![1, -2, 3]),
            Array::Float(vec![0.5, -1.5]),
            Array::Bool(vec![
                true, false, true, true, false, false, true, true, true,
            ]),
            Array::Str(vec!["x".into(), "".into(), "yz".into()]),
            Array::Int(vec![]),
        ] {
            let v = Value::array(a);
            assert!(round_trip(&v).py_eq(&v), "{v:?}");
        }
    }

    #[test]
    fn dict_preserves_insertion_order() {
        let mut d = Dict::new();
        for key in ["z", "a", "m"] {
            d.insert(Value::str(key), Value::Int(1)).unwrap();
        }
        let v = round_trip(&Value::dict(d));
        let Value::Dict(d2) = v else { panic!() };
        let keys: Vec<String> = d2.borrow().keys().iter().map(|k| k.py_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn unpicklable_values_error() {
        let mut interp = crate::interp::Interp::new();
        interp.eval_module("def f():\n    pass\n").unwrap();
        let f = interp.get_global("f").unwrap();
        assert!(dumps(&f).is_err());
        assert!(dumps(&Value::Range {
            start: 0,
            stop: 3,
            step: 1
        })
        .is_err());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(loads(b"").is_err());
        assert!(loads(b"NOPE").is_err());
        let mut good = dumps(&Value::str("hello")).unwrap();
        good.truncate(good.len() - 2);
        assert!(loads(&good).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut good = dumps(&Value::Int(1)).unwrap();
        good.push(0);
        assert!(loads(&good).is_err());
    }

    #[test]
    fn interpreted_code_can_pickle_and_unpickle() {
        let mut interp = crate::interp::Interp::new();
        interp
            .eval_module(
                "import pickle\nblob = pickle.dumps({'a': [1, 2], 'b': 'text'})\nback = pickle.loads(blob)\nok = back['a'][1] == 2 and back['b'] == 'text'\n",
            )
            .unwrap();
        assert_eq!(interp.get_global("ok"), Some(Value::Bool(true)));
    }
}
