//! A miniature property-testing harness (proptest/QuickCheck style).
//!
//! Three pieces:
//!
//! * [`Strategy`] — a composable generator of random values. Base
//!   strategies cover integers, floats, bools, bytes, vectors, strings
//!   over an explicit charset, options, fixed-size byte arrays and
//!   tuples; combinators: [`Strategy::map`], [`Strategy::filter`],
//!   [`one_of`], [`just`], [`from_fn`].
//! * [`Shrinkable`] — a generated value together with a **lazy shrink
//!   tree**: a closure producing simpler candidate values, each again
//!   shrinkable. Because the tree is carried with the value, shrinking
//!   composes through `map`/`filter`/vectors/tuples for free
//!   (hedgehog-style "integrated shrinking").
//! * [`check`] — the runner: generates `Config::cases` inputs, applies
//!   the property, and on failure greedily walks the shrink tree to a
//!   (near-)minimal counterexample, then panics with the shrunk input,
//!   the original input, and the seed needed to replay the run.
//!
//! Properties return `Result<(), String>`; the [`prop_assert!`](crate::prop_assert),
//! [`prop_assert_eq!`](crate::prop_assert_eq) and
//! [`prop_assert_ne!`](crate::prop_assert_ne) macros early-return an
//! `Err` so the runner can shrink (a plain `assert!` would abort the
//! process before shrinking).
//!
//! ```
//! use devharness::prop::{self, Config};
//! use devharness::{prop_assert, prop_assert_eq};
//!
//! // "reversing twice is the identity"
//! prop::check(Config::cases(64), prop::vec_of(prop::any_u8(), 0..100), |v| {
//!     let twice: Vec<u8> = v.iter().rev().rev().copied().collect();
//!     prop_assert_eq!(&twice, v);
//!     Ok(())
//! });
//! ```

use std::fmt::Debug;
use std::rc::Rc;

use crate::rng::{splitmix64, Rng};

// ---------------------------------------------------------------------------
// Shrinkable values (lazy shrink trees)
// ---------------------------------------------------------------------------

/// A generated value plus a lazy producer of simpler candidates.
pub struct Shrinkable<T> {
    /// The generated value.
    pub value: T,
    shrinks: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T> Clone for Shrinkable<T>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            shrinks: Rc::clone(&self.shrinks),
        }
    }
}

impl<T: Clone + 'static> Shrinkable<T> {
    /// A value with no simpler forms.
    pub fn leaf(value: T) -> Shrinkable<T> {
        Shrinkable {
            value,
            shrinks: Rc::new(Vec::new),
        }
    }

    /// A value with a lazy shrink closure.
    pub fn new(value: T, shrinks: impl Fn() -> Vec<Shrinkable<T>> + 'static) -> Shrinkable<T> {
        Shrinkable {
            value,
            shrinks: Rc::new(shrinks),
        }
    }

    /// Candidate simplifications, simplest first.
    pub fn shrink(&self) -> Vec<Shrinkable<T>> {
        (self.shrinks)()
    }

    /// Map the value (and, lazily, every shrink candidate).
    pub fn map_rc<U: Clone + 'static>(self, f: Rc<dyn Fn(&T) -> U>) -> Shrinkable<U> {
        let value = f(&self.value);
        let shrinks = Rc::clone(&self.shrinks);
        Shrinkable::new(value, move || {
            let f = Rc::clone(&f);
            shrinks()
                .into_iter()
                .map(|s| s.map_rc(Rc::clone(&f)))
                .collect()
        })
    }

    /// Keep only shrink candidates satisfying `pred` (the value itself is
    /// assumed to satisfy it already).
    pub fn retain(self, pred: Rc<dyn Fn(&T) -> bool>) -> Shrinkable<T> {
        let value = self.value;
        let shrinks = Rc::clone(&self.shrinks);
        Shrinkable::new(value, move || {
            let pred = Rc::clone(&pred);
            shrinks()
                .into_iter()
                .filter(|s| pred(&s.value))
                .map(|s| s.retain(Rc::clone(&pred)))
                .collect()
        })
    }
}

/// Join two shrinkables into a shrinkable pair (components shrink
/// independently, left first).
pub fn join2<A, B>(a: Shrinkable<A>, b: Shrinkable<B>) -> Shrinkable<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    let value = (a.value.clone(), b.value.clone());
    Shrinkable::new(value, move || {
        let mut out: Vec<Shrinkable<(A, B)>> = a
            .shrink()
            .into_iter()
            .map(|sa| join2(sa, b.clone()))
            .collect();
        out.extend(b.shrink().into_iter().map(|sb| join2(a.clone(), sb)));
        out
    })
}

/// Build a shrinkable vector from shrinkable elements: candidates first
/// drop chunks of elements (largest chunks first), then shrink individual
/// elements in place. `min_len` is respected by removals.
pub fn join_vec<T>(elems: Vec<Shrinkable<T>>, min_len: usize) -> Shrinkable<Vec<T>>
where
    T: Clone + 'static,
{
    let value: Vec<T> = elems.iter().map(|e| e.value.clone()).collect();
    Shrinkable::new(value, move || {
        let n = elems.len();
        let mut out = Vec::new();
        // Chunk removals: n/2, n/4, ..., 1 elements at a time.
        let mut chunk = n / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= n {
                if n - chunk >= min_len {
                    let mut kept = Vec::with_capacity(n - chunk);
                    kept.extend_from_slice(&elems[..start]);
                    kept.extend_from_slice(&elems[start + chunk..]);
                    out.push(join_vec(kept, min_len));
                }
                start += chunk;
            }
            chunk /= 2;
        }
        // Per-element shrinks.
        for (i, e) in elems.iter().enumerate() {
            for cand in e.shrink() {
                let mut next = elems.clone();
                next[i] = cand;
                out.push(join_vec(next, min_len));
            }
        }
        out
    })
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A composable random-value generator with integrated shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug + 'static;

    /// Generate one value plus its shrink tree.
    fn generate(&self, rng: &mut Rng) -> Shrinkable<Self::Value>;

    /// Transform generated values (shrinking passes through).
    fn map<U, F>(self, f: F) -> Map<Self, U>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(&Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Keep only values satisfying `pred`; regenerates on rejection
    /// (up to an internal retry cap — keep predicates cheap and likely).
    fn filter<F>(self, label: &'static str, pred: F) -> Filter<Self>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            label,
            pred: Rc::new(pred),
        }
    }

    /// Type-erase for storage in collections ([`one_of`]) or recursion.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Shared boxed mapping function: used by both a strategy and every node
/// of the shrink trees it produces.
type MapFn<T, U> = Rc<dyn Fn(&T) -> U>;

/// See [`Strategy::map`].
pub struct Map<S: Strategy, U> {
    inner: S,
    f: MapFn<S::Value, U>,
}
impl<S, U> Strategy for Map<S, U>
where
    S: Strategy,
    U: Clone + Debug + 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<U> {
        self.inner.generate(rng).map_rc(Rc::clone(&self.f))
    }
}

/// See [`Strategy::filter`].
pub struct Filter<S: Strategy> {
    inner: S,
    label: &'static str,
    pred: MapFn<S::Value, bool>,
}
impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<S::Value> {
        for _ in 0..100 {
            let s = self.inner.generate(rng);
            if (self.pred)(&s.value) {
                return s.retain(Rc::clone(&self.pred));
            }
        }
        panic!(
            "filter '{}' rejected 100 generated values in a row",
            self.label
        );
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);
impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}
impl<T: Clone + Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<T> {
        self.0.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Base strategies
// ---------------------------------------------------------------------------

/// Always the same value; never shrinks.
pub fn just<T: Clone + Debug + 'static>(value: T) -> Just<T> {
    Just(value)
}
/// See [`just`].
#[derive(Clone)]
pub struct Just<T>(T);
impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> Shrinkable<T> {
        Shrinkable::leaf(self.0.clone())
    }
}

/// Escape hatch: generate with an arbitrary closure. **No shrinking** —
/// use for recursive/structured values where a failing case is already
/// readable (e.g. interpreter `Value` trees).
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + Debug + 'static,
    F: Fn(&mut Rng) -> T,
{
    FromFn(f)
}
/// See [`from_fn`].
pub struct FromFn<F>(F);
impl<T, F> Strategy for FromFn<F>
where
    T: Clone + Debug + 'static,
    F: Fn(&mut Rng) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<T> {
        Shrinkable::leaf((self.0)(rng))
    }
}

/// Uniform choice between several strategies of the same value type
/// (the `prop_oneof!` equivalent).
pub fn one_of<T: Clone + Debug + 'static>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of needs at least one choice");
    OneOf(choices)
}
/// See [`one_of`].
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);
impl<T: Clone + Debug + 'static> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<T> {
        let idx = rng.usize_below(self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Bisection-style integer shrink candidates: the origin first, then
/// values converging from the origin toward `v`.
fn int_shrink_candidates(v: i128, origin: i128) -> Vec<i128> {
    if v == origin {
        return Vec::new();
    }
    let mut out = vec![origin];
    let mut c = v - (v - origin) / 2;
    while c != v && !out.contains(&c) {
        out.push(c);
        c = v - (v - c) / 2;
    }
    // Small steps last, so bisection is tried first but the boundary is
    // always reachable (also lets parity-style filters keep shrinking).
    let step = if v > origin { 1 } else { -1 };
    for d in [2, 1] {
        let cand = v - d * step;
        let within = if v > origin {
            cand >= origin
        } else {
            cand <= origin
        };
        if within && !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

fn shrinkable_int(v: i128, origin: i128) -> Shrinkable<i128> {
    Shrinkable::new(v, move || {
        int_shrink_candidates(v, origin)
            .into_iter()
            .map(|c| shrinkable_int(c, origin))
            .collect()
    })
}

macro_rules! int_strategy {
    ($fn_name:ident, $any_name:ident, $ty:ty, $strat:ident) => {
        /// Uniform value in the half-open range, occasionally biased to the
        /// endpoints; shrinks toward 0 (clamped into the range).
        pub fn $fn_name(range: std::ops::Range<$ty>) -> $strat {
            assert!(range.start < range.end, "empty range");
            $strat(range)
        }

        /// The type's full range.
        pub fn $any_name() -> $strat {
            $strat(<$ty>::MIN..<$ty>::MAX)
        }

        /// Integer range strategy; see the constructor of the same
        /// (lower-case) name.
        #[derive(Clone)]
        pub struct $strat(std::ops::Range<$ty>);

        impl Strategy for $strat {
            type Value = $ty;
            fn generate(&self, rng: &mut Rng) -> Shrinkable<$ty> {
                let (low, high) = (self.0.start as i128, self.0.end as i128);
                // 1-in-8 bias toward the boundaries to exercise edge cases.
                let v: i128 = match rng.u64_below(8) {
                    0 => {
                        if rng.bool() {
                            low
                        } else {
                            high - 1
                        }
                    }
                    _ => {
                        let span = (high - low) as u128;
                        if span > u64::MAX as u128 {
                            // Full 64-bit span: a raw draw is uniform.
                            low + rng.next_u64() as i128
                        } else {
                            low + rng.u64_below(span as u64) as i128
                        }
                    }
                };
                let origin = 0i128.clamp(low, high - 1);
                shrinkable_int(v, origin).map_rc(Rc::new(|x: &i128| *x as $ty))
            }
        }
    };
}

int_strategy!(i64_in, any_i64, i64, I64Range);
int_strategy!(u64_in, any_u64, u64, U64Range);
int_strategy!(usize_in, any_usize, usize, UsizeRange);
int_strategy!(u8_in, any_u8_range, u8, U8Range);

/// Any byte (0..=255 inclusive), shrinking toward 0.
pub fn any_u8() -> Map<U64Range, u8> {
    u64_in(0..256).map(|v: &u64| *v as u8)
}

/// Uniform boolean; `true` shrinks to `false`.
pub fn any_bool() -> Bools {
    Bools
}
/// See [`any_bool`].
#[derive(Clone)]
pub struct Bools;
impl Strategy for Bools {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<bool> {
        let v = rng.bool();
        Shrinkable::new(v, move || {
            if v {
                vec![Shrinkable::leaf(false)]
            } else {
                vec![]
            }
        })
    }
}

/// Any `f64` bit pattern — including ±inf and NaN (filter NaN out where it
/// breaks equality). Shrinks toward 0.0 through halving and truncation.
pub fn any_f64() -> F64s {
    F64s
}
/// See [`any_f64`].
#[derive(Clone)]
pub struct F64s;
fn shrinkable_f64(v: f64) -> Shrinkable<f64> {
    Shrinkable::new(v, move || {
        if v == 0.0 || v.is_nan() {
            return vec![];
        }
        let mut cands = vec![0.0];
        if v.is_finite() {
            if v.trunc() != v {
                cands.push(v.trunc());
            }
            cands.push(v / 2.0);
        } else {
            cands.push(if v > 0.0 { f64::MAX } else { f64::MIN });
        }
        cands.retain(|c| *c != v);
        cands.into_iter().map(shrinkable_f64).collect()
    })
}
impl Strategy for F64s {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<f64> {
        // 1-in-8: special values; otherwise an arbitrary bit pattern.
        let v = match rng.u64_below(8) {
            0 => *rng
                .choose(&[
                    0.0,
                    -0.0,
                    1.0,
                    -1.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                ])
                .unwrap(),
            _ => f64::from_bits(rng.next_u64()),
        };
        shrinkable_f64(v)
    }
}

/// Vector of `elem` values with a length drawn from `len_range`.
pub fn vec_of<S: Strategy>(elem: S, len_range: std::ops::Range<usize>) -> VecOf<S> {
    assert!(len_range.start < len_range.end, "empty length range");
    VecOf { elem, len_range }
}
/// See [`vec_of`].
pub struct VecOf<S> {
    elem: S,
    len_range: std::ops::Range<usize>,
}
impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<Vec<S::Value>> {
        let len = rng.usize_in(self.len_range.start, self.len_range.end);
        let elems: Vec<Shrinkable<S::Value>> = (0..len).map(|_| self.elem.generate(rng)).collect();
        join_vec(elems, self.len_range.start)
    }
}

/// String of `len_range` chars drawn uniformly from `charset`
/// (the harness's replacement for proptest's regex patterns — spell the
/// character class out explicitly).
pub fn string_of(
    charset: &str,
    len_range: std::ops::Range<usize>,
) -> Map<VecOf<CharsetChar>, String> {
    let chars: Rc<[char]> = charset.chars().collect::<Vec<_>>().into();
    assert!(!chars.is_empty(), "empty charset");
    vec_of(CharsetChar(chars), len_range).map(|v: &Vec<char>| v.iter().collect::<String>())
}
/// One char from a fixed charset; shrinks toward the charset's first char.
#[derive(Clone)]
pub struct CharsetChar(Rc<[char]>);
impl Strategy for CharsetChar {
    type Value = char;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<char> {
        let idx = rng.usize_below(self.0.len());
        let chars = Rc::clone(&self.0);
        shrinkable_int(idx as i128, 0).map_rc(Rc::new(move |i: &i128| chars[*i as usize]))
    }
}

/// `None` or `Some(inner)` (3:1 in favour of `Some`); `Some` shrinks to
/// `None` first, then inside the payload.
pub fn option_of<S: Strategy>(inner: S) -> OptionOf<S> {
    OptionOf(inner)
}
/// See [`option_of`].
pub struct OptionOf<S>(S);
impl<S: Strategy> Strategy for OptionOf<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Shrinkable<Option<S::Value>> {
        if rng.u64_below(4) == 0 {
            Shrinkable::leaf(None)
        } else {
            let s = self.0.generate(rng);
            fn wrap<T: Clone + 'static>(s: Shrinkable<T>) -> Shrinkable<Option<T>> {
                let value = Some(s.value.clone());
                Shrinkable::new(value, move || {
                    let mut out = vec![Shrinkable::leaf(None)];
                    out.extend(s.shrink().into_iter().map(wrap));
                    out
                })
            }
            wrap(s)
        }
    }
}

/// Fixed-size byte array (e.g. cipher keys/nonces). Shrinks to all-zeros.
pub fn u8_array<const N: usize>() -> U8Array<N> {
    U8Array
}
/// See [`u8_array`].
#[derive(Clone)]
pub struct U8Array<const N: usize>;
impl<const N: usize> Strategy for U8Array<N> {
    type Value = [u8; N];
    fn generate(&self, rng: &mut Rng) -> Shrinkable<[u8; N]> {
        let mut buf = [0u8; N];
        rng.fill_bytes(&mut buf);
        Shrinkable::new(buf, move || {
            if buf == [0u8; N] {
                vec![]
            } else {
                vec![Shrinkable::leaf([0u8; N])]
            }
        })
    }
}

// Tuple strategies are written per arity (the workspace needs 2–5):
// nested `join2` pairs flattened with a shrink-preserving map.

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut Rng) -> Shrinkable<Self::Value> {
        join2(self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut Rng) -> Shrinkable<Self::Value> {
        let nested = join2(
            self.0.generate(rng),
            join2(self.1.generate(rng), self.2.generate(rng)),
        );
        nested.map_rc(Rc::new(|(a, (b, c)): &(A::Value, (B::Value, C::Value))| {
            (a.clone(), b.clone(), c.clone())
        }))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut Rng) -> Shrinkable<Self::Value> {
        let nested = join2(
            join2(self.0.generate(rng), self.1.generate(rng)),
            join2(self.2.generate(rng), self.3.generate(rng)),
        );
        type Nested<A, B, C, D> = ((A, B), (C, D));
        nested.map_rc(Rc::new(
            |((a, b), (c, d)): &Nested<A::Value, B::Value, C::Value, D::Value>| {
                (a.clone(), b.clone(), c.clone(), d.clone())
            },
        ))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut Rng) -> Shrinkable<Self::Value> {
        let nested = join2(
            join2(self.0.generate(rng), self.1.generate(rng)),
            join2(
                self.2.generate(rng),
                join2(self.3.generate(rng), self.4.generate(rng)),
            ),
        );
        #[allow(clippy::type_complexity)]
        let flatten: Rc<
            dyn Fn(
                &((A::Value, B::Value), (C::Value, (D::Value, E::Value))),
            ) -> (A::Value, B::Value, C::Value, D::Value, E::Value),
        > = Rc::new(|((a, b), (c, (d, e)))| {
            (a.clone(), b.clone(), c.clone(), d.clone(), e.clone())
        });
        nested.map_rc(flatten)
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; each case derives its own sub-seed from it. Overridable
    /// via the `DEVHARNESS_SEED` env var for replaying failures.
    pub seed: u64,
    /// Cap on property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("DEVHARNESS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xdeed_5eed_0000_0001);
        Config {
            cases: 64,
            seed,
            max_shrink_iters: 1024,
        }
    }
}

impl Config {
    /// Default config with an explicit case count
    /// (the `ProptestConfig::with_cases` equivalent).
    pub fn cases(n: u32) -> Config {
        Config {
            cases: n,
            ..Config::default()
        }
    }
}

/// Run `prop` against `cases` generated inputs; on failure, shrink greedily
/// and panic with the minimal counterexample and reproduction seed.
pub fn check<S, P>(config: Config, strategy: S, prop: P)
where
    S: Strategy,
    P: Fn(&S::Value) -> Result<(), String>,
{
    for case in 0..config.cases {
        let case_seed = {
            let mut t = config
                .seed
                .wrapping_add((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            splitmix64(&mut t)
        };
        let mut rng = Rng::new(case_seed);
        let generated = strategy.generate(&mut rng);
        if let Err(original_err) = prop(&generated.value) {
            let original = format!("{:?}", generated.value);
            let (minimal, min_err, steps) =
                shrink_failure(generated, &prop, original_err, config.max_shrink_iters);
            panic!(
                "property failed (case {case}/{}, seed {:#x}, case-seed {case_seed:#x})\n\
                 minimal input (after {steps} shrink steps): {minimal:?}\n\
                 error: {min_err}\n\
                 original input: {original}\n\
                 replay with: DEVHARNESS_SEED={} cargo test",
                config.cases, config.seed, config.seed,
            );
        }
    }
}

/// Greedy descent through the shrink tree: repeatedly move to the first
/// child that still fails, until no child fails or the budget runs out.
fn shrink_failure<T, P>(
    failing: Shrinkable<T>,
    prop: &P,
    first_err: String,
    budget: u32,
) -> (T, String, u32)
where
    T: Clone + Debug + 'static,
    P: Fn(&T) -> Result<(), String>,
{
    let mut current = failing;
    let mut err = first_err;
    let mut spent = 0u32;
    let mut steps = 0u32;
    'outer: loop {
        for cand in current.shrink() {
            if spent >= budget {
                break 'outer;
            }
            spent += 1;
            if let Err(e) = prop(&cand.value) {
                current = cand;
                err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current.value, err, steps)
}

/// `assert!` that returns an `Err` (so the runner can shrink) instead of
/// panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that returns an `Err` instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

/// `assert_ne!` that returns an `Err` instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_within_ranges() {
        let mut rng = Rng::new(1);
        for _ in 0..500 {
            let v = i64_in(-50..50).generate(&mut rng).value;
            assert!((-50..50).contains(&v));
            let u = usize_in(3..9).generate(&mut rng).value;
            assert!((3..9).contains(&u));
            let w = vec_of(any_u8(), 2..5).generate(&mut rng).value;
            assert!((2..5).contains(&w.len()));
            let s = string_of("abc", 0..4).generate(&mut rng).value;
            assert!(s.len() < 4 && s.chars().all(|c| "abc".contains(c)));
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = std::cell::Cell::new(0u32);
        let counter = &mut count;
        check(Config::cases(37), any_u64(), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 37);
    }

    #[test]
    fn integer_shrinking_finds_the_boundary() {
        // Property "v < 1000" fails for v >= 1000; the minimal
        // counterexample is exactly 1000.
        let caught = std::panic::catch_unwind(|| {
            check(Config::cases(256), i64_in(0..100_000), |v| {
                prop_assert!(*v < 1000, "too big: {v}");
                Ok(())
            });
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(
            msg.contains(": 1000\n"),
            "should shrink to exactly 1000: {msg}"
        );
    }

    #[test]
    fn vector_shrinking_minimizes_length_and_elements() {
        // "no element is >= 100" — minimal counterexample is [100].
        let caught = std::panic::catch_unwind(|| {
            check(Config::cases(256), vec_of(i64_in(0..10_000), 0..50), |v| {
                prop_assert!(v.iter().all(|x| *x < 100), "{v:?}");
                Ok(())
            });
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("[100]"), "{msg}");
    }

    #[test]
    fn map_preserves_shrinking() {
        // Doubling preserved: minimal failing doubled value for ">= 50
        // fails" is 50 (from 25).
        let caught = std::panic::catch_unwind(|| {
            check(Config::cases(256), i64_in(0..1000).map(|v| v * 2), |v| {
                prop_assert!(*v < 50, "{v}");
                Ok(())
            });
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains(": 50\n"), "{msg}");
    }

    #[test]
    fn filter_respects_predicate_through_shrinking() {
        // Only odd numbers are generated; shrunk counterexamples stay odd.
        let caught = std::panic::catch_unwind(|| {
            check(
                Config::cases(256),
                i64_in(0..10_000).filter("odd", |v| v % 2 == 1),
                |v| {
                    prop_assert!(*v < 101, "{v}");
                    Ok(())
                },
            );
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains(": 101\n"), "minimal odd failure is 101: {msg}");
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let caught = std::panic::catch_unwind(|| {
            check(
                Config::cases(256),
                (i64_in(0..1000), i64_in(0..1000)),
                |(a, b)| {
                    prop_assert!(a + b < 800, "{a}+{b}");
                    Ok(())
                },
            );
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        // Greedy shrink lands on a boundary pair summing to exactly 800:
        // shrinking either component further would make the property pass.
        let tuple = msg
            .split("shrink steps): (")
            .nth(1)
            .and_then(|rest| rest.split(')').next())
            .unwrap_or_else(|| panic!("no tuple in: {msg}"));
        let parts: Vec<i64> = tuple.split(", ").map(|p| p.parse().unwrap()).collect();
        assert_eq!(parts[0] + parts[1], 800, "{msg}");
    }

    #[test]
    fn option_and_bool_strategies_cover_both_arms() {
        let mut rng = Rng::new(3);
        let strat = option_of(any_bool());
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match strat.generate(&mut rng).value {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }

    #[test]
    fn one_of_picks_every_choice() {
        let strat = one_of(vec![
            just(1i64).boxed(),
            just(2i64).boxed(),
            i64_in(10..20).boxed(),
        ]);
        let mut rng = Rng::new(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.generate(&mut rng).value {
                1 => seen[0] = true,
                2 => seen[1] = true,
                v if (10..20).contains(&v) => seen[2] = true,
                v => panic!("unexpected {v}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn u8_array_generates_and_shrinks() {
        let mut rng = Rng::new(5);
        let s = u8_array::<32>().generate(&mut rng);
        assert_eq!(s.value.len(), 32);
        if s.value != [0u8; 32] {
            assert_eq!(s.shrink()[0].value, [0u8; 32]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = Config {
            seed: 77,
            ..Config::cases(16)
        };
        let collect = |cfg: Config| {
            let out = std::cell::RefCell::new(Vec::new());
            check(cfg, any_u64(), |v| {
                out.borrow_mut().push(*v);
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect(cfg.clone()), collect(cfg));
    }
}
