//! `devharness` — the in-repo development harness of the devUDF reproduction.
//!
//! This workspace builds **fully offline**: no crates.io dependency is ever
//! resolved, downloaded or compiled (see DESIGN.md, "Dependency policy").
//! Everything a crate would normally pull from the ecosystem for testing and
//! benchmarking lives here instead:
//!
//! * [`rng`] — a small, fast, deterministic PRNG (SplitMix64 seeding a
//!   xoshiro256++ core) with the handful of `Rng`-style methods the
//!   workspace needs: uniform integers in ranges, floats, bools, byte
//!   fills, shuffles and choices. Used by `wireproto::transfer` sampling,
//!   the benches and the property harness.
//! * [`prop`] — a miniature property-testing harness in the spirit of
//!   proptest/QuickCheck: composable [`prop::Strategy`] generators
//!   (integers, floats, vectors, strings over a charset, options, tuples,
//!   unions, `map`/`filter`), a configurable case count, and **greedy
//!   input shrinking** on failure via lazily-built shrink trees, so a
//!   failing case is reported in (near-)minimal form together with the
//!   seed that reproduces it.
//! * [`pool`] — a fixed-size, work-stealing-free thread pool with a
//!   *scoped* execution API ([`Pool::scoped`] / [`Pool::map`]) so jobs can
//!   borrow stack data without `'static` bounds. Sized process-wide via
//!   `DEVUDF_POOL_THREADS`; used by the chunked transfer pipeline in
//!   `wireproto::transfer` to run the per-block codec across cores.
//! * [`bench`](mod@bench) — a criterion-style micro-benchmark runner: per-benchmark
//!   warmup, automatic batching of fast bodies, min/mean/median/p95
//!   statistics, throughput rates, a human-readable table and a machine
//!   readable `BENCH_<suite>.json` artifact (schema documented in
//!   EXPERIMENTS.md) emitted through [`codecs::json`].
//!
//! # Reproducibility
//!
//! Every randomized component is seeded deterministically. The property
//! harness derives one sub-seed per test case from a base seed that can be
//! overridden with the `DEVHARNESS_SEED` environment variable; a failing
//! case prints that seed so the exact run can be replayed. The bench runner
//! honours `DEVHARNESS_BENCH_SAMPLES` and `DEVHARNESS_BENCH_BUDGET_MS` so
//! CI can trade precision for wall-clock time.

pub mod bench;
pub mod pool;
pub mod prop;
pub mod rng;

pub use pool::Pool;
pub use rng::Rng;
