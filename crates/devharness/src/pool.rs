//! A fixed-size thread pool with a *scoped* execution API.
//!
//! The transfer pipeline (see `wireproto::transfer`) splits payloads into
//! blocks and runs the block codec across cores. Its needs shape this
//! module:
//!
//! * **Fixed, work-stealing-free.** Workers pull jobs from one shared
//!   FIFO injector queue — no per-worker deques, no stealing. Block jobs
//!   are coarse (hundreds of KiB of compression each), so a single
//!   mutex-guarded queue costs nothing measurable and keeps execution
//!   order deterministic enough to reason about.
//! * **Scoped.** [`Pool::scoped`] lets jobs borrow from the caller's
//!   stack (the payload being split lives in the caller), so block slices
//!   need no `'static` bound and no copying into `Arc`s. The scope joins
//!   all of its jobs before returning — even when the caller's closure
//!   panics after queueing jobs, mirroring `std::thread::scope` — the
//!   classic scoped-pool contract that makes the lifetime erasure sound.
//! * **Nested submission runs inline.** A job that submits to its own
//!   pool (directly or via `Pool::map`) would otherwise deadlock: the
//!   worker blocks joining children that no free worker can ever pick
//!   up. `Scope::execute` detects submission from one of the pool's own
//!   workers and runs the job synchronously on that worker instead —
//!   nested parallelism degrades to sequential execution, never to a
//!   hang, and results are unchanged because `map` preserves item order
//!   either way.
//! * **Deterministic results.** [`Pool::map`] returns results in item
//!   order regardless of completion order or worker count, which is what
//!   lets the wire format stay byte-identical across thread counts.
//!
//! A process-wide pool is available through [`global`]; its size comes
//! from the `DEVUDF_POOL_THREADS` environment variable when set (CI pins
//! it to 1 to prove format determinism), else from
//! `std::thread::available_parallelism` capped at 8.
//!
//! The queue depth is exported as the `pool.queue_depth` gauge and total
//! executed jobs as the `pool.jobs` counter (see DESIGN.md §10).

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// Id of the [`Pool`] this thread is a worker of (0 = not a worker).
    /// Lets [`Scope::execute`] detect same-pool nesting and run the job
    /// inline instead of deadlocking the worker in its nested join.
    static WORKER_OF: Cell<usize> = const { Cell::new(0) };
}

/// A queued unit of work. Lifetimes are erased by [`Scope::execute`]; the
/// scope's join-before-return contract keeps the borrows alive.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Injector {
    queue: Mutex<InjectorState>,
    /// Signalled when a job is pushed or shutdown begins.
    available: Condvar,
}

struct InjectorState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl Injector {
    fn push(&self, job: Job) {
        let mut state = self.queue.lock().expect("pool queue poisoned");
        state.jobs.push_back(job);
        obs::gauge!("pool.queue_depth").set(state.jobs.len() as i64);
        drop(state);
        self.available.notify_one();
    }

    /// Blocks until a job is available or shutdown is flagged with an
    /// empty queue (drain-then-exit semantics).
    fn pop(&self) -> Option<Job> {
        let mut state = self.queue.lock().expect("pool queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                obs::gauge!("pool.queue_depth").set(state.jobs.len() as i64);
                return Some(job);
            }
            if state.shutdown {
                return None;
            }
            state = self.available.wait(state).expect("pool queue poisoned");
        }
    }
}

/// A fixed set of worker threads consuming one shared job queue.
///
/// ```
/// let pool = devharness::pool::Pool::new(4);
/// let data = vec![1u64, 2, 3, 4, 5];
/// // Borrow `data` from the caller's stack — no 'static required.
/// let doubled = pool.map(data.iter().collect::<Vec<_>>(), |_, x| *x * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
/// ```
pub struct Pool {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Process-unique id, stamped into each worker's [`WORKER_OF`].
    id: usize,
}

impl Pool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        static NEXT_ID: AtomicUsize = AtomicUsize::new(1);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let threads = threads.max(1);
        let injector = Arc::new(Injector {
            queue: Mutex::new(InjectorState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let injector = injector.clone();
                std::thread::Builder::new()
                    .name(format!("devharness-pool-{i}"))
                    .spawn(move || {
                        WORKER_OF.with(|w| w.set(id));
                        while let Some(job) = injector.pop() {
                            obs::counter!("pool.jobs").inc();
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            injector,
            workers,
            threads,
            id,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with a [`Scope`] whose spawned jobs may borrow anything
    /// outliving this call. Every job is joined before `scoped` returns
    /// or unwinds; a panicking job re-panics here (after all siblings
    /// finished), and a panic in `f` itself resumes only after the join.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
            _marker: PhantomData,
        };
        // `f` may panic after queueing jobs whose `'scope` borrows were
        // lifetime-erased; unwinding past this frame before those jobs
        // finish would be a use-after-free. Catch the panic, join
        // unconditionally, and only then resume it — as std::thread::scope
        // does. (A Drop guard would work too, but a panic inside a panic
        // aborts; catch/join/resume keeps the failure mode a clean panic.)
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait();
        match result {
            Ok(r) => {
                if scope.state.panicked.load(Ordering::Acquire) {
                    panic!("a job spawned on the thread pool panicked");
                }
                r
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Parallel map preserving item order: `f(index, item)` runs across
    /// the pool; the result vector is ordered by index no matter which
    /// worker finished first. Falls back to a plain inline loop when the
    /// pool has one thread or there is at most one item, so single-thread
    /// configurations pay no synchronization cost at all.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let n = items.len();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let f = &f;
        self.scoped(|scope| {
            for (slot, (i, item)) in results.iter_mut().zip(items.into_iter().enumerate()) {
                scope.execute(move || {
                    *slot = Some(f(i, item));
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("scope joined every job"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.injector.queue.lock().expect("pool queue poisoned");
            state.shutdown = true;
        }
        self.injector.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// Handle passed to the closure of [`Pool::scoped`]; jobs spawned through
/// it may borrow data with lifetime `'scope`.
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope` (the `Cell` makes it so), mirroring
    /// `std::thread::Scope` — prevents the borrow checker from shrinking
    /// the scope lifetime under us.
    _marker: PhantomData<std::cell::Cell<&'scope mut ()>>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Submit a job. The job may borrow `'scope` data; the enclosing
    /// [`Pool::scoped`] call joins it before returning, which is what
    /// makes the internal lifetime erasure sound.
    ///
    /// Called from one of this pool's own workers, the job runs inline
    /// on the calling thread instead of being queued: every worker could
    /// be blocked joining a nested scope, in which case a queued child
    /// would never be picked up and the pool would deadlock.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if WORKER_OF.with(|w| w.get()) == self.pool.id {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                self.state.panicked.store(true, Ordering::Release);
            }
            return;
        }
        // Span parents are tracked in a thread-local stack that does not
        // cross into workers; carry the submitting thread's trace context
        // so spans opened inside the job parent under the submitting span.
        let ctx = obs::trace::current_context();
        *self.state.pending.lock().expect("scope state poisoned") += 1;
        let state = self.state.clone();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let _trace = obs::trace::enter_context(ctx);
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            let mut pending = state.pending.lock().expect("scope state poisoned");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: `Pool::scoped` calls `Scope::wait` before returning *or
        // unwinding* (the user closure runs under catch_unwind), so every
        // `'scope` borrow the job captures strictly outlives its
        // execution. The job never leaves the pool's queue/workers.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.pool.injector.push(job);
    }

    /// Wait for every job spawned through this scope. Never panics —
    /// [`Pool::scoped`] checks the panicked flag (and any caller-closure
    /// panic) only after this returns, so borrows stay sound.
    fn wait(&self) {
        let mut pending = self.state.pending.lock().expect("scope state poisoned");
        while *pending > 0 {
            pending = self.state.done.wait(pending).expect("scope state poisoned");
        }
    }
}

/// Returned by [`Service::try_submit`] when the bounded queue is at
/// capacity: the caller sheds load instead of queueing unboundedly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("service queue is full")
    }
}

impl std::error::Error for QueueFull {}

struct ServiceState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct ServiceShared {
    queue: Mutex<ServiceState>,
    available: Condvar,
    capacity: usize,
}

/// A bounded worker service for long-lived, `'static` jobs — the scheduler
/// behind the wire server's concurrent sessions.
///
/// Where [`Pool`] is scoped (callers block until their batch joins, so an
/// unbounded injector is fine — the caller itself is the bound), a
/// `Service` accepts fire-and-forget jobs from many producers that must
/// *never* block and *never* queue unboundedly: [`Service::try_submit`]
/// refuses work with [`QueueFull`] once `capacity` jobs are waiting, which
/// the server surfaces to clients as a typed retryable error
/// (backpressure instead of memory growth).
///
/// Jobs are popped FIFO by a fixed set of workers; drop drains the queue
/// and joins the workers. The live queue depth is exported as the
/// `<name>.queue_depth` gauge.
pub struct Service {
    shared: Arc<ServiceShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    name: &'static str,
}

impl Service {
    /// Spawn `threads` workers (clamped to at least 1) consuming a queue
    /// bounded at `capacity` pending jobs (clamped to at least 1).
    pub fn new(name: &'static str, threads: usize, capacity: usize) -> Service {
        let threads = threads.max(1);
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(ServiceState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut state = shared.queue.lock().expect("service queue poisoned");
                            loop {
                                if let Some(job) = state.jobs.pop_front() {
                                    break job;
                                }
                                if state.shutdown {
                                    return;
                                }
                                state = shared
                                    .available
                                    .wait(state)
                                    .expect("service queue poisoned");
                            }
                        };
                        // A panicking job must not take its worker down with
                        // it — the service would silently lose capacity.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    })
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            shared,
            workers,
            threads,
            name,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs currently waiting (excludes jobs already running on workers).
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("service queue poisoned")
            .jobs
            .len()
    }

    /// Submit a job, or refuse with [`QueueFull`] when `capacity` jobs are
    /// already waiting. Never blocks.
    pub fn try_submit<F>(&self, job: F) -> Result<(), QueueFull>
    where
        F: FnOnce() + Send + 'static,
    {
        let depth = {
            let mut state = self.shared.queue.lock().expect("service queue poisoned");
            if state.shutdown || state.jobs.len() >= self.shared.capacity {
                return Err(QueueFull);
            }
            state.jobs.push_back(Box::new(job));
            state.jobs.len()
        };
        obs::metrics::registry()
            .gauge(&format!("{}.queue_depth", self.name))
            .set(depth as i64);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut state = self.shared.queue.lock().expect("service queue poisoned");
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Worker count for the process-global pool: `DEVUDF_POOL_THREADS` when
/// set to a positive integer, else `available_parallelism` capped at 8.
pub fn default_threads() -> usize {
    std::env::var("DEVUDF_POOL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        })
}

/// The process-global pool (lazily created, sized by [`default_threads`]).
pub fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(items, |i, x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_borrows_from_caller_without_static() {
        let pool = Pool::new(3);
        let data: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 1000]).collect();
        let slices: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let sums = pool.map(slices, |_, s| s.iter().map(|&b| b as u64).sum::<u64>());
        assert_eq!(sums[3], 3 * 1000);
        assert_eq!(sums.len(), 10);
    }

    #[test]
    fn map_runs_inline_on_single_thread_pool() {
        let pool = Pool::new(1);
        // An inline run happens on the calling thread.
        let caller = std::thread::current().id();
        let ids = pool.map(vec![(); 4], |_, ()| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn scoped_jobs_actually_run_on_workers() {
        let pool = Pool::new(2);
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        pool.scoped(|scope| {
            for _ in 0..8 {
                scope.execute(|| {
                    seen.lock().unwrap().push(std::thread::current().id());
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 8);
        assert!(seen.iter().all(|&id| id != caller));
    }

    #[test]
    fn scoped_joins_before_returning() {
        let pool = Pool::new(4);
        let counter = AtomicU64::new(0);
        pool.scoped(|scope| {
            for _ in 0..64 {
                scope.execute(|| {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        // If scoped returned early this would race; joining makes it exact.
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_job_propagates_after_join() {
        let pool = Pool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                for i in 0..6 {
                    let finished = finished.clone();
                    scope.execute(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-panic");
        // All non-panicking siblings still ran to completion first.
        assert_eq!(finished.load(Ordering::SeqCst), 5);
        // The pool survives a panicked scope and keeps working.
        let out = pool.map(vec![1, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn caller_panic_after_execute_still_joins_queued_jobs() {
        // Regression: `scoped` used to skip the join when the user closure
        // panicked after queueing, letting jobs that borrow the caller's
        // stack outlive it. The borrows below are only sound if the scope
        // joins on the panic path.
        let pool = Pool::new(2);
        let data = vec![7u8; 4096];
        let sums = Mutex::new(Vec::new());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                for _ in 0..16 {
                    scope.execute(|| {
                        // Borrows `data` and `sums` from this frame.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        let s: u64 = data.iter().map(|&b| b as u64).sum();
                        sums.lock().unwrap().push(s);
                    });
                }
                panic!("caller panics with jobs still queued");
            });
        }));
        assert!(result.is_err(), "caller panic must propagate");
        // Every job ran to completion against live borrows first.
        let sums = sums.into_inner().unwrap();
        assert_eq!(sums.len(), 16);
        assert!(sums.iter().all(|&s| s == 7 * 4096));
    }

    #[test]
    fn nested_submission_to_same_pool_runs_inline_not_deadlocks() {
        // A job that maps on its own pool would deadlock if its children
        // were queued (all workers can be stuck joining); nested jobs run
        // inline on the worker instead.
        let pool = Pool::new(2);
        let outer: Vec<u64> = (0..8).collect();
        let out = pool.map(outer, |_, x| {
            let inner: Vec<u64> = (0..50).collect();
            pool.map(inner, |_, y| y * x).iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0..8).map(|x| x * (0..50).sum::<u64>()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn nested_job_panic_still_propagates() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0u8; 4], |i, _| {
                pool.scoped(|scope| {
                    scope.execute(move || {
                        if i == 2 {
                            panic!("inner boom");
                        }
                    });
                });
            })
        }));
        assert!(result.is_err(), "nested panic must surface to the caller");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(vec![5], |_, x| x * 2), vec![10]);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global() as *const Pool;
        let b = global() as *const Pool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn map_empty_and_single() {
        let pool = Pool::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map(empty, |_, x| x).is_empty());
        assert_eq!(pool.map(vec![9], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn service_runs_submitted_jobs() {
        let svc = Service::new("test-svc", 2, 16);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let counter = counter.clone();
            svc.try_submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(svc); // drains the queue and joins the workers
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn service_refuses_work_beyond_capacity() {
        let svc = Service::new("test-svc-full", 1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the lone worker so subsequent jobs stay queued.
        {
            let gate = gate.clone();
            svc.try_submit(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        }
        // Wait until the worker picked up the blocking job.
        while svc.queued() > 0 {
            std::thread::yield_now();
        }
        svc.try_submit(|| {}).unwrap();
        svc.try_submit(|| {}).unwrap();
        assert_eq!(svc.try_submit(|| {}), Err(QueueFull));
        assert_eq!(svc.queued(), 2);
        // Release the worker; the queue drains and capacity frees up.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        while svc.queued() > 0 {
            std::thread::yield_now();
        }
        svc.try_submit(|| {}).unwrap();
    }

    #[test]
    fn service_survives_panicking_jobs() {
        let svc = Service::new("test-svc-panic", 1, 8);
        let done = Arc::new(AtomicU64::new(0));
        svc.try_submit(|| panic!("job boom")).unwrap();
        let d = done.clone();
        svc.try_submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        drop(svc);
        assert_eq!(
            done.load(Ordering::SeqCst),
            1,
            "worker must outlive a panic"
        );
    }

    #[test]
    fn pooled_jobs_parent_under_the_submitting_span() {
        // Regression: block codec spans used to be orphaned because the
        // thread-local parent stack does not cross into pool workers.
        // `Scope::execute` now carries the submitting context into the job.
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        obs::trace::clear_subscribers();
        let rec = Arc::new(obs::trace::RingBufferRecorder::new(64));
        obs::trace::add_subscriber(rec.clone());
        let pool = Pool::new(2);
        let outer = obs::trace::span("pool.test.transfer");
        let outer_id = outer.id();
        pool.map(vec![0u8; 4], |_, _| {
            drop(obs::trace::span("pool.test.block"));
        });
        drop(outer);
        obs::trace::clear_subscribers();
        // In a no-op obs build the span id is 0 and nothing is recorded.
        if outer_id != 0 {
            let block_parents: Vec<Option<u64>> = rec
                .events()
                .iter()
                .filter_map(|e| match e {
                    obs::trace::Event::Span { name, parent, .. } if *name == "pool.test.block" => {
                        Some(*parent)
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(block_parents.len(), 4);
            assert!(
                block_parents.iter().all(|p| *p == Some(outer_id)),
                "{block_parents:?}"
            );
        }
    }
}
