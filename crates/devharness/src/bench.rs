//! A criterion-style micro-benchmark runner.
//!
//! The API deliberately mirrors the shape of the criterion code it
//! replaced so the bench files read the same way: a [`Harness`] hands out
//! [`Group`]s, groups run named benchmarks through a [`Bencher`] whose
//! [`Bencher::iter`] closure is the measured body, and [`black_box`]
//! defeats constant folding.
//!
//! ```no_run
//! use devharness::bench::{black_box, Harness, Throughput};
//!
//! let mut h = Harness::new("example");
//! let mut group = h.benchmark_group("sums");
//! group.throughput(Throughput::Elements(1000));
//! group.bench_function("iter_sum", |b| {
//!     b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
//! });
//! group.finish();
//! h.finish(); // prints a table, writes BENCH_example.json
//! ```
//!
//! # Measurement model
//!
//! Each benchmark gets a wall-clock budget (default 300 ms, overridable
//! via `DEVHARNESS_BENCH_BUDGET_MS`). A calibration phase doubles the
//! batch size until one batch is long enough to time reliably, which also
//! serves as warmup; the remaining budget is split into up to
//! `sample_size` timed batches (default 20, `DEVHARNESS_BENCH_SAMPLES`
//! overrides, [`Group::sample_size`] sets it per group). Reported
//! statistics are per-iteration nanoseconds: min, mean, median and p95
//! across samples — median/p95 rather than criterion's curve fit, which
//! is plenty for regression tracking.
//!
//! # Artifacts
//!
//! [`Harness::finish`] writes `BENCH_<suite>.json` (schema documented in
//! EXPERIMENTS.md) into the workspace root — located via
//! `CARGO_MANIFEST_DIR`'s grandparent, since cargo runs bench binaries
//! from `crates/bench` — or into `DEVHARNESS_BENCH_OUT` if set.

use std::hint;
use std::time::{Duration, Instant};

use codecs::json::Value;

/// Opaque value barrier, re-exported so bench files need only one import.
pub fn black_box<T>(v: T) -> T {
    hint::black_box(v)
}

/// How much work one iteration of a benchmark represents; turns
/// per-iteration time into a rate in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical items processed per iteration.
    Elements(u64),
}

/// A benchmark name with a parameter suffix, e.g. `compress/4096`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }

    /// A bare name with no parameter.
    pub fn from_name(name: impl Into<String>) -> BenchmarkId {
        BenchmarkId { full: name.into() }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    name: String,
    samples: usize,
    batch: u64,
    min_ns: f64,
    mean_ns: f64,
    median_ns: f64,
    p95_ns: f64,
    throughput: Option<Throughput>,
}

impl Record {
    fn rate(&self) -> Option<(f64, &'static str)> {
        self.throughput.map(|t| match t {
            Throughput::Bytes(n) => (n as f64 / self.median_ns * 1e9, "B/s"),
            Throughput::Elements(n) => (n as f64 / self.median_ns * 1e9, "elem/s"),
        })
    }
}

/// A suite of benchmark groups; prints a table and writes
/// `BENCH_<suite>.json` on [`Harness::finish`].
pub struct Harness {
    suite: String,
    records: Vec<Record>,
    default_samples: usize,
    budget: Duration,
}

impl Harness {
    /// Create a suite. `suite` names the output artifact
    /// (`BENCH_<suite>.json`).
    pub fn new(suite: impl Into<String>) -> Harness {
        let default_samples = std::env::var("DEVHARNESS_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n >= 2)
            .unwrap_or(20);
        let budget_ms = std::env::var("DEVHARNESS_BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&ms: &u64| ms > 0)
            .unwrap_or(300);
        Harness {
            suite: suite.into(),
            records: Vec::new(),
            default_samples,
            budget: Duration::from_millis(budget_ms),
        }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            harness: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Print the results table and write the JSON artifact. Returns the
    /// path written.
    pub fn finish(self) -> std::path::PathBuf {
        let mut width = "benchmark".len();
        for r in &self.records {
            width = width.max(r.group.len() + 1 + r.name.len());
        }
        println!(
            "\nsuite {} — {} benchmarks (budget {:?}/bench)",
            self.suite,
            self.records.len(),
            self.budget
        );
        println!(
            "{:<width$}  {:>12}  {:>12}  {:>12}  {:>14}",
            "benchmark", "median", "p95", "min", "throughput"
        );
        for r in &self.records {
            let rate = match r.rate() {
                Some((v, unit)) => format!("{} {unit}", human_rate(v)),
                None => "-".to_string(),
            };
            println!(
                "{:<width$}  {:>12}  {:>12}  {:>12}  {:>14}",
                format!("{}/{}", r.group, r.name),
                human_ns(r.median_ns),
                human_ns(r.p95_ns),
                human_ns(r.min_ns),
                rate,
            );
        }

        let benchmarks: Vec<Value> = self
            .records
            .iter()
            .map(|r| {
                let mut pairs = vec![
                    ("group".to_string(), Value::from(r.group.as_str())),
                    ("name".to_string(), Value::from(r.name.as_str())),
                    ("samples".to_string(), Value::from(r.samples)),
                    ("iters_per_sample".to_string(), Value::from(r.batch)),
                    (
                        "ns_per_iter".to_string(),
                        Value::Object(vec![
                            ("min".to_string(), Value::Float(r.min_ns)),
                            ("mean".to_string(), Value::Float(r.mean_ns)),
                            ("median".to_string(), Value::Float(r.median_ns)),
                            ("p95".to_string(), Value::Float(r.p95_ns)),
                        ]),
                    ),
                ];
                if let Some(t) = r.throughput {
                    let (unit, per_iter) = match t {
                        Throughput::Bytes(n) => ("bytes", n),
                        Throughput::Elements(n) => ("elements", n),
                    };
                    let (per_sec, _) = r.rate().unwrap();
                    pairs.push((
                        "throughput".to_string(),
                        Value::Object(vec![
                            ("unit".to_string(), Value::from(unit)),
                            ("per_iter".to_string(), Value::from(per_iter)),
                            ("per_sec".to_string(), Value::Float(per_sec)),
                        ]),
                    ));
                }
                Value::Object(pairs)
            })
            .collect();
        let doc = Value::Object(vec![
            ("suite".to_string(), Value::from(self.suite.as_str())),
            ("schema".to_string(), Value::Int(1)),
            ("benchmarks".to_string(), Value::Array(benchmarks)),
        ]);

        let path = out_dir().join(format!("BENCH_{}.json", self.suite));
        if let Err(e) = std::fs::write(&path, doc.to_string_pretty()) {
            obs::warn!(
                "could not write benchmark results",
                "path" => path.display(),
                "error" => e,
            );
        } else {
            println!("\nwrote {}", path.display());
        }
        path
    }

    fn record(&mut self, rec: Record) {
        println!(
            "  {}/{:<40} median {:>10}  p95 {:>10}",
            rec.group,
            rec.name,
            human_ns(rec.median_ns),
            human_ns(rec.p95_ns)
        );
        self.records.push(rec);
    }
}

/// Where `BENCH_*.json` lands: `DEVHARNESS_BENCH_OUT` if set, else the
/// workspace root (grandparent of the running package's manifest dir),
/// else the current directory.
fn out_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("DEVHARNESS_BENCH_OUT") {
        return dir.into();
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = std::path::Path::new(&manifest);
        if let Some(root) = p
            .ancestors()
            .find(|a| a.join("Cargo.toml").exists() && a.join("crates").is_dir())
        {
            return root.to_path_buf();
        }
    }
    ".".into()
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Number of timed samples per benchmark in this group (min 2;
    /// `DEVHARNESS_BENCH_SAMPLES` overrides globally).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Work per iteration for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark under a plain name.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        self.run(name.into(), f);
    }

    /// Run a benchmark with an explicit input value (mirrors criterion's
    /// signature; the input is passed straight through to the closure).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.full, |b| f(b, input));
    }

    /// No-op kept for call-site symmetry with criterion.
    pub fn finish(self) {}

    fn run(&mut self, name: String, mut f: impl FnMut(&mut Bencher)) {
        let samples = if std::env::var("DEVHARNESS_BENCH_SAMPLES").is_ok() {
            self.harness.default_samples
        } else {
            self.sample_size.unwrap_or(self.harness.default_samples)
        };
        let mut bencher = Bencher {
            budget: self.harness.budget,
            target_samples: samples,
            samples_ns: Vec::new(),
            batch: 0,
        };
        f(&mut bencher);
        assert!(
            !bencher.samples_ns.is_empty(),
            "benchmark '{name}' never called Bencher::iter"
        );
        let mut sorted = bencher.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let min_ns = sorted[0];
        let mean_ns = sorted.iter().sum::<f64>() / n as f64;
        let median_ns = if n.is_multiple_of(2) {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        } else {
            sorted[n / 2]
        };
        let p95_ns = sorted[(((n - 1) as f64) * 0.95).round() as usize];
        self.harness.record(Record {
            group: self.name.clone(),
            name,
            samples: n,
            batch: bencher.batch,
            min_ns,
            mean_ns,
            median_ns,
            p95_ns,
            throughput: self.throughput,
        });
    }
}

/// Drives the measured closure; obtained inside
/// [`Group::bench_function`] / [`Group::bench_with_input`].
pub struct Bencher {
    budget: Duration,
    target_samples: usize,
    samples_ns: Vec<f64>,
    batch: u64,
}

impl Bencher {
    /// Measure `f`. Runs a calibration/warmup phase, then up to the
    /// configured number of timed batches within the time budget (always
    /// at least 2). The closure's return value is passed through
    /// [`black_box`] so results aren't optimized away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let started = Instant::now();
        // Calibration doubling: find a batch size whose duration is long
        // enough to time reliably (>= 200 µs), warming caches on the way.
        let mut batch: u64 = 1;
        let mut batch_time;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            batch_time = t.elapsed();
            if batch_time >= Duration::from_micros(200)
                || started.elapsed() > self.budget / 4
                || batch >= 1 << 24
            {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        // Size the batch so the planned samples roughly fill the rest of
        // the budget (capped so slow bodies don't explode the runtime).
        let per_iter_ns = (batch_time.as_nanos() as f64 / batch as f64).max(0.1);
        let remaining = self.budget.saturating_sub(started.elapsed());
        let per_sample_ns = remaining.as_nanos() as f64 / self.target_samples as f64;
        batch = ((per_sample_ns / per_iter_ns) as u64).clamp(1, 1 << 24);
        self.batch = batch;

        for i in 0..self.target_samples {
            // Honour the budget once the 2-sample floor is met.
            if i >= 2 && started.elapsed() > self.budget {
                break;
            }
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> (String, String) {
        // Tests must be fast: shrink the budget via explicit Harness
        // fields rather than env (env is process-global).
        ("".into(), "".into())
    }

    #[test]
    fn records_statistics_and_writes_json() {
        let _ = tiny_env();
        let dir = std::env::temp_dir().join("devharness_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut h = Harness::new("selftest");
        h.budget = Duration::from_millis(20);
        {
            let mut g = h.benchmark_group("math");
            g.sample_size(5);
            g.throughput(Throughput::Elements(100));
            g.bench_function("sum", |b| {
                b.iter(|| (0..100u64).map(black_box).sum::<u64>())
            });
            g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(h.records.len(), 2);
        let r = &h.records[0];
        assert_eq!(r.group, "math");
        assert_eq!(r.name, "sum");
        assert!(r.samples >= 2);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        assert_eq!(h.records[1].name, "sum_n/50");

        std::env::set_var("DEVHARNESS_BENCH_OUT", &dir);
        let path = h.finish();
        std::env::remove_var("DEVHARNESS_BENCH_OUT");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = codecs::json::parse(&text).unwrap();
        assert_eq!(doc.get("suite").and_then(Value::as_str), Some("selftest"));
        assert_eq!(doc.get("schema").and_then(Value::as_i64), Some(1));
        let benches = doc.get("benchmarks").unwrap().as_array().unwrap();
        assert_eq!(benches.len(), 2);
        let stats = benches[0].get("ns_per_iter").unwrap();
        assert!(stats.get("median").unwrap().as_f64().unwrap() > 0.0);
        let tp = benches[0].get("throughput").unwrap();
        assert_eq!(tp.get("unit").and_then(Value::as_str), Some("elements"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lz", 4096).full, "lz/4096");
        assert_eq!(BenchmarkId::from_name("plain").full, "plain");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_ns(12.3), "12.3 ns");
        assert_eq!(human_ns(12_300.0), "12.30 µs");
        assert_eq!(human_ns(12_300_000.0), "12.30 ms");
        assert_eq!(human_rate(2.5e9), "2.50 G");
    }
}
