//! A small deterministic PRNG: SplitMix64 seeding a xoshiro256++ core.
//!
//! Not cryptographic — [`codecs::chacha20`] covers that — but fast,
//! statistically solid for sampling/benching/property generation, and
//! fully reproducible from a single `u64` seed. The algorithms are the
//! public-domain constructions of Vigna et al. (xoshiro256++ 1.0,
//! SplitMix64).

/// Deterministic pseudo-random number generator.
///
/// ```
/// use devharness::Rng;
/// let mut rng = Rng::new(42);
/// let a = rng.next_u64();
/// assert_eq!(Rng::new(42).next_u64(), a); // same seed, same stream
/// let d = rng.u64_below(6) + 1;           // a die roll
/// assert!((1..=6).contains(&d));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step — also used standalone to derive independent sub-seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is fine:
    /// SplitMix64 expands it into a full non-zero xoshiro state.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent generator (for a sub-task) without disturbing
    /// the parent's stream more than one step.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    /// Uses Lemire-style rejection to avoid modulo bias.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Uniform value in the half-open range `[low, high)`.
    pub fn i64_in(&mut self, low: i64, high: i64) -> i64 {
        assert!(low < high, "i64_in: empty range {low}..{high}");
        let span = (high as i128 - low as i128) as u128;
        let off = if span > u64::MAX as u128 {
            // Range wider than u64 (only possible for the full i64 span):
            // a raw draw is already uniform over it.
            self.next_u64() as u128
        } else {
            self.u64_below(span as u64) as u128
        };
        (low as i128 + off as i128) as i64
    }

    /// Uniform `usize` in `[low, high)`.
    pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "usize_in: empty range {low}..{high}");
        low + self.usize_below(high - low)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn ratio(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// One random byte.
    pub fn u8(&mut self) -> u8 {
        (self.next_u64() & 0xff) as u8
    }

    /// Fill a slice with random bytes (8 at a time).
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let r = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&r[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.usize_below(items.len())])
        }
    }

    /// `k` distinct indices sampled uniformly from `0..n` (partial
    /// Fisher–Yates), returned **sorted ascending** so callers preserve
    /// original row order. When `k >= n` returns all indices.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut pool: Vec<usize> = (0..n).collect();
        let mut picked = Vec::with_capacity(k);
        for _ in 0..k {
            let i = self.usize_below(pool.len());
            picked.push(pool.swap_remove(i));
        }
        picked.sort_unstable();
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let mut c = Rng::new(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn splitmix64_known_answer() {
        // Reference sequence for seed 0 from the public-domain C source.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut s), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            assert!(rng.u64_below(7) < 7);
            let v = rng.i64_in(-5, 5);
            assert!((-5..5).contains(&v));
            let f = rng.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
        // Full-span draw must not panic.
        let _ = rng.i64_in(i64::MIN, i64::MAX);
    }

    #[test]
    fn bounded_draws_hit_every_value() {
        let mut rng = Rng::new(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.usize_below(6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Rng::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(4);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements staying put is ~impossible");
    }

    #[test]
    fn sample_indices_bounds_and_order() {
        let mut rng = Rng::new(5);
        let idx = rng.sample_indices(1000, 50);
        assert_eq!(idx.len(), 50);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < 1000));
        assert_eq!(rng.sample_indices(10, 100), (0..10).collect::<Vec<_>>());
        let a = Rng::new(9).sample_indices(500, 50);
        let b = Rng::new(9).sample_indices(500, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut rng = Rng::new(6);
        let hits = (0..10_000).filter(|_| rng.ratio(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
