//! C6: interpreter and debugger-overhead microbenchmarks.
//!
//! Quantifies the cost of the interactive-debugging machinery: the same
//! UDF runs with hooks disabled, with a line tracer, with unhit
//! breakpoints, and with a hit-and-continue breakpoint.

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::MEAN_DEVIATION_FIXED_BODY;
use pylite::{Array, DebugCommand, Debugger, Interp, LineTracer, Value};

fn script() -> String {
    format!(
        "def mean_deviation(column):\n{}\nresult = mean_deviation(col)\n",
        MEAN_DEVIATION_FIXED_BODY
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    )
}

fn bench_interp(h: &mut Harness) {
    let mut group = h.benchmark_group("debugger_overhead");
    group.sample_size(10);
    let src = script();
    for rows in [1_000usize, 10_000] {
        let col: Vec<i64> = (0..rows as i64).map(|i| i % 97).collect();
        group.throughput(Throughput::Elements(rows as u64));

        group.bench_with_input(BenchmarkId::new("hooks_off", rows), &rows, |b, _| {
            b.iter(|| {
                let mut interp = Interp::new();
                interp.set_global("col", Value::array(Array::Int(col.clone())));
                interp.eval_module(&src).unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("line_tracer", rows), &rows, |b, _| {
            b.iter(|| {
                let mut interp = Interp::new();
                interp.set_global("col", Value::array(Array::Int(col.clone())));
                interp.set_hook(LineTracer::new());
                interp.eval_module(&src).unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("unhit_breakpoint", rows), &rows, |b, _| {
            b.iter(|| {
                let mut interp = Interp::new();
                interp.set_global("col", Value::array(Array::Int(col.clone())));
                let dbg = Debugger::scripted(vec![]);
                dbg.borrow_mut().add_breakpoint(9_999);
                interp.set_hook(dbg);
                interp.eval_module(&src).unwrap()
            })
        });

        group.bench_with_input(
            BenchmarkId::new("hit_breakpoint_once", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    let mut interp = Interp::new();
                    interp.set_global("col", Value::array(Array::Int(col.clone())));
                    let dbg = Debugger::scripted(vec![DebugCommand::Continue]);
                    // Line 5 of the script: `mean = mean / len(column)` — hit once.
                    dbg.borrow_mut().add_breakpoint(5);
                    interp.set_hook(dbg);
                    interp.eval_module(&src).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_parse(h: &mut Harness) {
    let mut group = h.benchmark_group("pylite_parse");
    group.sample_size(20);
    let src = script().repeat(20);
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("parse_module", |b| {
        b.iter(|| pylite::parse_module(&src).unwrap())
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("interp");
    bench_interp(&mut h);
    bench_parse(&mut h);
    h.finish();
}
