//! C15: Froid-style UDF inlining vs. the two pylite interpreters, measured
//! end-to-end through the SQL engine (`SELECT f(i) FROM numbers`).
//!
//! Three engine configurations per scenario:
//!   - `walker`   — inlining off, AST-walking interpreter
//!   - `bytecode` — inlining off, register-bytecode VM (PR 6)
//!   - `inlined`  — inlining on (the plan compiles to relational
//!     operators; the interpreter never runs)
//!
//! Scenario A is the vectorized straight-line `mean_deviation` under
//! operator-at-a-time execution: aggregates lower to SUM/COUNT. Scenario B
//! is a branching per-row scoring UDF under tuple-at-a-time execution: the
//! branches lower to a CASE evaluated columnar, while the interpreters pay
//! one call per row.

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::{seed_numbers, CLAMP_SCORE_BODY, MEAN_DEVIATION_STRAIGHT_BODY};
use monetlite::{Engine, ExecutionModel};
use pylite::ExecMode;

const CONFIGS: [(&str, ExecMode, bool); 3] = [
    ("walker", ExecMode::Ast, false),
    ("bytecode", ExecMode::Bytecode, false),
    ("inlined", ExecMode::Bytecode, true),
];

fn engine(model: ExecutionModel, mode: ExecMode, inline: bool, rows: usize, body: &str) -> Engine {
    let db = Engine::new();
    db.set_model(model);
    db.set_exec_mode(mode);
    db.set_inline(inline);
    seed_numbers(&db, rows);
    db.execute(&format!(
        "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {{\n{body}}}"
    ))
    .unwrap();
    db
}

/// Scenario A: vectorized straight-line mean deviation, operator-at-a-time.
fn bench_scenario_a(h: &mut Harness) {
    let mut group = h.benchmark_group("scenario_a");
    group.sample_size(40);
    for rows in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(rows as u64));
        for (label, mode, inline) in CONFIGS {
            let db = engine(
                ExecutionModel::OperatorAtATime,
                mode,
                inline,
                rows,
                MEAN_DEVIATION_STRAIGHT_BODY,
            );
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| db.execute("SELECT f(i) FROM numbers").unwrap())
            });
        }
    }
    group.finish();
}

/// Scenario B: branching per-row scoring, tuple-at-a-time.
fn bench_scenario_b(h: &mut Harness) {
    let mut group = h.benchmark_group("scenario_b");
    group.sample_size(40);
    for rows in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(rows as u64));
        for (label, mode, inline) in CONFIGS {
            let db = engine(
                ExecutionModel::TupleAtATime,
                mode,
                inline,
                rows,
                CLAMP_SCORE_BODY,
            );
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| db.execute("SELECT f(i) FROM numbers").unwrap())
            });
        }
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("udf_inline");
    bench_scenario_a(&mut h);
    bench_scenario_b(&mut h);
    h.finish();
}
