//! C17 — server concurrency sweep (DESIGN §16).
//!
//! Drives the read/write-split server over **real TCP** with 1→256
//! concurrent sessions, each running small read queries against the
//! `numbers` table. One iteration = every session completes
//! [`QUERIES_PER_BURST`] round trips, so per-query cost is
//! `ns_per_iter / (sessions × QUERIES_PER_BURST)` and the
//! `throughput.per_sec` field reads directly as queries/second at that
//! concurrency level.
//!
//! A second sweep repeats the 1/16-session points through the
//! fault-injecting transport (1 % seeded drop/corrupt rate + retry
//! policy), pinning down what the robustness layer costs under
//! concurrency.
//!
//! After the sweep the suite drains the server-side obs histograms and
//! appends their p50/p99 to the artifact under a `"histograms"` key —
//! per-command dispatch latency (`wire.server.latency.query`) and queue
//! wait (`wire.server.queue_wait_ns`) as observed by the scheduler
//! itself, complementing the client-side wall-clock numbers.
//!
//! Writes `BENCH_server_concurrency.json` (schema in EXPERIMENTS.md C17).

use std::net::SocketAddr;

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::SessionFleet;
use wireproto::{ClientOptions, FaultPolicy, RetryPolicy, Server, ServerConfig};

/// Round trips each session completes per measured burst.
const QUERIES_PER_BURST: usize = 4;

/// The read every session hammers: touches real column data, small
/// enough that scheduling (not aggregation) dominates.
const QUERY: &str = "SELECT sum(i) FROM numbers";

fn concurrency_server() -> (Server, SocketAddr) {
    let server = Server::start(
        // Queues sized above the largest sweep point so the clean sweep
        // measures scheduling, never `ServerBusy` refusals.
        ServerConfig::new("demo", "monetdb", "monetdb").with_queue_capacity(1024, 1024),
        |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            for chunk in 0..10 {
                let rows: Vec<String> =
                    (0..100).map(|i| format!("({})", chunk * 100 + i)).collect();
                db.execute(&format!("INSERT INTO numbers VALUES {}", rows.join(", ")))
                    .unwrap();
            }
        },
    );
    let addr = server.listen_tcp().unwrap();
    (server, addr)
}

fn fleet(addr: SocketAddr, sessions: usize, options: ClientOptions) -> SessionFleet {
    SessionFleet::connect(addr, sessions, QUERIES_PER_BURST, QUERY, options)
}

fn sweep(h: &mut Harness, addr: SocketAddr) {
    let mut group = h.benchmark_group("tcp_select");
    for sessions in [1usize, 4, 16, 64, 256] {
        group.throughput(Throughput::Elements((sessions * QUERIES_PER_BURST) as u64));
        let fleet = fleet(addr, sessions, ClientOptions::default());
        fleet.burst(); // warm every connection and the snapshot cache
        group.bench_with_input(
            BenchmarkId::new("sessions", sessions.to_string()),
            &sessions,
            |b, _| b.iter(|| fleet.burst()),
        );
        fleet.join();
    }
    group.finish();
}

fn sweep_lossy(h: &mut Harness, addr: SocketAddr) {
    let mut group = h.benchmark_group("tcp_select_lossy1pct");
    for sessions in [1usize, 16] {
        group.throughput(Throughput::Elements((sessions * QUERIES_PER_BURST) as u64));
        let options = ClientOptions {
            retry: RetryPolicy {
                max_attempts: 8,
                initial_backoff: std::time::Duration::ZERO,
                max_backoff: std::time::Duration::ZERO,
                deadline: None,
            },
            fault: Some(FaultPolicy::lossy(0xc17 + sessions as u64, 0.01)),
            ..ClientOptions::default()
        };
        let fleet = fleet(addr, sessions, options);
        fleet.burst();
        group.bench_with_input(
            BenchmarkId::new("sessions", sessions.to_string()),
            &sessions,
            |b, _| b.iter(|| fleet.burst()),
        );
        fleet.join();
    }
    group.finish();
}

/// Append server-side histogram quantiles to the artifact: what the
/// scheduler itself observed while the sweep ran.
fn append_histograms(path: &std::path::Path) {
    use codecs::json::Value;
    let quantiles = |name: &str| {
        let hist = obs::metrics::registry().histogram(name);
        Value::Object(vec![
            ("count".to_string(), Value::from(hist.count())),
            ("p50_ns".to_string(), Value::from(hist.quantile(0.50))),
            ("p99_ns".to_string(), Value::from(hist.quantile(0.99))),
        ])
    };
    let histograms = Value::Object(vec![
        (
            "wire.server.latency.query".to_string(),
            quantiles("wire.server.latency.query"),
        ),
        (
            "wire.server.queue_wait_ns".to_string(),
            quantiles("wire.server.queue_wait_ns"),
        ),
    ]);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return,
    };
    let Ok(Value::Object(mut pairs)) = codecs::json::parse(&text) else {
        return;
    };
    pairs.push(("histograms".to_string(), histograms));
    let doc = Value::Object(pairs);
    if std::fs::write(path, doc.to_string_pretty()).is_ok() {
        println!(
            "appended server-side histogram quantiles to {}",
            path.display()
        );
    }
}

fn main() {
    let (server, addr) = concurrency_server();
    let mut h = Harness::new("server_concurrency");
    sweep(&mut h, addr);
    sweep_lossy(&mut h, addr);
    let path = h.finish();
    append_histograms(&path);
    server.shutdown();
}
