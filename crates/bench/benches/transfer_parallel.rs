//! C12: parallel chunked-transfer pipeline — block-codec throughput on a
//! 16 MiB payload, sweeping container block size × pool width, against
//! the legacy single-blob codec as the single-core baseline.
//!
//! The acceptance bar for the pipeline (ISSUE 4): at 4 threads the
//! compressed path must beat the single-thread chunked path by ≥2×, and
//! the single-thread chunked path must stay within 5% of the legacy
//! whole-blob codec.

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devharness::Pool;
use wireproto::transfer::{decode_blocks, encode_blocks};
use wireproto::TransferOptions;

const PAYLOAD: usize = 16 * 1024 * 1024;
const PASSWORD: &str = "monetdb";
const TRANSFER_ID: u64 = 42;

/// 16 MiB of realistic column bytes: long runs with periodic noise, so
/// LZ gets a real (but not degenerate) compression ratio.
fn payload() -> Vec<u8> {
    let mut rng = devharness::Rng::new(0xC12);
    (0..PAYLOAD)
        .map(|i| {
            if i % 64 == 0 {
                rng.u8()
            } else {
                (i / 32) as u8
            }
        })
        .collect()
}

/// The legacy v0 single-blob codec, inlined from the wire path it
/// replaces: whole-payload LZ, then plaintext checksum + ChaCha20.
mod legacy {
    use codecs::{chacha20, kdf, lz};

    const SALT: &[u8] = b"devudf-transfer-v1";

    pub fn encode(data: &[u8], encrypt: bool, password: &str, transfer_id: u64) -> Vec<u8> {
        let mut blob = lz::compress(data);
        if encrypt {
            let tag = codecs::fnv1a_32(&blob);
            blob.extend_from_slice(&tag.to_le_bytes());
            let key = kdf::derive_key(password, SALT);
            let nonce = kdf::derive_nonce(transfer_id);
            chacha20::ChaCha20::new(&key, &nonce, 1).apply(&mut blob);
        }
        blob
    }

    pub fn decode(payload: &[u8], encrypt: bool, password: &str, transfer_id: u64) -> Vec<u8> {
        let mut blob = payload.to_vec();
        if encrypt {
            let key = kdf::derive_key(password, SALT);
            let nonce = kdf::derive_nonce(transfer_id);
            chacha20::ChaCha20::new(&key, &nonce, 1).apply(&mut blob);
            let tag = blob.split_off(blob.len() - 4);
            assert_eq!(
                u32::from_le_bytes(tag.try_into().unwrap()),
                codecs::fnv1a_32(&blob)
            );
        }
        lz::decompress(&blob).unwrap()
    }
}

fn bench_transfer_parallel(h: &mut Harness) {
    let mut group = h.benchmark_group("transfer_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    let data = payload();

    // Legacy single-blob baseline (by construction single-threaded).
    for (label, encrypt) in [("legacy-c", false), ("legacy-ce", true)] {
        let encoded = legacy::encode(&data, encrypt, PASSWORD, TRANSFER_ID);
        group.bench_with_input(
            BenchmarkId::new(format!("encode-{label}"), 1),
            &data,
            |b, d| b.iter(|| legacy::encode(d, encrypt, PASSWORD, TRANSFER_ID)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("decode-{label}"), 1),
            &encoded,
            |b, e| b.iter(|| legacy::decode(e, encrypt, PASSWORD, TRANSFER_ID)),
        );
    }

    // Chunked container: block size × pool width, compress-only (the
    // headline "compressed" path) and compress+encrypt.
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        for block in [64 * 1024usize, 256 * 1024, 1024 * 1024] {
            for (tag, encrypt) in [("c", false), ("ce", true)] {
                let options = TransferOptions {
                    compress: true,
                    encrypt,
                    ..Default::default()
                }
                .with_block_size(block);
                let label = format!("encode-{tag}-{}k", block / 1024);
                group.bench_with_input(BenchmarkId::new(label, threads), &data, |b, d| {
                    b.iter(|| encode_blocks(&pool, d, &options, PASSWORD, TRANSFER_ID))
                });
                let encoded = encode_blocks(&pool, &data, &options, PASSWORD, TRANSFER_ID);
                let label = format!("decode-{tag}-{}k", block / 1024);
                group.bench_with_input(BenchmarkId::new(label, threads), &encoded, |b, e| {
                    b.iter(|| decode_blocks(&pool, e, &options, PASSWORD, TRANSFER_ID).unwrap())
                });
            }
        }
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("transfer_parallel");
    bench_transfer_parallel(&mut h);
    h.finish();
}
