//! C9: VCS operation costs — the paper's §1 motivation is that moving UDFs
//! into project files makes version control possible; this measures that
//! the mini-VCS stays fast at realistic history sizes.

use devharness::bench::{BenchmarkId, Harness};
use minivcs::{diff_lines, Repository};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("devudf-bench-vcs-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench_commit(h: &mut Harness) {
    let mut group = h.benchmark_group("vcs");
    group.sample_size(10);

    group.bench_function("add_commit_small_file", |b| {
        let dir = temp_dir("commit");
        let repo = Repository::init(&dir).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::fs::write(dir.join("udf.py"), format!("return {i}\n")).unwrap();
            repo.add("udf.py").unwrap();
            repo.commit(&format!("edit {i}"), "dev").unwrap()
        });
        std::fs::remove_dir_all(&dir).ok();
    });

    // Log traversal over a prebuilt history.
    for commits in [10usize, 100] {
        let dir = temp_dir(&format!("log-{commits}"));
        let repo = Repository::init(&dir).unwrap();
        for i in 0..commits {
            std::fs::write(dir.join("udf.py"), format!("return {i}\n")).unwrap();
            repo.add("udf.py").unwrap();
            repo.commit(&format!("edit {i}"), "dev").unwrap();
        }
        group.bench_with_input(BenchmarkId::new("log", commits), &commits, |b, _| {
            b.iter(|| repo.log().unwrap())
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn bench_diff(h: &mut Harness) {
    let mut group = h.benchmark_group("vcs_diff");
    for lines in [50usize, 500] {
        let old: String = (0..lines).map(|i| format!("line {i}\n")).collect();
        let new = old.replace(&format!("line {}", lines / 2), "edited line");
        group.bench_with_input(
            BenchmarkId::new("one_line_edit", lines),
            &(old, new),
            |b, (old, new)| b.iter(|| diff_lines(old, new)),
        );
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("vcs");
    bench_commit(&mut h);
    bench_diff(&mut h);
    h.finish();
}
