//! C8: codec microbenchmarks — LZ compression, ChaCha20, SHA-256, pickle.

use devharness::bench::{BenchmarkId, Harness, Throughput};
use pylite::{pickle, Array, Value};

fn csv_like(len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 32);
    let mut i = 0u64;
    while out.len() < len {
        out.extend_from_slice(format!("{},{},row-{}\n", i, i * 2, i % 7).as_bytes());
        i += 1;
    }
    out.truncate(len);
    out
}

fn random_bytes(len: usize) -> Vec<u8> {
    let mut rng = devharness::Rng::new(0x9e37_79b9_7f4a_7c15);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn bench_lz(h: &mut Harness) {
    let mut group = h.benchmark_group("lz");
    for (label, data) in [
        ("csv_1MiB", csv_like(1 << 20)),
        ("random_1MiB", random_bytes(1 << 20)),
        ("zeros_1MiB", vec![0u8; 1 << 20]),
    ] {
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("compress", label), &data, |b, d| {
            b.iter(|| codecs::lz::compress(d))
        });
        let compressed = codecs::lz::compress(&data);
        group.bench_with_input(
            BenchmarkId::new("decompress", label),
            &compressed,
            |b, d| b.iter(|| codecs::lz::decompress(d).unwrap()),
        );
    }
    group.finish();
}

fn bench_crypto(h: &mut Harness) {
    let mut group = h.benchmark_group("crypto");
    let data = csv_like(1 << 20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    let key = [7u8; 32];
    let nonce = [1u8; 12];
    group.bench_function("chacha20_1MiB", |b| {
        b.iter(|| codecs::chacha20::xor_stream(&key, &nonce, 1, &data))
    });
    group.bench_function("sha256_1MiB", |b| b.iter(|| codecs::sha256(&data)));
    group.bench_function("kdf_derive_key", |b| {
        b.iter(|| codecs::derive_key("monetdb", b"devudf-transfer-v1"))
    });
    group.finish();
}

fn bench_pickle(h: &mut Harness) {
    let mut group = h.benchmark_group("pickle");
    for rows in [1_000usize, 100_000] {
        let mut d = pylite::value::Dict::new();
        d.insert(
            Value::str("column"),
            Value::array(Array::Int((0..rows as i64).collect())),
        )
        .unwrap();
        let v = Value::dict(d);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("dumps_int_column", rows), &v, |b, v| {
            b.iter(|| pickle::dumps(v).unwrap())
        });
        let blob = pickle::dumps(&v).unwrap();
        group.bench_with_input(BenchmarkId::new("loads_int_column", rows), &blob, |b, d| {
            b.iter(|| pickle::loads(d).unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("codecs");
    bench_lz(&mut h);
    bench_crypto(&mut h);
    bench_pickle(&mut h);
    h.finish();
}
