//! C7: import/export scaling with UDF count and body size (plugin
//! responsiveness — the paper's Figure 3 dialogs must stay interactive).

use devharness::bench::{BenchmarkId, Harness};
use devudf_bench::bench_session;
use wireproto::{Server, ServerConfig};

fn server_with_udfs(n: usize, body_lines: usize) -> Server {
    Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), move |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        db.execute("INSERT INTO numbers VALUES (1), (2)").unwrap();
        for i in 0..n {
            let mut body = String::from("acc = 0\n");
            for j in 0..body_lines {
                body.push_str(&format!("acc = acc + {j}\n"));
            }
            body.push_str("return acc + sum(column)\n");
            db.execute(&format!(
                    "CREATE FUNCTION udf_{i}(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {{\n{body}}}"
                ))
                .unwrap();
        }
    })
}

fn bench_import_export(h: &mut Harness) {
    let mut group = h.benchmark_group("import_export");
    group.sample_size(10);
    for n in [1usize, 16, 64] {
        let server = server_with_udfs(n, 20);
        let mut dev = bench_session(&server, &format!("bench-impexp-{n}"));
        group.bench_with_input(BenchmarkId::new("import_all", n), &n, |b, _| {
            b.iter(|| dev.import_all().unwrap())
        });
        let names = dev.project.udf_names().unwrap();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        group.bench_with_input(BenchmarkId::new("export_all", n), &n, |b, _| {
            b.iter(|| dev.export(&refs).unwrap())
        });
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
    // Body-size sweep at a fixed count.
    for lines in [10usize, 100, 500] {
        let server = server_with_udfs(4, lines);
        let mut dev = bench_session(&server, &format!("bench-impexp-lines-{lines}"));
        group.bench_with_input(
            BenchmarkId::new("import_by_body_lines", lines),
            &lines,
            |b, _| b.iter(|| dev.import_all().unwrap()),
        );
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("import_export");
    bench_import_export(&mut h);
    h.finish();
}
