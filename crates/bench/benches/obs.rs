//! Telemetry overhead benchmark: what does instrumentation cost?
//!
//! Two groups. `obs_primitive` measures the raw primitives — a counter
//! bump, a histogram record, an open/close span — plus the same
//! operations with telemetry runtime-disabled (`obs::set_enabled(false)`,
//! the single-relaxed-load fast path). `obs_pipeline` measures the
//! *instrumented* wire pipeline (`ping` and a small `SELECT` on the
//! in-process transport, exactly the C10 shape) with telemetry on vs off,
//! so the delta against `BENCH_rpc.json` is the end-to-end cost of the
//! counters, histograms and spans sprinkled through client, server and
//! engine.
//!
//! Writes `BENCH_obs.json` (schema in EXPERIMENTS.md, claim C11).

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::bench_server;
use wireproto::Client;

fn bench_primitives(h: &mut Harness) {
    let mut group = h.benchmark_group("obs_primitive");
    group.throughput(Throughput::Elements(1));
    for (mode, on) in [("on", true), ("off", false)] {
        obs::set_enabled(on);
        group.bench_with_input(BenchmarkId::new("counter_inc", mode), &on, |b, _| {
            b.iter(|| obs::counter!("bench.obs.counter").inc())
        });
        group.bench_with_input(BenchmarkId::new("histogram_record", mode), &on, |b, _| {
            let mut v = 0u64;
            b.iter(|| {
                v = v.wrapping_add(2_654_435_761);
                obs::histogram!("bench.obs.hist").record(v & 0xffff)
            })
        });
        group.bench_with_input(BenchmarkId::new("span_open_close", mode), &on, |b, _| {
            b.iter(|| {
                let _span = obs::trace::span("bench.obs.span");
            })
        });
    }
    obs::set_enabled(true);
    group.finish();
}

fn bench_pipeline(h: &mut Harness) {
    let server = bench_server(1_000);
    let mut group = h.benchmark_group("obs_pipeline");
    group.throughput(Throughput::Elements(1));
    // Uninstrumented first, so any residual warm-up advantage favours the
    // baseline, not the claim under test.
    for (mode, on) in [("uninstrumented", false), ("instrumented", true)] {
        obs::set_enabled(on);
        let mut client = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
        // Engine/allocator warm-up outside the measured window: cold first
        // iterations otherwise skew whichever mode runs first by far more
        // than the instrumentation costs.
        for _ in 0..2_000 {
            client.ping().unwrap();
            client.query("SELECT sum(i) FROM numbers").unwrap();
        }
        group.bench_with_input(BenchmarkId::new("ping", mode), &on, |b, _| {
            b.iter(|| client.ping().is_ok())
        });
        group.bench_with_input(BenchmarkId::new("select", mode), &on, |b, _| {
            b.iter(|| client.query("SELECT sum(i) FROM numbers").is_ok())
        });
    }
    obs::set_enabled(true);
    group.finish();
    server.shutdown();
}

fn main() {
    let mut h = Harness::new("obs");
    bench_primitives(&mut h);
    bench_pipeline(&mut h);
    h.finish();
}
