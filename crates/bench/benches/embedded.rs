//! The cost of the wire: embedded vs TCP input extraction (C18).
//!
//! The paper's extract function ships the UDF's input columns from the
//! server into the IDE — over a socket, through pickle + frame codecs.
//! "MonetDBLite mode" (DESIGN §17) removes every one of those steps:
//! the embedded transport calls the engine in-process and hands the
//! live `pylite` value across, zero bytes serialized. This suite prices
//! exactly that difference on a 200 000-row extract, with the in-proc
//! channel transport (frames + pickle, no socket) as the midpoint that
//! splits "codec cost" from "socket cost".
//!
//! Writes `BENCH_embedded.json` (schema in EXPERIMENTS.md); the
//! embedded-beats-TCP ratio is enforced by `bench_guard`.

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::{bench_server, create_mean_deviation, LISTING4_BODY};
use monetlite::Engine;
use wireproto::{Client, ClientOptions, Embedded, EngineTransport, TransferOptions};

const ROWS: usize = 200_000;
const QUERY: &str = "SELECT mean_deviation(i) FROM numbers";
const UDF: &str = "mean_deviation";

fn bench_extract(h: &mut Harness) {
    let mut group = h.benchmark_group("extract");
    group.sample_size(12);
    group.throughput(Throughput::Elements(ROWS as u64));

    // TCP: frames + pickle + a real loopback socket.
    let server = bench_server(ROWS);
    let addr = server.listen_tcp().unwrap();
    let mut tcp =
        Client::connect_tcp_with(addr, "monetdb", "monetdb", "demo", ClientOptions::default())
            .unwrap();
    group.bench_with_input(BenchmarkId::new("tcp", ROWS), &ROWS, |b, _| {
        b.iter(|| {
            tcp.extract_inputs(QUERY, UDF, TransferOptions::plain())
                .unwrap()
        })
    });

    // In-proc channel: frames + pickle, no socket.
    let mut inproc = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    group.bench_with_input(BenchmarkId::new("inproc", ROWS), &ROWS, |b, _| {
        b.iter(|| {
            inproc
                .extract_inputs(QUERY, UDF, TransferOptions::plain())
                .unwrap()
        })
    });
    server.shutdown();

    // Embedded: the engine in this process; no frames, no pickle.
    let db = Engine::new();
    devudf_bench::seed_numbers(&db, ROWS);
    db.execute(&create_mean_deviation(LISTING4_BODY)).unwrap();
    let mut embedded = Embedded::from_engine(db);
    group.bench_with_input(BenchmarkId::new("embedded", ROWS), &ROWS, |b, _| {
        b.iter(|| {
            embedded
                .extract_inputs(QUERY, UDF, TransferOptions::plain())
                .unwrap()
        })
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("embedded");
    bench_extract(&mut h);
    h.finish();
}
