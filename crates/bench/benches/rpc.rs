//! RPC robustness benchmark: what does the retry layer cost?
//!
//! Measures client round trips (`ping` and a small `SELECT`) over the
//! in-process transport at three deterministically injected fault rates —
//! 0 % (pure wrapping overhead), 1 % and 10 % (`FaultPolicy::lossy`,
//! half drops / half corruptions). The retrying client uses zero backoff
//! so the numbers isolate the *retry machinery* (extra round trips,
//! reconnect + reauth) from deliberate sleeping; production policies add
//! backoff on top.
//!
//! Writes `BENCH_rpc.json` (schema in EXPERIMENTS.md).

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::bench_server;
use wireproto::{Client, ClientOptions, FaultPolicy, RetryPolicy};

/// Enough attempts that a benchmark run of ~10^5 iterations at a 10 %
/// fault rate has a negligible chance of exhausting the budget, and no
/// backoff so the measurement is retry work, not sleep.
fn bench_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        initial_backoff: std::time::Duration::ZERO,
        max_backoff: std::time::Duration::ZERO,
        deadline: None,
    }
}

fn bench_rpc(h: &mut Harness) {
    let server = bench_server(1_000);
    let mut group = h.benchmark_group("rpc_round_trip");
    group.throughput(Throughput::Elements(1));
    for fault_pct in [0u32, 1, 10] {
        let options = ClientOptions {
            retry: bench_retry(),
            fault: Some(FaultPolicy::lossy(
                0xbead + u64::from(fault_pct),
                f64::from(fault_pct) / 100.0,
            )),
            ..ClientOptions::default()
        };
        let mut client =
            Client::connect_in_proc_with(&server, "monetdb", "monetdb", "demo", options).unwrap();
        group.bench_with_input(
            BenchmarkId::new("ping", format!("{fault_pct}pct")),
            &fault_pct,
            |b, _| b.iter(|| client.ping().is_ok()),
        );
        group.bench_with_input(
            BenchmarkId::new("select", format!("{fault_pct}pct")),
            &fault_pct,
            |b, _| b.iter(|| client.query("SELECT sum(i) FROM numbers").is_ok()),
        );
    }
    // Reference point: a client with retries disabled on a clean link.
    let mut bare = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    group.bench_with_input(BenchmarkId::new("ping", "no-retry-layer"), &0u32, |b, _| {
        b.iter(|| bare.ping().is_ok())
    });
    group.finish();
    server.shutdown();
}

fn main() {
    let mut h = Harness::new("rpc");
    bench_rpc(&mut h);
    h.finish();
}
