//! C5: operator-at-a-time vs tuple-at-a-time UDF invocation (paper §2.4).

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::seed_numbers;
use monetlite::{Engine, ExecutionModel};

fn bench_models(h: &mut Harness) {
    let mut group = h.benchmark_group("udf_invocation_model");
    group.sample_size(10);
    for rows in [100usize, 1_000, 10_000] {
        let db = Engine::new();
        seed_numbers(&db, rows);
        db.execute(
            "CREATE FUNCTION inc(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i + 1 }",
        )
        .unwrap();
        group.throughput(Throughput::Elements(rows as u64));

        db.set_model(ExecutionModel::OperatorAtATime);
        group.bench_with_input(
            BenchmarkId::new("operator_at_a_time", rows),
            &rows,
            |b, _| b.iter(|| db.execute("SELECT inc(i) FROM numbers").unwrap()),
        );

        db.set_model(ExecutionModel::TupleAtATime);
        group.bench_with_input(BenchmarkId::new("tuple_at_a_time", rows), &rows, |b, _| {
            b.iter(|| db.execute("SELECT inc(i) FROM numbers").unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("exec_models");
    bench_models(&mut h);
    h.finish();
}
