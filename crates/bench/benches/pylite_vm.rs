//! C14: bytecode VM vs. AST walker on the paper's two scenario UDFs.
//!
//! Measures the cost of one local UDF call under each pylite execution
//! engine (DESIGN §13). The module invoking the UDF is parsed once; the
//! function body is compiled once through the interpreter's code cache,
//! so steady-state iterations measure pure execution — exactly the cost
//! a developer pays per F5 in the edit→run→debug loop.

use std::rc::Rc;

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::MEAN_DEVIATION_FIXED_BODY;
use pylite::{Array, ExecMode, FsProvider, Interp, MemFs, Value};

const MODES: [ExecMode; 2] = [ExecMode::Ast, ExecMode::Bytecode];

/// Scenario A: `mean_deviation` over an integer column (paper Listing 4,
/// fixed body) — arithmetic-heavy loops, the classic VM-friendly shape.
fn bench_scenario_a(h: &mut Harness) {
    let mut group = h.benchmark_group("scenario_a");
    group.sample_size(40);
    let def = format!(
        "def mean_deviation(column):\n{}",
        MEAN_DEVIATION_FIXED_BODY
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let call = pylite::parse_module("result = mean_deviation(col)\n").unwrap();
    for rows in [1_000usize, 10_000] {
        let col: Vec<i64> = (0..rows as i64).map(|i| i % 97).collect();
        group.throughput(Throughput::Elements(rows as u64));
        for mode in MODES {
            let mut interp = Interp::new();
            interp.set_exec_mode(mode);
            interp.eval_module(&def).unwrap();
            interp.set_global("col", Value::array(Array::Int(col.clone())));
            group.bench_with_input(BenchmarkId::new(mode.as_str(), rows), &rows, |b, _| {
                b.iter(|| interp.run_module(&call).unwrap())
            });
        }
    }
    group.finish();
}

/// Scenario B: `loadnumbers` — CSV parsing over a virtual directory
/// (paper Listing 5, fixed loop bound) — string- and IO-shaped work.
fn bench_scenario_b(h: &mut Harness) {
    let mut group = h.benchmark_group("scenario_b");
    group.sample_size(40);
    let fs = Rc::new(MemFs::new());
    let files = 8usize;
    let lines_per_file = 200usize;
    for f in 0..files {
        let content: String = (0..lines_per_file)
            .map(|i| format!("{}\n", (f * lines_per_file + i) % 1000))
            .collect();
        fs.write(&format!("data/part{f}.csv"), content.as_bytes())
            .unwrap();
    }
    let def = concat!(
        "import os\n",
        "def loadnumbers(path):\n",
        "    files = os.listdir(path)\n",
        "    result = []\n",
        "    for i in range(0, len(files)):\n",
        "        file = open(path + '/' + files[i], 'r')\n",
        "        for line in file:\n",
        "            result.append(int(line))\n",
        "    return result\n",
    );
    let call = pylite::parse_module("result = loadnumbers('data')\n").unwrap();
    group.throughput(Throughput::Elements((files * lines_per_file) as u64));
    for mode in MODES {
        let mut interp = Interp::with_fs(fs.clone());
        interp.set_exec_mode(mode);
        interp.eval_module(def).unwrap();
        group.bench_function(mode.as_str(), |b| {
            b.iter(|| interp.run_module(&call).unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("pylite_vm");
    bench_scenario_a(&mut h);
    bench_scenario_b(&mut h);
    h.finish();
}
