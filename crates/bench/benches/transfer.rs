//! C1–C3: data-transfer benchmark — the paper's three transfer options
//! (compression, encryption, sampling) across payload sizes.
//!
//! Regenerates the shape behind §2.1's claims: compression "leading to
//! faster transfer times", sampling "will alleviate the data transfer
//! overhead", encryption as an affordable option for sensitive data.

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::{bench_server, bench_session};
use wireproto::TransferOptions;

fn bench_transfer(h: &mut Harness) {
    let mut group = h.benchmark_group("transfer_extract");
    group.sample_size(10);
    for rows in [1_000usize, 10_000, 100_000] {
        let server = bench_server(rows);
        let mut dev = bench_session(&server, &format!("bench-transfer-{rows}"));
        dev.import_all().unwrap();
        group.throughput(Throughput::Elements(rows as u64));
        let cases = [
            ("plain", TransferOptions::plain()),
            ("compressed", TransferOptions::compressed()),
            ("encrypted", TransferOptions::encrypted()),
            (
                "compressed+encrypted",
                TransferOptions {
                    compress: true,
                    encrypt: true,
                    sample: None,
                    ..Default::default()
                },
            ),
            ("sample-10pct", TransferOptions::sampled(rows / 10)),
            ("sample-1pct", TransferOptions::sampled(rows / 100)),
        ];
        for (label, opts) in cases {
            group.bench_with_input(BenchmarkId::new(label, rows), &opts, |b, opts| {
                b.iter(|| {
                    dev.client()
                        .borrow_mut()
                        .extract_inputs(
                            "SELECT mean_deviation(i) FROM numbers",
                            "mean_deviation",
                            *opts,
                        )
                        .unwrap()
                })
            });
        }
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("transfer");
    bench_transfer(&mut h);
    h.finish();
}
