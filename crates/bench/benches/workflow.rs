//! C4: one fix-iteration under each workflow.
//!
//! Traditional (paper §1): re-`CREATE FUNCTION` on the server + rerun the
//! SQL query there — the full input is processed server-side every time.
//! devUDF: edit the local file + run locally on the already-transferred
//! inputs. The gap grows with the input size and the iteration count.

use devharness::bench::{BenchmarkId, Harness};
use devudf_bench::{bench_server, bench_session, create_mean_deviation, LISTING4_BODY};

fn bench_workflows(h: &mut Harness) {
    let mut group = h.benchmark_group("workflow_iteration");
    group.sample_size(10);
    for rows in [1_000usize, 20_000] {
        // Traditional: one iteration = CREATE OR REPLACE + server-side run.
        let server = bench_server(rows);
        let mut dev = bench_session(&server, &format!("bench-wf-trad-{rows}"));
        group.bench_with_input(BenchmarkId::new("traditional", rows), &rows, |b, _| {
            b.iter(|| {
                dev.server_query(&create_mean_deviation(LISTING4_BODY))
                    .unwrap();
                dev.server_query("SELECT mean_deviation(i) FROM numbers")
                    .unwrap()
            })
        });
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();

        // devUDF: one iteration = write local file + local run (inputs are
        // already on the developer machine).
        let server = bench_server(rows);
        let mut dev = bench_session(&server, &format!("bench-wf-dev-{rows}"));
        dev.import_all().unwrap();
        dev.fetch_inputs("mean_deviation").unwrap();
        let script = dev.project.read_udf("mean_deviation").unwrap();
        group.bench_with_input(BenchmarkId::new("devudf_local", rows), &rows, |b, _| {
            b.iter(|| {
                dev.project.write_udf("mean_deviation", &script).unwrap();
                dev.run_udf("mean_deviation").unwrap()
            })
        });
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("workflow");
    bench_workflows(&mut h);
    h.finish();
}
