//! C16: the cost of observability on Scenario A (vectorized straight-line
//! `mean_deviation`, operator-at-a-time, 10 000 rows), measured end-to-end
//! through the SQL engine in five configurations:
//!
//!   - `baseline` — telemetry hard-disabled (`obs::set_enabled(false)`)
//!   - `off`      — telemetry enabled but nothing listening: the steady
//!     state every query pays. Budget: ≤ 1% over `baseline`.
//!   - `traced`   — a per-query trace capture is live, so every
//!     `span_active` in the engine records. Budget: ≤ 5% over `off`.
//!   - `analyze`  — the query runs under `EXPLAIN ANALYZE` (operator
//!     timers + plan-row collection); informational.
//!   - `profile`  — the line profiler is armed and the UDF runs on the
//!     bytecode VM (inlining off — a profiled line must actually
//!     execute); informational, not comparable to the inlined rows.
//!
//! `bench_guard` holds the committed baseline to the two budgets and
//! re-measures with looser, noise-tolerant floors (EXPERIMENTS C16).

use devharness::bench::{BenchmarkId, Harness, Throughput};
use devudf_bench::{seed_numbers, MEAN_DEVIATION_STRAIGHT_BODY};
use monetlite::{Engine, ExecutionModel};
use pylite::ExecMode;

const ROWS: usize = 10_000;
const QUERY: &str = "SELECT f(i) FROM numbers";

fn engine(inline: bool) -> Engine {
    let db = Engine::new();
    db.set_model(ExecutionModel::OperatorAtATime);
    db.set_exec_mode(ExecMode::Bytecode);
    db.set_inline(inline);
    seed_numbers(&db, ROWS);
    db.execute(&format!(
        "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {{\n{MEAN_DEVIATION_STRAIGHT_BODY}}}"
    ))
    .unwrap();
    db
}

fn main() {
    let mut h = Harness::new("profile");
    let mut group = h.benchmark_group("scenario_a");
    group.sample_size(40);
    group.throughput(Throughput::Elements(ROWS as u64));

    let db = engine(true);

    obs::set_enabled(false);
    group.bench_with_input(BenchmarkId::new("baseline", ROWS), &ROWS, |b, _| {
        b.iter(|| db.execute(QUERY).unwrap())
    });
    obs::set_enabled(true);

    group.bench_with_input(BenchmarkId::new("off", ROWS), &ROWS, |b, _| {
        b.iter(|| db.execute(QUERY).unwrap())
    });

    group.bench_with_input(BenchmarkId::new("traced", ROWS), &ROWS, |b, _| {
        b.iter(|| {
            let trace = obs::trace::new_trace_id();
            obs::trace::start_capture(trace);
            let result = {
                let _ctx = obs::trace::enter_context(obs::trace::SpanContext { trace, parent: 0 });
                db.execute(QUERY).unwrap()
            };
            let spans = obs::trace::take_capture(trace);
            (result, spans)
        })
    });

    group.bench_with_input(BenchmarkId::new("analyze", ROWS), &ROWS, |b, _| {
        b.iter(|| {
            db.execute("EXPLAIN ANALYZE SELECT f(i) FROM numbers")
                .unwrap()
        })
    });

    // The line profiler only sees lines the interpreter executes: run the
    // same body un-inlined on the bytecode VM with the profiler armed.
    let interpreted = engine(false);
    obs::profile::set_active(true);
    group.bench_with_input(BenchmarkId::new("profile", ROWS), &ROWS, |b, _| {
        b.iter(|| interpreted.execute(QUERY).unwrap())
    });
    obs::profile::set_active(false);
    obs::profile::reset();

    group.finish();
    h.finish();
}
