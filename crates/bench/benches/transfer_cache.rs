//! C13: content-addressed extract cache — bytes on the wire and latency
//! for the three iteration-loop cases of DESIGN §12:
//!
//! * `cold` — first fetch ever: the full payload crosses the wire (plus
//!   the digest table the delta reply carries),
//! * `warm-unchanged` — nothing changed since the last fetch: the server
//!   answers `NotModified` from the epoch check alone, zero payload bytes,
//! * `warm-1-block-dirty` — one row changed: only the block(s) covering
//!   its bytes are reshipped, the rest reassembles from the client cache.
//!
//! Each benchmark's `throughput.per_iter` records the measured payload
//! bytes-on-wire for its scenario, so the committed
//! `BENCH_transfer_cache.json` doubles as the bytes table in README's
//! "cost of the iteration loop" section.

use devharness::bench::{Harness, Throughput};
use devudf_bench::bench_server;
use wireproto::{Client, ClientOptions, Server, TransferOptions};

const QUERY: &str = "SELECT mean_deviation(i) FROM numbers";
const UDF: &str = "mean_deviation";
const ROWS: usize = 200_000;

fn cached_client(server: &Server) -> Client {
    let options = ClientOptions {
        cache: Some(4),
        ..ClientOptions::default()
    };
    Client::connect_in_proc_with(server, "monetdb", "monetdb", "demo", options).unwrap()
}

/// Toggle the sentinel row between two same-width values: exactly one
/// localized byte range of the pickled column changes per call.
fn dirty_one_row(client: &mut Client, flip: &mut bool) {
    let (from, to) = if *flip { (9002, 9001) } else { (9001, 9002) };
    *flip = !*flip;
    client
        .query(&format!("UPDATE numbers SET i = {to} WHERE i = {from}"))
        .unwrap();
}

fn bench_transfer_cache(h: &mut Harness, server: &Server) {
    let options = TransferOptions::plain().with_block_size(64 * 1024);
    let mut group = h.benchmark_group("transfer_cache");
    group.sample_size(10);

    // Measure each scenario's bytes-on-wire once, up front, so the
    // recorded throughput is the real wire cost (not a nominal size).
    let cold_wire = {
        let mut c = cached_client(server);
        c.extract_inputs(QUERY, UDF, options).unwrap().1.wire_len
    };
    let (warm_wire, dirty_wire) = {
        let mut c = cached_client(server);
        c.extract_inputs(QUERY, UDF, options).unwrap();
        let warm = c.extract_inputs(QUERY, UDF, options).unwrap().1.wire_len;
        let mut flip = false;
        dirty_one_row(&mut c, &mut flip);
        let dirty = c.extract_inputs(QUERY, UDF, options).unwrap().1.wire_len;
        (warm, dirty)
    };
    println!("bytes on the wire: cold={cold_wire} warm-unchanged={warm_wire} warm-1-block-dirty={dirty_wire}");

    // Cold: a fresh cache every iteration (the in-proc login round trip
    // is noise next to the multi-megabyte payload).
    group.throughput(Throughput::Bytes(cold_wire as u64));
    group.bench_function(format!("cold/{ROWS}"), |b| {
        b.iter(|| {
            let mut c = cached_client(server);
            c.extract_inputs(QUERY, UDF, options).unwrap()
        })
    });

    // Warm, unchanged: every iteration is a NotModified round trip.
    group.throughput(Throughput::Bytes(warm_wire as u64));
    let mut warm = cached_client(server);
    warm.extract_inputs(QUERY, UDF, options).unwrap();
    group.bench_function(format!("warm-unchanged/{ROWS}"), |b| {
        b.iter(|| warm.extract_inputs(QUERY, UDF, options).unwrap())
    });

    // Warm, one row dirtied per iteration: epoch check fails, the delta
    // reply reships only the block(s) covering the changed bytes.
    group.throughput(Throughput::Bytes(dirty_wire as u64));
    let mut dirty = cached_client(server);
    dirty.extract_inputs(QUERY, UDF, options).unwrap();
    let mut flip = false;
    group.bench_function(format!("warm-1-block-dirty/{ROWS}"), |b| {
        b.iter(|| {
            dirty_one_row(&mut dirty, &mut flip);
            dirty.extract_inputs(QUERY, UDF, options).unwrap()
        })
    });
    group.finish();
}

fn main() {
    let server = bench_server(ROWS);
    // A unique sentinel value the dirty scenario toggles; appended last so
    // its bytes land in the final pickle block.
    let mut seed = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    seed.query("INSERT INTO numbers VALUES (9001)").unwrap();
    let mut h = Harness::new("transfer_cache");
    bench_transfer_cache(&mut h, &server);
    h.finish();
    server.shutdown();
}
