//! Shared harness code for the devUDF reproduction benchmarks.
//!
//! Every table, figure and efficiency claim of the paper maps to a target
//! in this crate (see DESIGN.md §5):
//!
//! * `table1` (bin) — Table 1, the IDE market-share survey,
//! * `figures` (bin) — Figures 1–3 as text renderings,
//! * `report` (bin) — a deterministic paper-vs-measured summary feeding
//!   EXPERIMENTS.md,
//! * `devharness::bench` benches: `transfer` (C1–C3), `workflow` (C4),
//!   `exec_models` (C5), `interp` (C6), `import_export` (C7),
//!   `codecs_bench` (C8), `vcs` (C9). Each writes a `BENCH_<suite>.json`
//!   artifact at the workspace root (see EXPERIMENTS.md for the schema).

use monetlite::Engine;
use wireproto::{Client, Server, ServerConfig};

/// Table 1 of the paper: "Most Popular Development Environments" — PYPL
/// Top-IDE-index survey data as cited (reference \[2\], Pierre Carbonnelle,
/// 2018). This
/// is external survey data that cannot be re-measured; it is embedded
/// verbatim so the table regenerates byte-for-byte.
pub const TABLE1: &[(&str, f64, &str)] = &[
    ("Eclipse", 25.2, "IDE"),
    ("Visual Studio", 19.5, "IDE"),
    ("Android Studio", 9.5, "IDE"),
    ("Vim", 7.9, "Text Editor"),
    ("XCode", 5.2, "IDE"),
    ("IntelliJ", 4.8, "IDE"),
    ("NetBeans", 4.0, "IDE"),
    ("Xamarin", 3.8, "IDE"),
    ("Komodo", 3.4, "IDE"),
    ("Sublime Text", 3.3, "Text Editor"),
    ("Visual Studio Code", 3.3, "Text Editor"),
    ("PyCharm", 2.3, "IDE"),
];

/// Render Table 1 in the paper's layout.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str("Table 1: Most Popular Development Environments.\n");
    out.push_str("+--------------------+--------------+-------------+\n");
    out.push_str("| Name               | Market Share | Type        |\n");
    out.push_str("+====================+==============+=============+\n");
    for (name, share, kind) in TABLE1 {
        out.push_str(&format!("| {name:<18} | {share:>11.1}% | {kind:<11} |\n"));
    }
    out.push_str("+--------------------+--------------+-------------+\n");
    let ide_share: f64 = TABLE1
        .iter()
        .filter(|(_, _, k)| *k == "IDE")
        .map(|(_, s, _)| s)
        .sum();
    let editor_share: f64 = TABLE1
        .iter()
        .filter(|(_, _, k)| *k == "Text Editor")
        .map(|(_, s, _)| s)
        .sum();
    out.push_str(&format!(
        "IDEs: {ide_share:.1}% vs text editors: {editor_share:.1}% — \
the paper's argument that IDEs dominate development.\n"
    ));
    out
}

/// The buggy `mean_deviation` body of paper Listing 4.
pub const LISTING4_BODY: &str = "\
mean = 0
for i in range(0, len(column)):
    mean += column[i]
mean = mean / len(column)
distance = 0
for i in range(0, len(column)):
    distance += column[i] - mean
deviation = distance / len(column)
return deviation
";

/// The corrected `mean_deviation` (the Scenario A fix).
pub const MEAN_DEVIATION_FIXED_BODY: &str = "\
mean = 0
for i in range(0, len(column)):
    mean += column[i]
mean = mean / len(column)
distance = 0
for i in range(0, len(column)):
    distance += abs(column[i] - mean)
deviation = distance / len(column)
return deviation
";

/// The loop-free `mean_deviation`: same math as
/// [`MEAN_DEVIATION_FIXED_BODY`] but written against vectorized
/// aggregates, which is the shape the engine's Froid-style inliner
/// (DESIGN §14) compiles straight into relational operators.
pub const MEAN_DEVIATION_STRAIGHT_BODY: &str = "\
mean = sum(column) / len(column)
return sum(abs(column - mean)) / len(column)
";

/// A per-row scoring UDF with branches — straight-line, so it inlines to
/// a CASE — used as the tuple-at-a-time inlining scenario (Scenario B of
/// EXPERIMENTS C15).
pub const CLAMP_SCORE_BODY: &str = "\
score = column * 3 + 7
if score > 500:
    return 500.0
elif score < 50:
    return score / 2
return score * 1.0
";

/// `CREATE FUNCTION` wrapping a body as the paper's Listing 4 declares it.
pub fn create_mean_deviation(body: &str) -> String {
    format!(
        "CREATE OR REPLACE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {{\n{body}}}"
    )
}

/// Populate `numbers(i INTEGER)` with `rows` realistic sensor-style values:
/// a slowly drifting level plus small noise. Real columns are locally
/// correlated, which is exactly why the paper's compression option pays off.
pub fn seed_numbers(db: &Engine, rows: usize) {
    db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
    let mut rng = devharness::Rng::new(0x1234_5678);
    let mut values = Vec::with_capacity(rows);
    for idx in 0..rows {
        let level = (idx / 64) % 500; // slow drift with long runs
        let noise = rng.u64_below(4); // small jitter
        values.push(format!("({})", level as u64 + noise));
    }
    // Insert in chunks to keep statements manageable.
    for chunk in values.chunks(2000) {
        db.execute(&format!("INSERT INTO numbers VALUES {}", chunk.join(", ")))
            .unwrap();
    }
}

/// A demo server with `numbers` (given row count) plus the buggy Listing-4
/// UDF, ready for transfer/workflow benchmarks.
pub fn bench_server(rows: usize) -> Server {
    Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), move |db| {
        seed_numbers(db, rows);
        db.execute(&create_mean_deviation(LISTING4_BODY)).unwrap();
    })
}

/// A fresh devUDF session bound to a temp project (caller cleans up).
pub fn bench_session(server: &Server, tag: &str) -> devudf::DevUdf {
    let dir = std::env::temp_dir().join(format!(
        "devudf-bench-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mut settings = devudf::Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    // The codec suites (and bench_guard's baseline ratio) measure the
    // full extract path; with the default-on delta cache every warm
    // iteration would be a NotModified round trip instead. The cache has
    // its own suite, benches/transfer_cache.rs.
    settings.transfer.cache.enabled = false;
    devudf::DevUdf::connect_in_proc(server, settings, &dir).unwrap()
}

/// A fleet of persistent TCP sessions, each on its own thread, fired in
/// bursts: [`SessionFleet::burst`] releases every session for one round
/// of queries and returns when all have finished. Connections persist
/// across bursts so measurements capture steady-state scheduling, not
/// handshakes. Shared by the C17 concurrency sweep
/// (`benches/server_concurrency.rs`) and its `bench_guard` gate.
pub struct SessionFleet {
    go: Vec<std::sync::mpsc::Sender<()>>,
    done: std::sync::mpsc::Receiver<Result<(), String>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl SessionFleet {
    /// Connect `sessions` TCP clients to `addr`, each running `queries`
    /// repetitions of `query` per burst.
    pub fn connect(
        addr: std::net::SocketAddr,
        sessions: usize,
        queries: usize,
        query: &'static str,
        options: wireproto::ClientOptions,
    ) -> SessionFleet {
        let (done_tx, done) = std::sync::mpsc::channel();
        let mut go = Vec::with_capacity(sessions);
        let handles = (0..sessions)
            .map(|_| {
                let (tx, rx) = std::sync::mpsc::channel::<()>();
                go.push(tx);
                let done_tx = done_tx.clone();
                std::thread::spawn(move || {
                    let mut client =
                        match Client::connect_tcp_with(addr, "monetdb", "monetdb", "demo", options)
                        {
                            Ok(c) => c,
                            Err(e) => {
                                let _ = done_tx.send(Err(format!("connect: {e}")));
                                return;
                            }
                        };
                    while rx.recv().is_ok() {
                        let mut outcome = Ok(());
                        for _ in 0..queries {
                            if let Err(e) = client.query(query) {
                                outcome = Err(e.to_string());
                                break;
                            }
                        }
                        let _ = done_tx.send(outcome);
                    }
                })
            })
            .collect();
        SessionFleet { go, done, handles }
    }

    /// Release every session for one round of queries; returns when all
    /// have completed. Panics on any session error.
    pub fn burst(&self) {
        for tx in &self.go {
            tx.send(()).unwrap();
        }
        for _ in 0..self.go.len() {
            self.done.recv().unwrap().unwrap();
        }
    }

    /// Disconnect the fleet and join its threads.
    pub fn join(self) {
        drop(self.go);
        for h in self.handles {
            h.join().unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let rendered = render_table1();
        assert!(rendered.contains("| Eclipse            |        25.2% | IDE"));
        assert!(rendered.contains("| PyCharm            |         2.3% | IDE"));
        assert!(rendered.contains("| Vim                |         7.9% | Text Editor"));
        assert_eq!(TABLE1.len(), 12);
    }

    #[test]
    fn table1_market_shares_sum_plausibly() {
        let total: f64 = TABLE1.iter().map(|(_, s, _)| s).sum();
        assert!((total - 92.2).abs() < 0.01, "paper rows sum to {total}");
    }

    #[test]
    fn listing4_body_is_buggy_and_fix_is_correct() {
        let db = Engine::new();
        seed_numbers(&db, 50);
        db.execute(&create_mean_deviation(LISTING4_BODY)).unwrap();
        let buggy = db
            .execute("SELECT mean_deviation(i) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        match buggy.row(0)[0] {
            monetlite::SqlValue::Double(d) => assert!(d.abs() < 1e-9),
            ref other => panic!("{other:?}"),
        }
        db.execute(&create_mean_deviation(MEAN_DEVIATION_FIXED_BODY))
            .unwrap();
        let fixed = db
            .execute("SELECT mean_deviation(i) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        match fixed.row(0)[0] {
            monetlite::SqlValue::Double(d) => assert!(d > 0.0),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bench_server_and_session_wire_up() {
        let server = bench_server(100);
        let mut dev = bench_session(&server, "selftest");
        dev.import_all().unwrap();
        let outcome = dev.run_udf("mean_deviation").unwrap();
        assert!(matches!(outcome.result, pylite::Value::Float(_)));
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
}
