//! Deterministic paper-vs-measured report feeding EXPERIMENTS.md.
//!
//! Runs every quantified claim (C1–C7 in DESIGN.md §5) once with fixed
//! seeds and prints the measured numbers next to the paper's qualitative
//! claims. For statistically rigorous timings use `cargo bench`; this
//! binary is about *shape* (who wins, by what factor).

use std::time::Instant;

use devudf::workflow;
use devudf_bench::*;
use monetlite::{Engine, ExecutionModel};
use pylite::{Debugger, Interp, LineTracer, Value};
use wireproto::TransferOptions;

fn main() {
    println!("devUDF reproduction — measured report");
    println!("=====================================\n");
    transfer_report();
    extract_ablation_report();
    workflow_report();
    exec_models_report();
    debugger_overhead_report();
    import_export_report();
    codec_report();
}

/// C1–C3: transfer options (compression / sampling / encryption).
fn transfer_report() {
    println!("C1–C3  Transfer options (paper §2.1)");
    println!("  rows     plain      compressed  ratio   encrypted  sample-1%");
    for rows in [10_000usize, 100_000] {
        let server = bench_server(rows);
        let mut dev = bench_session(&server, &format!("report-transfer-{rows}"));
        dev.import_all().unwrap();

        let measure = |opts: TransferOptions| -> usize {
            let (_, stats) = dev
                .client()
                .borrow_mut()
                .extract_inputs(
                    "SELECT mean_deviation(i) FROM numbers",
                    "mean_deviation",
                    opts,
                )
                .unwrap();
            stats.wire_len
        };
        let plain = measure(TransferOptions::plain());
        let compressed = measure(TransferOptions::compressed());
        let encrypted = measure(TransferOptions::encrypted());
        let sampled = measure(TransferOptions::sampled(rows / 100));
        println!(
            "  {rows:>6}  {plain:>8} B  {compressed:>8} B  {:>5.2}  {encrypted:>8} B  {sampled:>8} B",
            compressed as f64 / plain as f64
        );
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
    println!(
        "  claim: compression and sampling shrink the transfer; encryption is size-neutral.\n"
    );
}

/// Ablation: the paper's query-rewriting extract function vs the naive
/// alternative of shipping every referenced table in full. The extract
/// function transfers only the columns the UDF actually consumes.
fn extract_ablation_report() {
    println!("C1b  Extraction ablation: extract function vs naive full-table transfer");
    println!("  rows    extract (1 of 6 cols)   naive SELECT * payload   savings");
    for rows in [10_000usize, 50_000] {
        let server = wireproto::Server::start(
            wireproto::ServerConfig::new("demo", "monetdb", "monetdb"),
            move |db| {
                // A wide table: the UDF only reads one of six columns.
                db.execute(
                    "CREATE TABLE wide (a INTEGER, b INTEGER, c INTEGER, d DOUBLE, e STRING, f INTEGER)",
                )
                .unwrap();
                let mut values = Vec::with_capacity(rows);
                for i in 0..rows {
                    values.push(format!(
                        "({}, {}, {}, {}.5, 'row-{}', {})",
                        i % 100,
                        i % 7,
                        i,
                        i % 3,
                        i % 13,
                        i % 997
                    ));
                }
                for chunk in values.chunks(2000) {
                    db.execute(&format!("INSERT INTO wide VALUES {}", chunk.join(", ")))
                        .unwrap();
                }
                db.execute(
                    "CREATE FUNCTION analyze(a INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return sum(a) / len(a) }",
                )
                .unwrap();
            },
        );
        let mut client =
            wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
        let (_, stats) = client
            .extract_inputs(
                "SELECT analyze(a) FROM wide",
                "analyze",
                TransferOptions::plain(),
            )
            .unwrap();
        // Naive alternative: ship the whole table to the client and slice
        // there; its cost is the encoded result-set frame.
        let table = client
            .query("SELECT * FROM wide")
            .unwrap()
            .into_table()
            .unwrap();
        let naive_bytes = wireproto::Message::ResultSet {
            result: wireproto::message::WireResult::Table(table),
            udf_stdout: String::new(),
        }
        .encode()
        .len();
        println!(
            "  {rows:>5}   {:>18} B   {:>20} B   {:>6.1}x",
            stats.wire_len,
            naive_bytes,
            naive_bytes as f64 / stats.wire_len as f64
        );
        server.shutdown();
    }
    println!(
        "  the rewrite ships only the UDF's inputs — the wider the table, the bigger the win.\n"
    );
}

/// C4: traditional re-CREATE+rerun loop vs devUDF local loop.
fn workflow_report() {
    println!("C4  Development-cycle comparison (paper §1/§2.5)");
    let rows = 50_000;
    let iterations = 10;

    let server = bench_server(rows);
    let mut dev = bench_session(&server, "report-workflow-trad");
    let start = Instant::now();
    let trad = workflow::traditional_workflow(
        &mut dev,
        "CREATE OR REPLACE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON",
        "SELECT mean_deviation(i) FROM numbers",
        iterations,
        |i| {
            LISTING4_BODY.replace(
                "deviation = distance",
                &format!("attempt = {i}\ndeviation = distance"),
            )
        },
    )
    .unwrap();
    let trad_wall = start.elapsed();
    std::fs::remove_dir_all(dev.project.root()).ok();
    server.shutdown();

    let server = bench_server(rows);
    let mut dev = bench_session(&server, "report-workflow-dev");
    let start = Instant::now();
    let devw = workflow::devudf_workflow(&mut dev, "mean_deviation", iterations, |i, original| {
        original.replace(
            "deviation = distance",
            &format!("attempt = {i}\n    deviation = distance"),
        )
    })
    .unwrap();
    let dev_wall = start.elapsed();
    std::fs::remove_dir_all(dev.project.root()).ok();
    server.shutdown();

    println!(
        "  traditional: {iterations} iterations, {} server round trips, {trad_wall:?}",
        trad.server_round_trips
    );
    println!(
        "  devUDF:      {iterations} iterations, {} server round trips, {dev_wall:?}",
        devw.server_round_trips
    );
    println!(
        "  round-trip reduction: {:.1}x (and local runs debug with breakpoints)\n",
        trad.server_round_trips as f64 / devw.server_round_trips as f64
    );
}

/// C5: operator-at-a-time vs tuple-at-a-time UDF invocation (paper §2.4).
fn exec_models_report() {
    println!("C5  UDF invocation models (paper §2.4)");
    println!("  rows    operator-at-a-time  tuple-at-a-time  slowdown");
    for rows in [100usize, 1000, 5000] {
        let db = Engine::new();
        seed_numbers(&db, rows);
        db.execute(
            "CREATE FUNCTION inc(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i + 1 }",
        )
        .unwrap();

        db.set_model(ExecutionModel::OperatorAtATime);
        let start = Instant::now();
        db.execute("SELECT inc(i) FROM numbers").unwrap();
        let oaat = start.elapsed();

        db.set_model(ExecutionModel::TupleAtATime);
        let start = Instant::now();
        db.execute("SELECT inc(i) FROM numbers").unwrap();
        let taat = start.elapsed();

        println!(
            "  {rows:>5}   {oaat:>16.1?}  {taat:>15.1?}  {:>7.1}x",
            taat.as_secs_f64() / oaat.as_secs_f64().max(1e-9)
        );
    }
    println!("  claim: MonetDB's operator-at-a-time amortizes interpreter entry; tuple-at-a-time pays it per row.\n");
}

/// C6: cost of the debug hook (off / trace / breakpoints).
fn debugger_overhead_report() {
    println!("C6  Debugger overhead on mean_deviation (local run)");
    let src = format!(
        "def mean_deviation(column):\n{}\nresult = mean_deviation(col)\n",
        MEAN_DEVIATION_FIXED_BODY
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let col: Vec<i64> = (0..5000).map(|i| i % 97).collect();

    let run = |with_tracer: bool, with_bp: bool| -> std::time::Duration {
        let mut interp = Interp::new();
        interp.set_global("col", Value::array(pylite::Array::Int(col.clone())));
        if with_tracer {
            interp.set_hook(LineTracer::new());
        }
        if with_bp {
            let dbg = Debugger::scripted(vec![]);
            dbg.borrow_mut().add_breakpoint(9999); // never hit
            interp.set_hook(dbg);
        }
        let start = Instant::now();
        interp.eval_module(&src).unwrap();
        start.elapsed()
    };
    let off = run(false, false);
    let trace = run(true, false);
    let bp = run(false, true);
    println!("  hooks off:          {off:?}");
    println!(
        "  line tracer:        {trace:?}  ({:.2}x)",
        trace.as_secs_f64() / off.as_secs_f64()
    );
    println!(
        "  unhit breakpoints:  {bp:?}  ({:.2}x)",
        bp.as_secs_f64() / off.as_secs_f64()
    );
    println!("  claim: interactive debugging is affordable because it runs locally, not in the server.\n");
}

/// C7: import/export scaling with the number of stored UDFs.
fn import_export_report() {
    println!("C7  Import/export scaling");
    println!("  #udfs   import      export");
    for n in [4usize, 16, 64] {
        let server = wireproto::Server::start(
            wireproto::ServerConfig::new("demo", "monetdb", "monetdb"),
            move |db| {
                db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
                db.execute("INSERT INTO numbers VALUES (1), (2)").unwrap();
                for i in 0..n {
                    db.execute(&format!(
                        "CREATE FUNCTION udf_{i}(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {{\nmean = 0\nfor j in range(0, len(column)):\n    mean += column[j]\nreturn mean / len(column) + {i}\n}}"
                    ))
                    .unwrap();
                }
            },
        );
        let mut dev = bench_session(&server, &format!("report-impexp-{n}"));
        let start = Instant::now();
        let report = dev.import_all().unwrap();
        let import_t = start.elapsed();
        assert_eq!(report.imported.len(), n);
        let names: Vec<String> = report.imported.iter().map(|(m, _)| m.clone()).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let start = Instant::now();
        dev.export(&refs).unwrap();
        let export_t = start.elapsed();
        println!("  {n:>5}   {import_t:>9.1?}  {export_t:>9.1?}");
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
    println!();
}

/// C8 (summary): codec throughput on a CSV-like 1 MiB payload.
fn codec_report() {
    println!("C8  Codec micro-summary (1 MiB CSV-like payload)");
    let mut payload = Vec::new();
    let mut i = 0u64;
    while payload.len() < 1 << 20 {
        payload.extend_from_slice(format!("{},{},row-{}\n", i, i * 2, i % 7).as_bytes());
        i += 1;
    }
    let start = Instant::now();
    let compressed = codecs::lz::compress(&payload);
    let ct = start.elapsed();
    let start = Instant::now();
    let back = codecs::lz::decompress(&compressed).unwrap();
    let dt = start.elapsed();
    assert_eq!(back, payload);
    println!(
        "  lz compress:   {:.1} MiB/s, ratio {:.3}",
        payload.len() as f64 / (1 << 20) as f64 / ct.as_secs_f64(),
        compressed.len() as f64 / payload.len() as f64
    );
    println!(
        "  lz decompress: {:.1} MiB/s",
        payload.len() as f64 / (1 << 20) as f64 / dt.as_secs_f64()
    );
    let key = [7u8; 32];
    let nonce = [1u8; 12];
    let start = Instant::now();
    let _ct = codecs::chacha20::xor_stream(&key, &nonce, 1, &payload);
    let et = start.elapsed();
    println!(
        "  chacha20:      {:.1} MiB/s",
        payload.len() as f64 / (1 << 20) as f64 / et.as_secs_f64()
    );
    let start = Instant::now();
    let _h = codecs::sha256(&payload);
    let ht = start.elapsed();
    println!(
        "  sha256:        {:.1} MiB/s",
        payload.len() as f64 / (1 << 20) as f64 / ht.as_secs_f64()
    );
}
