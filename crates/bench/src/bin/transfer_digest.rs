//! Print FNV-1a digests of the bytes-on-wire for a deterministic extract
//! payload across every transfer-option combination.
//!
//! CI runs this twice — `DEVUDF_POOL_THREADS=1` and the default pool —
//! and diffs the output: the chunked container must be byte-identical
//! regardless of how many workers encoded it (DESIGN.md §11).

use pylite::value::Dict;
use pylite::{Array, Value};
use wireproto::transfer::encode_payload;
use wireproto::TransferOptions;

/// Deterministic inputs large enough to span many 64 KiB blocks.
fn inputs() -> Value {
    let mut rng = devharness::Rng::new(0xD16E57);
    let column: Vec<i64> = (0..200_000)
        .map(|i| ((i / 64) % 500) as i64 + rng.u64_below(4) as i64)
        .collect();
    let mut d = Dict::new();
    d.insert(Value::str("column"), Value::array(Array::Int(column)))
        .unwrap();
    Value::dict(d)
}

fn main() {
    let inputs = inputs();
    for (label, compress, encrypt) in [
        ("plain", false, false),
        ("compressed", true, false),
        ("encrypted", false, true),
        ("compressed+encrypted", true, true),
    ] {
        for block_size in [64 * 1024usize, wireproto::DEFAULT_BLOCK_SIZE] {
            let options = TransferOptions {
                compress,
                encrypt,
                ..Default::default()
            }
            .with_block_size(block_size);
            let (payload, raw_len) = encode_payload(&inputs, &options, "monetdb", 7, 11)
                .expect("deterministic payload must encode");
            println!(
                "{label}/{}k raw={raw_len} wire={} fnv1a={:08x}",
                block_size / 1024,
                payload.len(),
                codecs::fnv1a_32(&payload)
            );
        }
    }
}
