//! Regenerate paper Figures 1–3 as text renderings of the live dialog
//! models (the paper's figures are GUI screenshots of exactly these).

use devudf::Settings;
use devudf_ide::HeadlessIde;
use wireproto::{Server, ServerConfig};

fn main() {
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        db.execute("INSERT INTO numbers VALUES (1), (2), (3)")
            .unwrap();
        for name in ["mean_deviation", "loadnumbers", "train_rnforest"] {
            db.execute(&format!(
                "CREATE FUNCTION {name}(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {{ return i }}"
            ))
            .unwrap();
        }
    });
    let dir = std::env::temp_dir().join(format!("devudf-figures-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    settings.transfer.compress = true;
    settings.transfer.sample = Some(1000);
    let mut ide = HeadlessIde::open_in_proc(&server, settings, &dir).unwrap();

    println!("Figure 1: PyCharm Main Menu (with the devUDF submenu)");
    println!("{}", ide.render_main_menu());

    println!("Figure 2: Settings");
    println!("{}\n", ide.render_settings_dialog());

    let mut import = ide.open_import_dialog().unwrap();
    import.toggle("mean_deviation");
    println!("Figure 3(a): Import UDFs");
    println!("{}\n", import.render());

    ide.confirm_import(&import).unwrap();
    let mut export = ide.open_export_dialog().unwrap();
    export.toggle("mean_deviation");
    println!("Figure 3(b): Export UDFs");
    println!("{}", export.render());

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}
