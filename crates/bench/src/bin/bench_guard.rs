//! Bench regression guards: re-measure the perf claims CI depends on and
//! fail (exit 1) on regression against the committed baselines.
//!
//! Five guards run, all ratio-normalized:
//!
//!  1. **Transfer codec** — the `compressed/1000` extract from the
//!     `transfer` suite must stay within 10% of the committed
//!     `BENCH_transfer.json` baseline, normalized by `plain/1000`.
//!  2. **Bytecode VM** — the pylite bytecode engine must keep a healthy
//!     speedup over the AST walker on the Scenario-A UDF
//!     (`BENCH_pylite_vm.json`, DESIGN §13 / EXPERIMENTS C14).
//!  3. **UDF inlining** — the Froid-style inlined plan must keep its
//!     speedup over the bytecode interpreter on Scenario A, end-to-end
//!     through the SQL engine (`BENCH_udf_inline.json`, DESIGN §14 /
//!     EXPERIMENTS C15).
//!  4. **Observability overhead** — with telemetry compiled in but idle,
//!     Scenario A must cost within 1% of a hard-disabled build, and a
//!     live per-query trace capture within 5% of idle
//!     (`BENCH_profile.json`, DESIGN §15 / EXPERIMENTS C16).
//!  5. **Server concurrency** — 16 concurrent TCP sessions must not cost
//!     more per query than one session (the scheduler must not convoy),
//!     and on hosts with ≥8 cores must deliver a real speedup
//!     (`BENCH_server_concurrency.json`, DESIGN §16 / EXPERIMENTS C17).
//!     The floor is core-count-aware — see [`guard_server_concurrency`].
//!
//! Shared CI hosts drift by tens of percent run-to-run, so the guards
//! compare *normalized* cost rather than absolute nanoseconds: both
//! sides of each ratio are measured in one process with the same harness
//! that produced the baseline. Host-speed fluctuation cancels out of the
//! ratio; a regression in the guarded subsystem (the only thing
//! separating the two paths) does not. Two more noise dampers: ratios
//! are built from per-sample *minimum* ns (the lowest-variance location
//! statistic — scheduler interruptions only ever add time) and each
//! measurement repeats up to three times, passing on the best ratio. A
//! real regression shifts the minimum of every repeat; transient load
//! does not.

use devharness::bench::Harness;
use devudf_bench::{
    bench_server, bench_session, seed_numbers, SessionFleet, MEAN_DEVIATION_FIXED_BODY,
    MEAN_DEVIATION_STRAIGHT_BODY,
};
use monetlite::{Engine, ExecutionModel};
use pylite::{Array, ExecMode, Interp, Value};
use wireproto::{ClientOptions, Server, ServerConfig, TransferOptions};

const BASELINE_FILE: &str = "BENCH_transfer.json";
const GUARDED: &str = "compressed/1000";
const REFERENCE: &str = "plain/1000";
const TOLERANCE: f64 = 1.10;

const VM_BASELINE_FILE: &str = "BENCH_pylite_vm.json";
const VM_REFERENCE: &str = "ast/1000";
const VM_GUARDED: &str = "bytecode/1000";
/// The committed baseline must document at least this speedup — it backs
/// the README/EXPERIMENTS "≥5× per F5" claim.
const VM_CLAIMED_SPEEDUP: f64 = 5.0;
/// The live re-measurement passes at this floor: comfortably below the
/// claim so shared-host noise cannot flake CI, far above anything a
/// broken fast path or de-fused compiler would produce (~1×).
const VM_SPEEDUP_FLOOR: f64 = 3.0;

const INLINE_BASELINE_FILE: &str = "BENCH_udf_inline.json";
const INLINE_GROUP: &str = "scenario_a";
const INLINE_REFERENCE: &str = "bytecode/10000";
const INLINE_GUARDED: &str = "inlined/10000";
/// The committed baseline must document at least this speedup — it backs
/// the EXPERIMENTS C15 "≥3× over the bytecode VM on Scenario A" claim.
const INLINE_CLAIMED_SPEEDUP: f64 = 3.0;
/// Live re-measurement floor: below the claim to absorb shared-host noise,
/// far above the ~1× a broken inliner (silent bail, de-vectorized eval)
/// would produce.
const INLINE_SPEEDUP_FLOOR: f64 = 2.0;

const PROFILE_BASELINE_FILE: &str = "BENCH_profile.json";
const PROFILE_GROUP: &str = "scenario_a";
const PROFILE_BASELINE: &str = "baseline/10000";
const PROFILE_OFF: &str = "off/10000";
const PROFILE_TRACED: &str = "traced/10000";
/// The committed baseline must document idle-telemetry overhead within
/// this ratio of the hard-disabled build — it backs the DESIGN §15
/// "profiling off costs ≤1%" claim.
const PROFILE_OFF_CLAIM: f64 = 1.01;
/// The committed baseline must document traced-query overhead within
/// this ratio of idle telemetry (the "tracing on costs ≤5%" claim).
const PROFILE_TRACED_CLAIM: f64 = 1.05;
/// Live floors: minimum-of-samples ratios still jitter by tens of
/// percent on shared hosts, so the live check only has to catch the
/// pathological regression — telemetry doing real work (formatting,
/// allocation, locking) on the idle path shows up as 2×+, not 1.2×.
const PROFILE_OFF_FLOOR: f64 = 1.25;
const PROFILE_TRACED_FLOOR: f64 = 1.50;

const CONC_BASELINE_FILE: &str = "BENCH_server_concurrency.json";
const CONC_GROUP: &str = "tcp_select";
/// Matches `QUERIES_PER_BURST` in `benches/server_concurrency.rs`: one
/// measured iteration = every session completing this many round trips,
/// so per-query cost is `min_ns / (sessions × burst)`.
const CONC_QUERIES_PER_BURST: usize = 4;
const CONC_SESSIONS: usize = 16;
const CONC_QUERY: &str = "SELECT sum(i) FROM numbers";
/// Live floor on hosts with >=8 cores: the EXPERIMENTS C17 claim is a
/// speedup of at least 3x per query at 16 sessions; the guard passes at 2x so
/// shared-host noise cannot flake CI while a serialized scheduler (~1x)
/// still fails loudly.
const CONC_FLOOR_MANY_CORE: f64 = 2.0;
/// Floor everywhere else (and the committed-baseline sanity bound): on
/// 1–7 cores real parallel speedup is not demonstrable (the C12/C17
/// recording host has 2 cores and measures ~1.8x), so the guard only has
/// to catch the pathological regression — a convoying scheduler, where
/// 16 sessions contending on one lock make each query *slower* than a
/// lone session. TCP minima jitter several-fold on shared hosts, hence
/// the generous 0.5 rather than 1.0.
const CONC_COLLAPSE_FLOOR: f64 = 0.5;

const EMBEDDED_BASELINE_FILE: &str = "BENCH_embedded.json";
const EMBEDDED_GROUP: &str = "extract";
const EMBEDDED_REFERENCE: &str = "tcp/200000";
const EMBEDDED_GUARDED: &str = "embedded/200000";
/// The committed baseline must document at least this speedup — it backs
/// the EXPERIMENTS C18 "embedded extract ≥5× faster than TCP on 200k
/// rows" claim (the recording host measures ~13×).
const EMBEDDED_CLAIMED_SPEEDUP: f64 = 5.0;
/// Live floor: loopback-TCP minima jitter on shared hosts, so the live
/// check only has to catch the pathological regression — an embedded
/// path that started serializing (pickle/frames) lands near 1×.
const EMBEDDED_SPEEDUP_FLOOR: f64 = 2.0;

fn min_ns(doc: &codecs::json::Value, file: &str, name: &str) -> f64 {
    doc.get("benchmarks")
        .and_then(|b| b.as_array())
        .and_then(|benchmarks| {
            benchmarks
                .iter()
                .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(name))
        })
        .and_then(|b| b.get("ns_per_iter")?.get("min")?.as_f64())
        .unwrap_or_else(|| panic!("baseline entry {name} not found in {file}"))
}

/// Like [`min_ns`] but disambiguated by benchmark group: the udf_inline
/// suite reuses entry names ("bytecode/10000") across its two scenarios.
fn group_min_ns(doc: &codecs::json::Value, file: &str, group: &str, name: &str) -> f64 {
    doc.get("benchmarks")
        .and_then(|b| b.as_array())
        .and_then(|benchmarks| {
            benchmarks.iter().find(|b| {
                b.get("group").and_then(|g| g.as_str()) == Some(group)
                    && b.get("name").and_then(|n| n.as_str()) == Some(name)
            })
        })
        .and_then(|b| b.get("ns_per_iter")?.get("min")?.as_f64())
        .unwrap_or_else(|| panic!("baseline entry {group}/{name} not found in {file}"))
}

fn read_baseline(file: &str) -> codecs::json::Value {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("read {file}: {e}"));
    codecs::json::parse(&text).unwrap_or_else(|e| panic!("parse {file}: {e}"))
}

/// Run `measure` under a scratch `DEVHARNESS_BENCH_OUT` so guard runs
/// never touch the committed baselines, then parse the artifact it wrote.
fn scratch_harness(suite: &str, measure: impl FnOnce(&mut Harness)) -> codecs::json::Value {
    let scratch =
        std::env::temp_dir().join(format!("devudf-bench-guard-{suite}-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    std::env::set_var("DEVHARNESS_BENCH_OUT", &scratch);
    let mut h = Harness::new(suite);
    measure(&mut h);
    h.finish();
    std::env::remove_var("DEVHARNESS_BENCH_OUT");
    let text = std::fs::read_to_string(scratch.join(format!("BENCH_{suite}.json"))).unwrap();
    std::fs::remove_dir_all(&scratch).ok();
    codecs::json::parse(&text).unwrap()
}

/// Measure both transfer paths with the same harness that produced the
/// baseline (same calibration, warmup and batch statistics). Returns
/// `(plain, compressed)` min ns/iter.
fn measure_transfer() -> (f64, f64) {
    let server = bench_server(1_000);
    let mut dev = bench_session(&server, "bench-guard");
    dev.import_all().unwrap();
    let doc = scratch_harness("guard", |h| {
        let mut group = h.benchmark_group("transfer_extract");
        group.sample_size(10);
        for (name, options) in [
            (REFERENCE, TransferOptions::plain()),
            (GUARDED, TransferOptions::compressed()),
        ] {
            group.bench_function(name, |b| {
                b.iter(|| {
                    dev.client()
                        .borrow_mut()
                        .extract_inputs(
                            "SELECT mean_deviation(i) FROM numbers",
                            "mean_deviation",
                            options,
                        )
                        .unwrap()
                })
            });
        }
        group.finish();
    });
    std::fs::remove_dir_all(dev.project.root()).ok();
    server.shutdown();
    (
        min_ns(&doc, "guard", REFERENCE),
        min_ns(&doc, "guard", GUARDED),
    )
}

fn guard_transfer() -> bool {
    let doc = read_baseline(BASELINE_FILE);
    let base_ratio = min_ns(&doc, BASELINE_FILE, GUARDED) / min_ns(&doc, BASELINE_FILE, REFERENCE);
    let limit = base_ratio * TOLERANCE;
    let mut best = f64::INFINITY;
    for attempt in 1..=3 {
        let (plain, compressed) = measure_transfer();
        let ratio = compressed / plain;
        best = best.min(ratio);
        println!(
            "transfer guard[{attempt}]: {GUARDED} costs {ratio:.3}x {REFERENCE} \
(measured {compressed:.0} vs {plain:.0} ns/iter); \
baseline ratio {base_ratio:.3}x, limit {limit:.3}x"
        );
        if best <= limit {
            println!("transfer guard OK");
            return true;
        }
    }
    eprintln!(
        "FAIL: {GUARDED} regressed {:.1}% relative to {REFERENCE} (> {:.0}% allowed) \
in all 3 attempts",
        (best / base_ratio - 1.0) * 100.0,
        (TOLERANCE - 1.0) * 100.0
    );
    false
}

/// Measure Scenario A (1 000 rows) under both pylite engines exactly as
/// `benches/pylite_vm.rs` does. Returns `(ast, bytecode)` min ns/iter.
fn measure_vm() -> (f64, f64) {
    let def = format!(
        "def mean_deviation(column):\n{}",
        MEAN_DEVIATION_FIXED_BODY
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let call = pylite::parse_module("result = mean_deviation(col)\n").unwrap();
    let doc = scratch_harness("vmguard", |h| {
        let mut group = h.benchmark_group("scenario_a");
        group.sample_size(20);
        for mode in [ExecMode::Ast, ExecMode::Bytecode] {
            let mut interp = Interp::new();
            interp.set_exec_mode(mode);
            interp.eval_module(&def).unwrap();
            let col: Vec<i64> = (0..1_000).map(|i| i % 97).collect();
            interp.set_global("col", Value::array(Array::Int(col)));
            group.bench_function(mode.as_str(), |b| {
                b.iter(|| interp.run_module(&call).unwrap())
            });
        }
        group.finish();
    });
    (
        min_ns(&doc, "vmguard", "ast"),
        min_ns(&doc, "vmguard", "bytecode"),
    )
}

fn guard_vm() -> bool {
    let doc = read_baseline(VM_BASELINE_FILE);
    let base_speedup =
        min_ns(&doc, VM_BASELINE_FILE, VM_REFERENCE) / min_ns(&doc, VM_BASELINE_FILE, VM_GUARDED);
    if base_speedup < VM_CLAIMED_SPEEDUP {
        eprintln!(
            "FAIL: committed {VM_BASELINE_FILE} documents only a {base_speedup:.2}x \
Scenario-A speedup; the docs claim >={VM_CLAIMED_SPEEDUP:.0}x — re-run \
`cargo bench -p devudf-bench --bench pylite_vm` on a quiet host or fix the VM"
        );
        return false;
    }
    let mut best = 0.0f64;
    for attempt in 1..=3 {
        let (ast, bytecode) = measure_vm();
        let speedup = ast / bytecode;
        best = best.max(speedup);
        println!(
            "vm guard[{attempt}]: bytecode runs Scenario A {speedup:.2}x faster than the \
AST walker (measured {bytecode:.0} vs {ast:.0} ns/iter); \
baseline {base_speedup:.2}x, floor {VM_SPEEDUP_FLOOR:.1}x"
        );
        if best >= VM_SPEEDUP_FLOOR {
            println!("vm guard OK");
            return true;
        }
    }
    eprintln!(
        "FAIL: bytecode VM speedup fell to {best:.2}x (< {VM_SPEEDUP_FLOOR:.1}x floor) \
in all 3 attempts — a fast path or compiler fusion likely regressed"
    );
    false
}

/// Measure Scenario A (10 000 rows) end-to-end through the SQL engine with
/// inlining off (bytecode VM) and on, exactly as `benches/udf_inline.rs`
/// does. Returns `(bytecode, inlined)` min ns/iter.
fn measure_inline() -> (f64, f64) {
    let doc = scratch_harness("inlineguard", |h| {
        let mut group = h.benchmark_group(INLINE_GROUP);
        group.sample_size(12);
        for (name, inline) in [("bytecode", false), ("inlined", true)] {
            let db = Engine::new();
            db.set_model(ExecutionModel::OperatorAtATime);
            db.set_exec_mode(ExecMode::Bytecode);
            db.set_inline(inline);
            seed_numbers(&db, 10_000);
            db.execute(&format!(
                "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {{\n{MEAN_DEVIATION_STRAIGHT_BODY}}}"
            ))
            .unwrap();
            group.bench_function(name, |b| {
                b.iter(|| db.execute("SELECT f(i) FROM numbers").unwrap())
            });
        }
        group.finish();
    });
    (
        min_ns(&doc, "inlineguard", "bytecode"),
        min_ns(&doc, "inlineguard", "inlined"),
    )
}

fn guard_inline() -> bool {
    let doc = read_baseline(INLINE_BASELINE_FILE);
    let base_speedup = group_min_ns(&doc, INLINE_BASELINE_FILE, INLINE_GROUP, INLINE_REFERENCE)
        / group_min_ns(&doc, INLINE_BASELINE_FILE, INLINE_GROUP, INLINE_GUARDED);
    if base_speedup < INLINE_CLAIMED_SPEEDUP {
        eprintln!(
            "FAIL: committed {INLINE_BASELINE_FILE} documents only a {base_speedup:.2}x \
Scenario-A inlining speedup; the docs claim >={INLINE_CLAIMED_SPEEDUP:.0}x — re-run \
`cargo bench -p devudf-bench --bench udf_inline` on a quiet host or fix the inliner"
        );
        return false;
    }
    let mut best = 0.0f64;
    for attempt in 1..=3 {
        let (bytecode, inlined) = measure_inline();
        let speedup = bytecode / inlined;
        best = best.max(speedup);
        println!(
            "inline guard[{attempt}]: inlined plan runs Scenario A {speedup:.2}x faster than \
the bytecode VM (measured {inlined:.0} vs {bytecode:.0} ns/iter); \
baseline {base_speedup:.2}x, floor {INLINE_SPEEDUP_FLOOR:.1}x"
        );
        if best >= INLINE_SPEEDUP_FLOOR {
            println!("inline guard OK");
            return true;
        }
    }
    eprintln!(
        "FAIL: inlined-plan speedup fell to {best:.2}x (< {INLINE_SPEEDUP_FLOOR:.1}x floor) \
in all 3 attempts — the inliner is likely bailing or the typed eval fast paths regressed"
    );
    false
}

/// Measure Scenario A (10 000 rows, inlined) end-to-end through the SQL
/// engine with telemetry hard-disabled, idle, and under a live per-query
/// trace capture, exactly as `benches/profile.rs` does. Returns
/// `(baseline, off, traced)` min ns/iter.
fn measure_profile() -> (f64, f64, f64) {
    let db = Engine::new();
    db.set_model(ExecutionModel::OperatorAtATime);
    db.set_exec_mode(ExecMode::Bytecode);
    db.set_inline(true);
    seed_numbers(&db, 10_000);
    db.execute(&format!(
        "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {{\n{MEAN_DEVIATION_STRAIGHT_BODY}}}"
    ))
    .unwrap();
    let doc = scratch_harness("profileguard", |h| {
        let mut group = h.benchmark_group(PROFILE_GROUP);
        group.sample_size(20);
        obs::set_enabled(false);
        group.bench_function("baseline", |b| {
            b.iter(|| db.execute("SELECT f(i) FROM numbers").unwrap())
        });
        obs::set_enabled(true);
        group.bench_function("off", |b| {
            b.iter(|| db.execute("SELECT f(i) FROM numbers").unwrap())
        });
        group.bench_function("traced", |b| {
            b.iter(|| {
                let trace = obs::trace::new_trace_id();
                obs::trace::start_capture(trace);
                let result = {
                    let _ctx =
                        obs::trace::enter_context(obs::trace::SpanContext { trace, parent: 0 });
                    db.execute("SELECT f(i) FROM numbers").unwrap()
                };
                let spans = obs::trace::take_capture(trace);
                (result, spans)
            })
        });
        group.finish();
    });
    (
        min_ns(&doc, "profileguard", "baseline"),
        min_ns(&doc, "profileguard", "off"),
        min_ns(&doc, "profileguard", "traced"),
    )
}

fn guard_profile() -> bool {
    let doc = read_baseline(PROFILE_BASELINE_FILE);
    let base = group_min_ns(&doc, PROFILE_BASELINE_FILE, PROFILE_GROUP, PROFILE_BASELINE);
    let off = group_min_ns(&doc, PROFILE_BASELINE_FILE, PROFILE_GROUP, PROFILE_OFF);
    let traced = group_min_ns(&doc, PROFILE_BASELINE_FILE, PROFILE_GROUP, PROFILE_TRACED);
    let base_off_ratio = off / base;
    let base_traced_ratio = traced / off;
    if base_off_ratio > PROFILE_OFF_CLAIM || base_traced_ratio > PROFILE_TRACED_CLAIM {
        eprintln!(
            "FAIL: committed {PROFILE_BASELINE_FILE} documents idle-telemetry overhead \
{:.1}% (budget {:.0}%) and traced overhead {:.1}% (budget {:.0}%) — re-run \
`cargo bench -p devudf-bench --bench profile` on a quiet host or fix the hot hooks",
            (base_off_ratio - 1.0) * 100.0,
            (PROFILE_OFF_CLAIM - 1.0) * 100.0,
            (base_traced_ratio - 1.0) * 100.0,
            (PROFILE_TRACED_CLAIM - 1.0) * 100.0
        );
        return false;
    }
    let (mut best_off, mut best_traced) = (f64::INFINITY, f64::INFINITY);
    for attempt in 1..=3 {
        let (baseline, off, traced) = measure_profile();
        let off_ratio = off / baseline;
        let traced_ratio = traced / off;
        best_off = best_off.min(off_ratio);
        best_traced = best_traced.min(traced_ratio);
        println!(
            "profile guard[{attempt}]: idle telemetry costs {off_ratio:.3}x disabled, \
live trace {traced_ratio:.3}x idle (measured {baseline:.0} / {off:.0} / {traced:.0} ns/iter); \
floors {PROFILE_OFF_FLOOR:.2}x / {PROFILE_TRACED_FLOOR:.2}x"
        );
        if best_off <= PROFILE_OFF_FLOOR && best_traced <= PROFILE_TRACED_FLOOR {
            println!("profile guard OK");
            return true;
        }
    }
    eprintln!(
        "FAIL: observability overhead held at {best_off:.2}x idle / {best_traced:.2}x traced \
(floors {PROFILE_OFF_FLOOR:.2}x / {PROFILE_TRACED_FLOOR:.2}x) in all 3 attempts — \
an idle-path hook is likely doing real work"
    );
    false
}

/// Measure per-query cost over real TCP at 1 and [`CONC_SESSIONS`]
/// concurrent sessions, exactly as `benches/server_concurrency.rs` does
/// (persistent fleet, burst iterations). Returns `(one, many)` min
/// ns/query.
fn measure_concurrency() -> (f64, f64) {
    let server = Server::start(
        ServerConfig::new("demo", "monetdb", "monetdb").with_queue_capacity(1024, 1024),
        |db| seed_numbers(db, 1_000),
    );
    let addr = server.listen_tcp().unwrap();
    let doc = scratch_harness("concguard", |h| {
        let mut group = h.benchmark_group(CONC_GROUP);
        group.sample_size(12);
        for sessions in [1usize, CONC_SESSIONS] {
            let fleet = SessionFleet::connect(
                addr,
                sessions,
                CONC_QUERIES_PER_BURST,
                CONC_QUERY,
                ClientOptions::default(),
            );
            fleet.burst(); // warm connections and the reader snapshot cache
            group.bench_function(format!("sessions/{sessions}"), |b| b.iter(|| fleet.burst()));
            fleet.join();
        }
        group.finish();
    });
    server.shutdown();
    let per_query = |name: &str, sessions: usize| {
        group_min_ns(&doc, "concguard", CONC_GROUP, name)
            / (sessions * CONC_QUERIES_PER_BURST) as f64
    };
    (
        per_query("sessions/1", 1),
        per_query(&format!("sessions/{CONC_SESSIONS}"), CONC_SESSIONS),
    )
}

fn guard_server_concurrency() -> bool {
    let doc = read_baseline(CONC_BASELINE_FILE);
    let base_per_query = |name: &str, sessions: usize| {
        group_min_ns(&doc, CONC_BASELINE_FILE, CONC_GROUP, name)
            / (sessions * CONC_QUERIES_PER_BURST) as f64
    };
    let base_speedup = base_per_query("sessions/1", 1)
        / base_per_query(&format!("sessions/{CONC_SESSIONS}"), CONC_SESSIONS);
    if base_speedup < CONC_COLLAPSE_FLOOR {
        eprintln!(
            "FAIL: committed {CONC_BASELINE_FILE} documents a per-query collapse at \
{CONC_SESSIONS} sessions ({base_speedup:.2}x vs one session) — re-run \
`cargo bench -p devudf-bench --bench server_concurrency` on a quiet host or fix the scheduler"
        );
        return false;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = if cores >= 8 {
        CONC_FLOOR_MANY_CORE
    } else {
        CONC_COLLAPSE_FLOOR
    };
    let mut best = 0.0f64;
    for attempt in 1..=3 {
        let (one, many) = measure_concurrency();
        let speedup = one / many;
        best = best.max(speedup);
        println!(
            "concurrency guard[{attempt}]: {CONC_SESSIONS} sessions run {speedup:.2}x the \
per-query rate of one session (measured {many:.0} vs {one:.0} ns/query); \
baseline {base_speedup:.2}x, floor {floor:.1}x on {cores} cores"
        );
        if best >= floor {
            println!("concurrency guard OK");
            return true;
        }
    }
    eprintln!(
        "FAIL: per-query speedup at {CONC_SESSIONS} sessions fell to {best:.2}x \
(< {floor:.1}x floor on {cores} cores) in all 3 attempts — the read scheduler is \
likely serializing (convoy on the writer channel or a poisoned snapshot cache)"
    );
    false
}

/// Measure one 20 000-row extract through both transports exactly as
/// `benches/embedded.rs` does (just smaller, to keep guard runs quick —
/// the ratio, not the absolute cost, is what's guarded). Returns
/// `(tcp, embedded)` min ns/iter.
fn measure_embedded() -> (f64, f64) {
    const ROWS: usize = 20_000;
    const QUERY: &str = "SELECT mean_deviation(i) FROM numbers";
    let server = bench_server(ROWS);
    let addr = server.listen_tcp().unwrap();
    let mut tcp = wireproto::Client::connect_tcp_with(
        addr,
        "monetdb",
        "monetdb",
        "demo",
        ClientOptions::default(),
    )
    .unwrap();
    let db = Engine::new();
    devudf_bench::seed_numbers(&db, ROWS);
    db.execute(&devudf_bench::create_mean_deviation(
        devudf_bench::LISTING4_BODY,
    ))
    .unwrap();
    let mut embedded = wireproto::Embedded::from_engine(db);
    let doc = scratch_harness("embguard", |h| {
        use wireproto::EngineTransport;
        let mut group = h.benchmark_group(EMBEDDED_GROUP);
        group.sample_size(10);
        group.bench_function("tcp", |b| {
            b.iter(|| {
                tcp.extract_inputs(QUERY, "mean_deviation", TransferOptions::plain())
                    .unwrap()
            })
        });
        group.bench_function("embedded", |b| {
            b.iter(|| {
                embedded
                    .extract_inputs(QUERY, "mean_deviation", TransferOptions::plain())
                    .unwrap()
            })
        });
        group.finish();
    });
    server.shutdown();
    (
        group_min_ns(&doc, "embguard", EMBEDDED_GROUP, "tcp"),
        group_min_ns(&doc, "embguard", EMBEDDED_GROUP, "embedded"),
    )
}

fn guard_embedded() -> bool {
    let doc = read_baseline(EMBEDDED_BASELINE_FILE);
    let base_speedup = group_min_ns(
        &doc,
        EMBEDDED_BASELINE_FILE,
        EMBEDDED_GROUP,
        EMBEDDED_REFERENCE,
    ) / group_min_ns(
        &doc,
        EMBEDDED_BASELINE_FILE,
        EMBEDDED_GROUP,
        EMBEDDED_GUARDED,
    );
    if base_speedup < EMBEDDED_CLAIMED_SPEEDUP {
        eprintln!(
            "FAIL: committed {EMBEDDED_BASELINE_FILE} documents only a {base_speedup:.2}x \
embedded-over-TCP extract speedup; the docs claim >={EMBEDDED_CLAIMED_SPEEDUP:.0}x — re-run \
`cargo bench -p devudf-bench --bench embedded` on a quiet host or fix the embedded transport"
        );
        return false;
    }
    let mut best = 0.0f64;
    for attempt in 1..=3 {
        let (tcp, embedded) = measure_embedded();
        let speedup = tcp / embedded;
        best = best.max(speedup);
        println!(
            "embedded guard[{attempt}]: embedded extract runs {speedup:.2}x faster than TCP \
(measured {embedded:.0} vs {tcp:.0} ns/iter); \
baseline {base_speedup:.2}x, floor {EMBEDDED_SPEEDUP_FLOOR:.1}x"
        );
        if best >= EMBEDDED_SPEEDUP_FLOOR {
            println!("embedded guard OK");
            return true;
        }
    }
    eprintln!(
        "FAIL: embedded extract speedup fell to {best:.2}x (< {EMBEDDED_SPEEDUP_FLOOR:.1}x \
floor) in all 3 attempts — the embedded path is likely serializing again"
    );
    false
}

fn main() {
    // Operate on the workspace root regardless of invocation directory.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let root = std::path::Path::new(&manifest).join("../..");
        std::env::set_current_dir(root).expect("chdir to workspace root");
    }
    let transfer_ok = guard_transfer();
    let vm_ok = guard_vm();
    let inline_ok = guard_inline();
    let profile_ok = guard_profile();
    let conc_ok = guard_server_concurrency();
    let embedded_ok = guard_embedded();
    if !(transfer_ok && vm_ok && inline_ok && profile_ok && conc_ok && embedded_ok) {
        std::process::exit(1);
    }
}
