//! Bench regression guard: re-measure the `compressed/1000` extract from
//! the `transfer` suite and fail (exit 1) if the codec path regressed
//! more than 10% against the committed baseline in `BENCH_transfer.json`.
//!
//! Shared CI hosts drift by tens of percent run-to-run, so the guard
//! compares *normalized* cost rather than absolute nanoseconds: the
//! `compressed/1000 ÷ plain/1000` ratio, measured in one process with
//! the same harness that produced the baseline. Host-speed fluctuation
//! cancels out of the ratio; a regression in the compression pipeline
//! (the only thing separating the two paths) does not. Two more
//! noise dampers: ratios are built from per-sample *minimum* ns (the
//! lowest-variance location statistic — scheduler interruptions only
//! ever add time) and the measurement repeats up to three times, passing
//! on the best ratio. A real ≥10 % codec regression shifts the minimum
//! of every repeat; transient load does not.

use devharness::bench::Harness;
use devudf_bench::{bench_server, bench_session};
use wireproto::TransferOptions;

const BASELINE_FILE: &str = "BENCH_transfer.json";
const GUARDED: &str = "compressed/1000";
const REFERENCE: &str = "plain/1000";
const TOLERANCE: f64 = 1.10;

fn min_ns(doc: &codecs::json::Value, name: &str) -> f64 {
    doc.get("benchmarks")
        .and_then(|b| b.as_array())
        .and_then(|benchmarks| {
            benchmarks
                .iter()
                .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(name))
        })
        .and_then(|b| b.get("ns_per_iter")?.get("min")?.as_f64())
        .unwrap_or_else(|| panic!("baseline entry {name} not found in {BASELINE_FILE}"))
}

/// Measure both paths with the same harness that produced the baseline
/// (same calibration, warmup and batch statistics), writing the artifact
/// to a scratch dir so the committed baseline is untouched. Returns
/// `(plain, compressed)` min ns/iter.
fn measure() -> (f64, f64) {
    let scratch = std::env::temp_dir().join(format!("devudf-bench-guard-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    std::env::set_var("DEVHARNESS_BENCH_OUT", &scratch);
    let server = bench_server(1_000);
    let mut dev = bench_session(&server, "bench-guard");
    dev.import_all().unwrap();
    let mut h = Harness::new("guard");
    {
        let mut group = h.benchmark_group("transfer_extract");
        group.sample_size(10);
        for (name, options) in [
            (REFERENCE, TransferOptions::plain()),
            (GUARDED, TransferOptions::compressed()),
        ] {
            group.bench_function(name, |b| {
                b.iter(|| {
                    dev.client()
                        .borrow_mut()
                        .extract_inputs(
                            "SELECT mean_deviation(i) FROM numbers",
                            "mean_deviation",
                            options,
                        )
                        .unwrap()
                })
            });
        }
        group.finish();
    }
    h.finish();
    std::env::remove_var("DEVHARNESS_BENCH_OUT");
    std::fs::remove_dir_all(dev.project.root()).ok();
    server.shutdown();
    let text = std::fs::read_to_string(scratch.join("BENCH_guard.json")).unwrap();
    std::fs::remove_dir_all(&scratch).ok();
    let doc = codecs::json::parse(&text).unwrap();
    (min_ns(&doc, REFERENCE), min_ns(&doc, GUARDED))
}

fn main() {
    // Operate on the workspace root regardless of invocation directory.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let root = std::path::Path::new(&manifest).join("../..");
        std::env::set_current_dir(root).expect("chdir to workspace root");
    }
    let text = std::fs::read_to_string(BASELINE_FILE)
        .unwrap_or_else(|e| panic!("read {BASELINE_FILE}: {e}"));
    let doc = codecs::json::parse(&text).unwrap_or_else(|e| panic!("parse {BASELINE_FILE}: {e}"));
    let base_ratio = min_ns(&doc, GUARDED) / min_ns(&doc, REFERENCE);
    let limit = base_ratio * TOLERANCE;
    let mut best = f64::INFINITY;
    for attempt in 1..=3 {
        let (plain, compressed) = measure();
        let ratio = compressed / plain;
        best = best.min(ratio);
        println!(
            "bench guard[{attempt}]: {GUARDED} costs {ratio:.3}x {REFERENCE} \
(measured {compressed:.0} vs {plain:.0} ns/iter); \
baseline ratio {base_ratio:.3}x, limit {limit:.3}x"
        );
        if best <= limit {
            println!("bench guard OK");
            return;
        }
    }
    eprintln!(
        "FAIL: {GUARDED} regressed {:.1}% relative to {REFERENCE} (> {:.0}% allowed) \
in all 3 attempts",
        (best / base_ratio - 1.0) * 100.0,
        (TOLERANCE - 1.0) * 100.0
    );
    std::process::exit(1);
}
