//! Regenerate paper Table 1 ("Most Popular Development Environments").
//!
//! The table is PYPL Top-IDE-index survey data the paper cites; it cannot
//! be re-measured, so it is embedded verbatim (see DESIGN.md, experiment T1).

fn main() {
    print!("{}", devudf_bench::render_table1());
}
