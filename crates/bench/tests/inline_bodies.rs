//! The C15 benchmark bodies must really take the paths the benchmark
//! claims to compare: both inline (EXPLAIN says so), and the inlined
//! results are identical to the interpreter's.

use devudf_bench::{seed_numbers, CLAMP_SCORE_BODY, MEAN_DEVIATION_STRAIGHT_BODY};
use monetlite::{Engine, ExecutionModel};

fn engine(model: ExecutionModel, inline: bool, body: &str) -> Engine {
    let db = Engine::new();
    db.set_model(model);
    db.set_inline(inline);
    seed_numbers(&db, 500);
    db.execute(&format!(
        "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {{\n{body}}}"
    ))
    .unwrap();
    db
}

fn rows(db: &Engine) -> Vec<String> {
    db.execute("SELECT f(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap()
        .rows()
        .iter()
        .map(|r| r[0].render())
        .collect()
}

fn explain(db: &Engine) -> String {
    let t = db
        .execute("EXPLAIN SELECT f(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    t.rows()
        .iter()
        .find(|r| r[0].render() == "udf f")
        .map(|r| r[1].render())
        .expect("udf row in EXPLAIN")
}

#[test]
fn scenario_a_body_inlines_and_matches_interpreter() {
    let model = ExecutionModel::OperatorAtATime;
    let on = engine(model, true, MEAN_DEVIATION_STRAIGHT_BODY);
    assert!(
        explain(&on).starts_with("inlined as "),
        "Scenario A must exercise the inliner: {}",
        explain(&on)
    );
    let off = engine(model, false, MEAN_DEVIATION_STRAIGHT_BODY);
    assert_eq!(rows(&on), rows(&off), "inlined Scenario A result diverged");
}

#[test]
fn scenario_b_body_inlines_and_matches_interpreter() {
    let model = ExecutionModel::TupleAtATime;
    let on = engine(model, true, CLAMP_SCORE_BODY);
    assert!(
        explain(&on).starts_with("inlined as "),
        "Scenario B must exercise the inliner: {}",
        explain(&on)
    );
    let off = engine(model, false, CLAMP_SCORE_BODY);
    let got = rows(&on);
    assert_eq!(got.len(), 500, "one score per row");
    assert_eq!(got, rows(&off), "inlined Scenario B result diverged");
}
