//! CLI-level tests for the `devudf` binary.

use std::process::Command;

/// An unknown `--interp` value must fail loudly at parse time, naming the
/// allowed set — not silently fall back to a default engine.
#[test]
fn bogus_interp_flag_fails_loudly() {
    for bad in ["bogus", "bytcode", "Inline"] {
        let out = Command::new(env!("CARGO_BIN_EXE_devudf"))
            .arg(format!("--interp={bad}"))
            .arg("menu")
            .output()
            .expect("devudf binary runs");
        assert_eq!(out.status.code(), Some(2), "--interp={bad} should exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(bad), "stderr names the bad value: {stderr}");
        assert!(
            stderr.contains("'ast', 'bytecode' or 'inline'"),
            "stderr lists the allowed set: {stderr}"
        );
    }
}

/// The accepted spellings all parse (the command itself is inert).
#[test]
fn valid_interp_flags_are_accepted() {
    for good in ["ast", "bytecode", "inline"] {
        let out = Command::new(env!("CARGO_BIN_EXE_devudf"))
            .arg(format!("--interp={good}"))
            .arg("menu")
            .output()
            .expect("devudf binary runs");
        assert_eq!(out.status.code(), Some(0), "--interp={good} should exit 0");
    }
}
