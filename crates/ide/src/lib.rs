//! `devudf-ide` — a headless PyCharm-style facade around the devUDF core.
//!
//! The paper's deliverable is a GUI plugin; its *behaviour* is menu entries
//! and dialogs wired to the core operations. This crate reproduces that
//! surface without a GUI toolkit:
//!
//! * [`menu`] — the main-menu tree with the "UDF Development" submenu
//!   (paper Figure 1), rendered as text,
//! * [`dialogs`] — the Settings (Figure 2) and Import/Export (Figure 3)
//!   dialog models with ASCII renderers,
//! * [`debug_repl`] — an interactive debugger front-end (commands:
//!   `continue`, `step`, `next`, `out`, `locals`, `bt`, `print <expr>`,
//!   `quit`) over any `BufRead`/`Write` pair, so it is fully scriptable,
//! * [`ide`] — [`ide::HeadlessIde`], tying menus, dialogs and a
//!   [`devudf::DevUdf`] session together,
//! * the `devudf` CLI binary.

pub mod debug_repl;
pub mod dialogs;
pub mod ide;
pub mod menu;

pub use debug_repl::{ReplController, SharedBuf};
pub use dialogs::{ExportDialog, ImportDialog};
pub use ide::HeadlessIde;
pub use menu::{main_menu, MenuItem};
