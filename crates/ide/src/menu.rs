//! The IDE main menu with the devUDF submenu (paper Figure 1).

/// One menu node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MenuItem {
    pub label: String,
    pub children: Vec<MenuItem>,
    /// Action id dispatched by the IDE when the entry is selected.
    pub action: Option<String>,
}

impl MenuItem {
    pub fn leaf(label: &str, action: &str) -> MenuItem {
        MenuItem {
            label: label.to_string(),
            children: Vec::new(),
            action: Some(action.to_string()),
        }
    }

    pub fn submenu(label: &str, children: Vec<MenuItem>) -> MenuItem {
        MenuItem {
            label: label.to_string(),
            children,
            action: None,
        }
    }

    /// Find a node by its action id.
    pub fn find_action(&self, action: &str) -> Option<&MenuItem> {
        if self.action.as_deref() == Some(action) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find_action(action))
    }

    /// Render the subtree as an indented text outline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        if self.children.is_empty() {
            out.push_str(&format!("• {}\n", self.label));
        } else {
            out.push_str(&format!("▸ {}\n", self.label));
            for c in &self.children {
                c.render_into(out, depth + 1);
            }
        }
    }
}

/// The PyCharm-style main menu of paper Figure 1: standard IDE menus plus
/// the "UDF Development" submenu contributed by the devUDF plugin.
pub fn main_menu() -> MenuItem {
    MenuItem::submenu(
        "Main Menu",
        vec![
            MenuItem::submenu(
                "File",
                vec![
                    MenuItem::leaf("New Project", "file.new"),
                    MenuItem::leaf("Open…", "file.open"),
                    MenuItem::leaf("Save All", "file.save_all"),
                ],
            ),
            MenuItem::submenu(
                "Edit",
                vec![
                    MenuItem::leaf("Undo", "edit.undo"),
                    MenuItem::leaf("Redo", "edit.redo"),
                ],
            ),
            MenuItem::submenu(
                "Run",
                vec![
                    MenuItem::leaf("Run", "run.run"),
                    MenuItem::leaf("Debug", "run.debug"),
                ],
            ),
            MenuItem::submenu(
                "Tools",
                vec![MenuItem::submenu(
                    "UDF Development",
                    vec![
                        MenuItem::leaf("Import UDFs", "udf.import"),
                        MenuItem::leaf("Export UDFs", "udf.export"),
                        MenuItem::leaf("Settings", "udf.settings"),
                    ],
                )],
            ),
            MenuItem::submenu(
                "VCS",
                vec![
                    MenuItem::leaf("Commit…", "vcs.commit"),
                    MenuItem::leaf("Show History", "vcs.log"),
                    MenuItem::leaf("Diff", "vcs.diff"),
                ],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udf_development_submenu_has_three_entries_like_figure1() {
        let menu = main_menu();
        let import = menu.find_action("udf.import").unwrap();
        assert_eq!(import.label, "Import UDFs");
        assert!(menu.find_action("udf.export").is_some());
        assert!(menu.find_action("udf.settings").is_some());
    }

    #[test]
    fn debug_command_present() {
        assert!(main_menu().find_action("run.debug").is_some());
    }

    #[test]
    fn render_shows_hierarchy() {
        let rendered = main_menu().render();
        assert!(rendered.contains("▸ Tools"));
        assert!(rendered.contains("▸ UDF Development"));
        assert!(rendered.contains("• Import UDFs"));
        let tools_idx = rendered.find("Tools").unwrap();
        let import_idx = rendered.find("Import UDFs").unwrap();
        assert!(tools_idx < import_idx);
    }

    #[test]
    fn find_missing_action_is_none() {
        assert!(main_menu().find_action("nope.nothing").is_none());
    }
}
