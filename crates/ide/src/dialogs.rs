//! Import/Export dialog models (paper Figure 3a/3b).

/// The "Import UDFs" window: a checkbox list of server-side functions plus
/// an "import all" toggle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ImportDialog {
    /// (function name, checked).
    pub entries: Vec<(String, bool)>,
    pub import_all: bool,
}

impl ImportDialog {
    /// Populate from the server's function list (nothing selected).
    pub fn new(functions: Vec<String>) -> ImportDialog {
        ImportDialog {
            entries: functions.into_iter().map(|f| (f, false)).collect(),
            import_all: false,
        }
    }

    /// Toggle one entry by name; returns false if the name is unknown.
    pub fn toggle(&mut self, name: &str) -> bool {
        for (n, checked) in &mut self.entries {
            if n.eq_ignore_ascii_case(name) {
                *checked = !*checked;
                return true;
            }
        }
        false
    }

    /// The effective selection.
    pub fn selection(&self) -> Vec<String> {
        if self.import_all {
            self.entries.iter().map(|(n, _)| n.clone()).collect()
        } else {
            self.entries
                .iter()
                .filter(|(_, c)| *c)
                .map(|(n, _)| n.clone())
                .collect()
        }
    }

    /// Render the dialog (Figure 3a).
    pub fn render(&self) -> String {
        let mut out = String::from("┌─ Import UDFs ───────────────────────────┐\n");
        for (name, checked) in &self.entries {
            out.push_str(&format!(
                "│ [{}] {:<36}│\n",
                if *checked || self.import_all {
                    "x"
                } else {
                    " "
                },
                name
            ));
        }
        out.push_str(&format!(
            "│ [{}] {:<36}│\n",
            if self.import_all { "x" } else { " " },
            "Import all functions"
        ));
        out.push_str("│            [ Import ]  [ Cancel ]       │\n");
        out.push_str("└─────────────────────────────────────────┘");
        out
    }
}

/// The "Export UDFs" window: the project's local UDF files, with their
/// modification state relative to the last import/export.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExportDialog {
    /// (function name, checked).
    pub entries: Vec<(String, bool)>,
}

impl ExportDialog {
    pub fn new(functions: Vec<String>) -> ExportDialog {
        ExportDialog {
            entries: functions.into_iter().map(|f| (f, false)).collect(),
        }
    }

    pub fn toggle(&mut self, name: &str) -> bool {
        for (n, checked) in &mut self.entries {
            if n.eq_ignore_ascii_case(name) {
                *checked = !*checked;
                return true;
            }
        }
        false
    }

    pub fn selection(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(_, c)| *c)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Render the dialog (Figure 3b).
    pub fn render(&self) -> String {
        let mut out = String::from("┌─ Export UDFs ───────────────────────────┐\n");
        for (name, checked) in &self.entries {
            out.push_str(&format!(
                "│ [{}] {:<36}│\n",
                if *checked { "x" } else { " " },
                name
            ));
        }
        out.push_str("│            [ Export ]  [ Cancel ]       │\n");
        out.push_str("└─────────────────────────────────────────┘");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_selection_by_checkbox() {
        let mut d = ImportDialog::new(vec!["mean_deviation".into(), "train_rnforest".into()]);
        assert!(d.selection().is_empty());
        assert!(d.toggle("mean_deviation"));
        assert_eq!(d.selection(), vec!["mean_deviation"]);
        d.toggle("mean_deviation");
        assert!(d.selection().is_empty());
        assert!(!d.toggle("ghost"));
    }

    #[test]
    fn import_all_overrides_checkboxes() {
        let mut d = ImportDialog::new(vec!["a".into(), "b".into()]);
        d.import_all = true;
        assert_eq!(d.selection(), vec!["a", "b"]);
    }

    #[test]
    fn import_render_shows_checkboxes() {
        let mut d = ImportDialog::new(vec!["mean_deviation".into(), "loadnumbers".into()]);
        d.toggle("loadnumbers");
        let r = d.render();
        assert!(r.contains("[ ] mean_deviation"));
        assert!(r.contains("[x] loadnumbers"));
        assert!(r.contains("Import all functions"));
    }

    #[test]
    fn export_dialog_selection_and_render() {
        let mut d = ExportDialog::new(vec!["mean_deviation".into()]);
        d.toggle("MEAN_DEVIATION"); // case-insensitive
        assert_eq!(d.selection(), vec!["mean_deviation"]);
        assert!(d.render().contains("Export UDFs"));
        assert!(d.render().contains("[x] mean_deviation"));
    }
}
