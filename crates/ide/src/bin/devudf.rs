//! The `devudf` command-line front-end.
//!
//! ```text
//! devudf demo                      scripted end-to-end demo (paper §2.5)
//! devudf serve [PORT]              start a demo database server over TCP
//! devudf menu                      print the IDE main menu (Figure 1)
//! devudf settings [DIR]            print the settings dialog (Figure 2)
//! devudf import  DIR NAME…         import UDFs into a project (Figure 3a)
//! devudf export  DIR NAME…         export edited UDFs (Figure 3b)
//! devudf run     DIR NAME          run a UDF locally
//! devudf debug   DIR NAME BP…      debug a UDF locally (interactive);
//!                                  each BP is LINE or LINE:CONDITION
//! devudf log     DIR               show the project's VCS history
//! devudf metrics DIR [PREFIX] [--json]
//!                                  show the server's live sys.metrics
//!                                  table, optionally filtered to names
//!                                  starting with PREFIX, as a table or
//!                                  JSON rows
//! devudf sessions DIR [--json]     show the server's live sys.sessions
//!                                  table (one row per wire session:
//!                                  state, commands served, queue wait)
//! devudf trace   DIR [SQL]         run SQL (default: the settings' debug
//!                                  query) with end-to-end tracing and
//!                                  print the stitched client→wire→engine
//!                                  span tree
//! devudf profile DIR NAME          run a UDF locally under the line
//!                                  profiler and print source-annotated
//!                                  hot lines
//! devudf cache   DIR NAME          demo the extract cache: fetch NAME's
//!                                  inputs twice, print bytes-on-wire
//! devudf open    DATADIR [--demo]  open (or create) a persistent embedded
//!                                  database directory, replay its WAL and
//!                                  print the storage stats; `--demo`
//!                                  seeds the demo table + UDF on first
//!                                  open
//! devudf checkpoint DATADIR        fold DATADIR's WAL into a fresh
//!                                  columnar snapshot and truncate it
//! ```
//!
//! Commands taking a project DIR read connection settings from
//! `DIR/.devudf/settings.json` (create it with `devudf settings`).
//!
//! A global `--interp=ast|bytecode|inline` flag overrides the configured
//! UDF execution mode for this invocation (`ast` selects the tree-walking
//! reference interpreter; `bytecode` the compiled VM; `inline`, the
//! default, the VM plus Froid-style engine inlining for straight-line
//! UDFs).
//!
//! A global `--embedded[=DATADIR]` flag runs any project command against
//! an **in-process** engine instead of a TCP server ("MonetDBLite mode",
//! DESIGN §17). With a DATADIR (or a `storage.data_dir` in the settings
//! file) the engine is persistent — WAL + snapshots, replayed on open;
//! without one each invocation gets a fresh in-memory engine seeded with
//! the demo data.

use std::io::BufReader;
use std::path::Path;

use devudf::{DevUdf, InterpMode, Settings};
use devudf_ide::{HeadlessIde, ReplController};
use pylite::DebugCommand;
use wireproto::message::{WireResult, WireTable, WireValue};
use wireproto::{Server, ServerConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut interp: Option<InterpMode> = None;
    args.retain(|a| match a.strip_prefix("--interp=") {
        Some(m) => {
            match InterpMode::parse(m) {
                Some(mode) => interp = Some(mode),
                None => {
                    eprintln!(
                        "bad --interp value '{m}' (expected one of {})",
                        InterpMode::ALLOWED
                    );
                    std::process::exit(2);
                }
            }
            false
        }
        None => true,
    });
    // --embedded / --embedded=DATADIR: run project commands in-process.
    let mut embedded: Option<Option<String>> = None;
    args.retain(|a| {
        if a == "--embedded" {
            embedded = Some(None);
            return false;
        }
        match a.strip_prefix("--embedded=") {
            Some("") => {
                eprintln!("bad --embedded value: the data directory must not be empty");
                std::process::exit(2);
            }
            Some(dir) => {
                embedded = Some(Some(dir.to_string()));
                false
            }
            None => true,
        }
    });
    let code = match args.first().map(|s| s.as_str()) {
        Some("demo") => cmd_demo(),
        Some("serve") => cmd_serve(args.get(1).map(|s| s.as_str()), interp),
        Some("menu") => {
            println!("{}", devudf_ide::main_menu().render());
            0
        }
        Some("settings") => cmd_settings(args.get(1).map(|s| s.as_str())),
        Some("import") => cmd_project(&args, interp, embedded.clone(), |dev, names| {
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let report = if refs.is_empty() {
                dev.import_all()
            } else {
                dev.import(&refs)
            }
            .map_err(|e| e.to_string())?;
            for (name, path) in &report.imported {
                println!("imported {name} -> {path}");
            }
            for missing in &report.missing {
                obs::warn!("no such function on the server", "name" => missing);
            }
            Ok(())
        }),
        Some("export") => cmd_project(&args, interp, embedded.clone(), |dev, names| {
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let exported = dev.export(&refs).map_err(|e| e.to_string())?;
            for name in exported {
                println!("exported {name}");
            }
            Ok(())
        }),
        Some("run") => cmd_project(&args, interp, embedded.clone(), |dev, names| {
            let Some(name) = names.first() else {
                return Err("usage: devudf run DIR NAME".to_string());
            };
            let outcome = dev.run_udf(name).map_err(|e| e.to_string())?;
            if !outcome.stdout.is_empty() {
                print!("{}", outcome.stdout);
            }
            println!("result = {}", outcome.result_repr);
            Ok(())
        }),
        Some("debug") => cmd_project(&args, interp, embedded.clone(), |dev, rest| {
            let Some(name) = rest.first() else {
                return Err("usage: devudf debug DIR NAME [LINE…]".to_string());
            };
            let controller =
                ReplController::new(BufReader::new(std::io::stdin()), std::io::stdout());
            let dbg = controller.into_debugger();
            for bp in &rest[1..] {
                match bp.split_once(':') {
                    Some((line, cond)) => match line.parse::<u32>() {
                        Ok(line) => dbg.borrow_mut().add_conditional_breakpoint(line, cond),
                        Err(_) => return Err(format!("bad breakpoint '{bp}'")),
                    },
                    None => match bp.parse::<u32>() {
                        Ok(line) => dbg.borrow_mut().add_breakpoint(line),
                        Err(_) => return Err(format!("bad breakpoint line '{bp}'")),
                    },
                }
            }
            if rest.len() == 1 {
                dbg.borrow_mut().break_on_entry = true;
            }
            let outcome = dev.debug_udf(name, dbg).map_err(|e| e.to_string())?;
            match outcome.run {
                Some(run) => println!("result = {}", run.result_repr),
                None => println!("debug session terminated"),
            }
            Ok(())
        }),
        Some("metrics") => cmd_project(&args, interp, embedded.clone(), |dev, rest| {
            let json = rest.iter().any(|a| a == "--json");
            let prefix = rest.iter().find(|a| !a.starts_with("--"));
            let sql = match prefix {
                Some(p) => format!(
                    "SELECT * FROM sys.metrics WHERE name LIKE '{}%'",
                    p.replace('\'', "''")
                ),
                None => "SELECT * FROM sys.metrics".to_string(),
            };
            let table = dev
                .server_query(&sql)
                .map_err(|e| e.to_string())?
                .into_table()
                .map_err(|e| e.to_string())?;
            if json {
                println!("{}", render_json(&table));
            } else {
                println!("{}", table.render_ascii());
            }
            Ok(())
        }),
        Some("sessions") => cmd_project(&args, interp, embedded.clone(), |dev, rest| {
            let json = rest.iter().any(|a| a == "--json");
            let table = dev
                .server_query("SELECT * FROM sys.sessions")
                .map_err(|e| e.to_string())?
                .into_table()
                .map_err(|e| e.to_string())?;
            if json {
                println!("{}", render_json(&table));
            } else {
                println!("{}", table.render_ascii());
            }
            Ok(())
        }),
        Some("trace") => cmd_project(&args, interp, embedded.clone(), |dev, rest| {
            let sql = match rest.first() {
                Some(s) => s.clone(),
                None if !dev.settings.debug_query.trim().is_empty() => {
                    dev.settings.debug_query.clone()
                }
                None => {
                    return Err(
                        "usage: devudf trace DIR [SQL] (or configure Settings → SQL Query)"
                            .to_string(),
                    )
                }
            };
            let (result, tree) = dev.server_query_traced(&sql).map_err(|e| e.to_string())?;
            if tree.is_empty() {
                println!("(no trace captured — telemetry off or server too old)");
            } else {
                print!("{tree}");
            }
            match result {
                WireResult::Table(t) => println!("{}", t.render_ascii()),
                WireResult::Affected { rows, message } => println!("{message} ({rows} rows)"),
            }
            Ok(())
        }),
        Some("profile") => cmd_project(&args, interp, embedded.clone(), |dev, names| {
            let Some(name) = names.first() else {
                return Err("usage: devudf profile DIR NAME".to_string());
            };
            let report = dev.profile_udf(name).map_err(|e| e.to_string())?;
            if !report.outcome.stdout.is_empty() {
                print!("{}", report.outcome.stdout);
            }
            print!("{}", report.annotated);
            println!("result = {}", report.outcome.result_repr);
            Ok(())
        }),
        Some("cache") => cmd_project(&args, interp, embedded.clone(), |dev, names| {
            let Some(name) = names.first() else {
                return Err("usage: devudf cache DIR NAME".to_string());
            };
            let cache = dev.settings.transfer.cache;
            if cache.enabled {
                println!(
                    "extract cache: delta transfer, {} extracts kept",
                    cache.entries
                );
            } else {
                println!("extract cache: disabled (classic full extract)");
            }
            // Two identical fetches back to back: the second rides the
            // delta protocol and — unchanged data — costs zero payload
            // bytes (or the full amount again when disabled).
            let cold = dev.fetch_inputs(name).map_err(|e| e.to_string())?;
            let warm = dev.fetch_inputs(name).map_err(|e| e.to_string())?;
            println!(
                "cold fetch: {} raw bytes, {} on the wire",
                cold.raw_len, cold.wire_len
            );
            println!(
                "warm fetch: {} raw bytes, {} on the wire",
                warm.raw_len, warm.wire_len
            );
            if cache.enabled && warm.wire_len == 0 {
                println!("unchanged data: the server answered NotModified");
            }
            Ok(())
        }),
        Some("log") => cmd_log(&args),
        Some("diff") => cmd_diff(&args),
        Some("open") => cmd_open(&args),
        Some("checkpoint") => cmd_checkpoint(&args),
        _ => {
            eprintln!(
                "usage: devudf <demo|serve|menu|settings|import|export|run|debug|log|diff|metrics|sessions|trace|profile|cache|open|checkpoint> …\n(see the module docs for details)"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Demo data used by `demo` and `serve`: the paper's CSV-of-integers setup.
fn seed_demo(db: &monetlite::Engine) {
    db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
    let values: Vec<String> = (1..=100).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO numbers VALUES {}", values.join(", ")))
        .unwrap();
    // Scenario A: the buggy mean_deviation of paper Listing 4.
    db.execute(concat!(
        "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n",
        "mean = 0\n",
        "for i in range(0, len(column)):\n",
        "    mean += column[i]\n",
        "mean = mean / len(column)\n",
        "distance = 0\n",
        "for i in range(0, len(column)):\n",
        "    distance += column[i] - mean\n",
        "deviation = distance / len(column)\n",
        "return deviation\n",
        "}"
    ))
    .unwrap();
}

fn cmd_serve(port: Option<&str>, interp: Option<InterpMode>) -> i32 {
    let mode = interp.unwrap_or_default();
    let server = Server::start(
        ServerConfig::new("demo", "monetdb", "monetdb"),
        move |db: &monetlite::Engine| {
            db.set_exec_mode(mode.pylite_mode());
            db.set_inline(mode.inline());
            seed_demo(db);
        },
    );
    let addr = match server.listen_tcp() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot listen: {e}");
            return 1;
        }
    };
    let _ = port; // the OS assigns an ephemeral port; print it
    println!("devudf demo server listening on {addr}");
    println!("database=demo user=monetdb password=monetdb");
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Render a wire table as a JSON array of row objects (the `--json`
/// output of `devudf metrics`, consumed by the ci.sh gates).
fn render_json(table: &WireTable) -> String {
    fn json_str(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
    fn json_value(v: &WireValue) -> String {
        match v {
            WireValue::Null => "null".to_string(),
            WireValue::Int(i) => i.to_string(),
            WireValue::Double(d) if d.is_finite() => d.to_string(),
            WireValue::Double(_) => "null".to_string(),
            WireValue::Bool(b) => b.to_string(),
            WireValue::Str(s) => json_str(s),
            WireValue::Blob(b) => {
                json_str(&b.iter().map(|x| format!("{x:02x}")).collect::<String>())
            }
        }
    }
    let mut out = String::from("[");
    for (i, row) in table.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        for (j, (name, _)) in table.columns.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(name));
            out.push_str(": ");
            out.push_str(&json_value(&row[j]));
        }
        out.push('}');
    }
    out.push_str("\n]");
    out
}

fn cmd_settings(dir: Option<&str>) -> i32 {
    let root = Path::new(dir.unwrap_or("."));
    let settings = Settings::load(root).unwrap_or_default();
    println!("{}", settings.render_dialog());
    if let Err(e) = settings.save(root) {
        obs::warn!("cannot save settings", "path" => root.display(), "error" => e);
    }
    0
}

fn cmd_project(
    args: &[String],
    interp: Option<InterpMode>,
    embedded: Option<Option<String>>,
    f: impl FnOnce(&mut DevUdf, &[String]) -> Result<(), String>,
) -> i32 {
    let Some(dir) = args.get(1) else {
        eprintln!("usage: devudf {} DIR …", args[0]);
        return 2;
    };
    let root = Path::new(dir);
    let mut settings = match Settings::load(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load settings from {dir}: {e}");
            return 1;
        }
    };
    if let Some(mode) = interp {
        settings.interp = mode;
    }
    let connected = match embedded {
        Some(dir_override) => {
            if let Some(d) = dir_override {
                settings.storage.data_dir = d;
            }
            // A fresh in-memory engine has nothing to develop against, so
            // it gets the demo seed; a persistent directory is opened
            // exactly as the WAL left it.
            let seed = settings.storage.data_dir.is_empty();
            DevUdf::connect_embedded(settings, root, |db| {
                if seed {
                    seed_demo(db);
                }
            })
        }
        None => DevUdf::connect_tcp(settings, root),
    };
    let mut dev = match connected {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            return 1;
        }
    };
    match f(&mut dev, &args[2..]) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// Open a persistent embedded database directory and report its state
/// (`devudf open DATADIR [--demo]`).
fn cmd_open(args: &[String]) -> i32 {
    let Some(dir) = args.get(1) else {
        eprintln!("usage: devudf open DATADIR [--demo]");
        return 2;
    };
    let demo = args.iter().skip(2).any(|a| a == "--demo");
    let db = match monetlite::Engine::open(Path::new(dir)) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot open {dir}: {e}");
            return 1;
        }
    };
    if demo && db.function_names().is_empty() {
        seed_demo(&db);
        println!("seeded demo data (table numbers + mean_deviation)");
    }
    let stats = db.storage_stats().expect("opened engines are persistent");
    println!("opened {}", stats.dir.display());
    if stats.wal_records == 0 {
        println!(
            "  wal: empty ({} bytes), next seq {}",
            stats.wal_bytes,
            stats.base_seq + 1
        );
    } else {
        println!(
            "  wal: {} records ({} bytes), seq {}..{}",
            stats.wal_records,
            stats.wal_bytes,
            stats.base_seq + 1,
            stats.last_seq
        );
    }
    println!("  functions: {}", db.function_names().join(", "));
    0
}

/// Fold the WAL into a fresh snapshot (`devudf checkpoint DATADIR`).
fn cmd_checkpoint(args: &[String]) -> i32 {
    let Some(dir) = args.get(1) else {
        eprintln!("usage: devudf checkpoint DATADIR");
        return 2;
    };
    let db = match monetlite::Engine::open(Path::new(dir)) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot open {dir}: {e}");
            return 1;
        }
    };
    match db.checkpoint() {
        Ok(stats) => {
            println!(
                "checkpointed {} at seq {} (wal truncated to {} bytes)",
                stats.dir.display(),
                stats.base_seq,
                stats.wal_bytes
            );
            0
        }
        Err(e) => {
            eprintln!("checkpoint failed: {e}");
            1
        }
    }
}

fn cmd_log(args: &[String]) -> i32 {
    let Some(dir) = args.get(1) else {
        eprintln!("usage: devudf log DIR");
        return 2;
    };
    let repo = match minivcs::Repository::init(Path::new(dir)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open repository: {e}");
            return 1;
        }
    };
    match repo.log() {
        Ok(log) => {
            for commit in log {
                println!(
                    "{}  #{}  {}  ({})",
                    &commit.id[..10.min(commit.id.len())],
                    commit.seq,
                    commit.message,
                    commit.author
                );
            }
            0
        }
        Err(e) => {
            eprintln!("cannot read log: {e}");
            1
        }
    }
}

fn cmd_diff(args: &[String]) -> i32 {
    let (Some(dir), Some(file)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: devudf diff DIR FILE");
        return 2;
    };
    let repo = match minivcs::Repository::init(Path::new(dir)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open repository: {e}");
            return 1;
        }
    };
    let head = match repo.head() {
        Ok(Some(h)) => h,
        Ok(None) => {
            eprintln!("no commits yet");
            return 1;
        }
        Err(e) => {
            eprintln!("cannot read HEAD: {e}");
            return 1;
        }
    };
    match repo.diff_file(file, &head, None) {
        Ok(diff) if diff.trim().is_empty() => {
            println!("no changes in {file}");
            0
        }
        Ok(diff) => {
            print!("{diff}");
            0
        }
        Err(e) => {
            eprintln!("cannot diff: {e}");
            1
        }
    }
}

/// The scripted end-to-end demo following the paper's §2.5 outline.
fn cmd_demo() -> i32 {
    println!("═══ devUDF demo (paper §2.5) ═══\n");
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), seed_demo);

    let dir = std::env::temp_dir().join(format!("devudf-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    let mut ide = HeadlessIde::open_in_proc(&server, settings, &dir).unwrap();

    println!("Step 1 — the traditional workflow runs the buggy UDF in the server:");
    let before = ide
        .dev
        .server_query("SELECT mean_deviation(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    println!("{}", before.render_ascii());
    println!("(a mean absolute deviation of 0.0 is clearly wrong — but why?)\n");

    println!("Step 2+4 — devUDF: import the UDF and debug it locally.");
    let mut import = ide.open_import_dialog().unwrap();
    import.import_all = true;
    ide.confirm_import(&import).unwrap();
    println!("{}\n", import.render());

    // Watch the distance accumulate signed values under the debugger.
    let dbg = pylite::Debugger::scripted(vec![DebugCommand::Continue; 200]);
    let bp = 7 + devudf::transform::BODY_LINE_OFFSET;
    dbg.borrow_mut().add_breakpoint(bp);
    let outcome = ide.dev.debug_udf("mean_deviation", dbg.clone()).unwrap();
    println!(
        "debugger paused {} times at the accumulation line; locals at pause 3:",
        outcome.pauses
    );
    for (name, value) in &dbg.borrow().pauses()[2].locals {
        println!("   {name} = {value}");
    }
    println!("→ `distance` goes NEGATIVE: the abs() is missing (Listing 4, line 9).\n");

    println!("Step 4b — fix locally, re-run locally, export:");
    let script = ide.dev.project.read_udf("mean_deviation").unwrap();
    let fixed = script.replace(
        "distance += column[i] - mean",
        "distance += abs(column[i] - mean)",
    );
    ide.dev.project.write_udf("mean_deviation", &fixed).unwrap();
    let local = ide.dev.run_udf("mean_deviation").unwrap();
    println!("local run result = {}", local.result_repr);
    ide.dev.export(&["mean_deviation"]).unwrap();
    let after = ide
        .dev
        .server_query("SELECT mean_deviation(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    println!("server-side after export:\n{}", after.render_ascii());

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
    println!("═══ demo complete ═══");
    0
}
