//! The headless IDE: menus + dialogs + a devUDF session.

use std::path::Path;

use devudf::{DevUdf, ImportReport, Result, Settings};
use wireproto::Server;

use crate::dialogs::{ExportDialog, ImportDialog};
use crate::menu::{main_menu, MenuItem};

/// A headless PyCharm: everything the paper's demo drives through the GUI,
/// as an API (plus text renderings of each figure).
pub struct HeadlessIde {
    pub dev: DevUdf,
    menu: MenuItem,
}

impl HeadlessIde {
    /// Open a project connected to an in-process server.
    pub fn open_in_proc(
        server: &Server,
        settings: Settings,
        project_root: &Path,
    ) -> Result<HeadlessIde> {
        Ok(HeadlessIde {
            dev: DevUdf::connect_in_proc(server, settings, project_root)?,
            menu: main_menu(),
        })
    }

    /// Open a project connected over TCP (settings carry host/port).
    pub fn open_tcp(settings: Settings, project_root: &Path) -> Result<HeadlessIde> {
        Ok(HeadlessIde {
            dev: DevUdf::connect_tcp(settings, project_root)?,
            menu: main_menu(),
        })
    }

    /// Figure 1: the main menu rendering.
    pub fn render_main_menu(&self) -> String {
        self.menu.render()
    }

    /// Figure 2: the settings dialog rendering.
    pub fn render_settings_dialog(&self) -> String {
        self.dev.settings.render_dialog()
    }

    /// Settings-dialog knob: worker threads for the chunked transfer
    /// codec (`None` shares the process-global pool). Persists with the
    /// project settings and takes effect on the next (re)connect —
    /// exactly like editing the connection parameters in the dialog.
    pub fn set_transfer_parallelism(&mut self, threads: Option<usize>) -> Result<()> {
        self.dev.settings.transfer.parallelism = threads;
        self.dev.settings.save(self.dev.project.root())?;
        Ok(())
    }

    /// Figure 3a: build the Import dialog from the live server state.
    pub fn open_import_dialog(&mut self) -> Result<ImportDialog> {
        Ok(ImportDialog::new(self.dev.server_functions()?))
    }

    /// Confirm an Import dialog: import the selection into the project.
    pub fn confirm_import(&mut self, dialog: &ImportDialog) -> Result<ImportReport> {
        let selection = dialog.selection();
        let refs: Vec<&str> = selection.iter().map(|s| s.as_str()).collect();
        if dialog.import_all {
            self.dev.import_all()
        } else {
            self.dev.import(&refs)
        }
    }

    /// Figure 3b: build the Export dialog from the project state.
    pub fn open_export_dialog(&self) -> Result<ExportDialog> {
        Ok(ExportDialog::new(self.dev.project.udf_names()?))
    }

    /// Confirm an Export dialog: push the selection back to the server.
    pub fn confirm_export(&mut self, dialog: &ExportDialog) -> Result<Vec<String>> {
        let selection = dialog.selection();
        let refs: Vec<&str> = selection.iter().map(|s| s.as_str()).collect();
        self.dev.export(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireproto::ServerConfig;

    fn demo_server() -> Server {
        Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            db.execute("INSERT INTO numbers VALUES (1), (2), (3)")
                .unwrap();
            db.execute(
                "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return 0.0 }",
            )
            .unwrap();
            db.execute(
                "CREATE FUNCTION loadnumbers(path STRING) RETURNS TABLE(i INTEGER) LANGUAGE PYTHON { return {'i': [1]} }",
            )
            .unwrap();
        })
    }

    fn temp_ide(server: &Server, tag: &str) -> HeadlessIde {
        let dir = std::env::temp_dir().join(format!(
            "devudf-ide-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut settings = Settings::default();
        settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
        HeadlessIde::open_in_proc(server, settings, &dir).unwrap()
    }

    #[test]
    fn figure1_menu_contains_udf_development() {
        let server = demo_server();
        let ide = temp_ide(&server, "fig1");
        let menu = ide.render_main_menu();
        assert!(menu.contains("UDF Development"));
        assert!(menu.contains("Import UDFs"));
        assert!(menu.contains("Export UDFs"));
        assert!(menu.contains("Settings"));
        std::fs::remove_dir_all(ide.dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn figure2_settings_dialog_renders() {
        let server = demo_server();
        let ide = temp_ide(&server, "fig2");
        let dialog = ide.render_settings_dialog();
        assert!(dialog.contains("Host:"));
        assert!(dialog.contains("SELECT mean_deviation(i)"));
        std::fs::remove_dir_all(ide.dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn transfer_parallelism_knob_persists_and_renders() {
        let server = demo_server();
        let mut ide = temp_ide(&server, "parallel");
        assert!(!ide.render_settings_dialog().contains("codec threads"));
        ide.set_transfer_parallelism(Some(4)).unwrap();
        assert!(ide.render_settings_dialog().contains("4 codec threads"));
        // The knob persists with the project settings on disk.
        let reloaded = Settings::load(ide.dev.project.root()).unwrap();
        assert_eq!(reloaded.transfer.parallelism, Some(4));
        ide.set_transfer_parallelism(None).unwrap();
        assert_eq!(
            Settings::load(ide.dev.project.root())
                .unwrap()
                .transfer
                .parallelism,
            None
        );
        std::fs::remove_dir_all(ide.dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn figure3_import_export_flow() {
        let server = demo_server();
        let mut ide = temp_ide(&server, "fig3");
        // Import via dialog.
        let mut import = ide.open_import_dialog().unwrap();
        assert_eq!(import.entries.len(), 2);
        import.toggle("mean_deviation");
        let report = ide.confirm_import(&import).unwrap();
        assert_eq!(report.imported.len(), 1);
        // Export via dialog.
        let mut export = ide.open_export_dialog().unwrap();
        assert_eq!(
            export
                .entries
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["mean_deviation"]
        );
        export.toggle("mean_deviation");
        let exported = ide.confirm_export(&export).unwrap();
        assert_eq!(exported, vec!["mean_deviation"]);
        std::fs::remove_dir_all(ide.dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn import_all_via_dialog() {
        let server = demo_server();
        let mut ide = temp_ide(&server, "all");
        let mut import = ide.open_import_dialog().unwrap();
        import.import_all = true;
        let report = ide.confirm_import(&import).unwrap();
        assert_eq!(report.imported.len(), 2);
        std::fs::remove_dir_all(ide.dev.project.root()).ok();
        server.shutdown();
    }
}
