//! Interactive debugger front-end (the IDE's "Debug" command, §2.1).
//!
//! A [`ReplController`] turns a command stream (stdin, a script, a test
//! fixture) into [`pylite::DebugCommand`]s, printing the paused location,
//! stack, locals and watch values to its output. Commands:
//!
//! ```text
//! c / continue     run to the next breakpoint
//! s / step         step into
//! n / next         step over
//! o / out          step out of the current function
//! l / locals       print the local variables
//! bt / stack       print the call stack
//! p <name>         print one local (or global) variable
//! q / quit         terminate the program
//! ```

use std::cell::RefCell;
use std::io::{BufRead, Write};
use std::rc::Rc;

use pylite::{DebugCommand, Debugger, PauseInfo};

/// Scriptable interactive controller.
pub struct ReplController<R: BufRead, W: Write> {
    input: R,
    output: W,
}

impl<R: BufRead + 'static, W: Write + 'static> ReplController<R, W> {
    pub fn new(input: R, output: W) -> Self {
        ReplController { input, output }
    }

    /// Build a [`Debugger`] driven by this controller.
    pub fn into_debugger(self) -> Rc<RefCell<Debugger>> {
        let me = RefCell::new(self);
        Debugger::with_controller(move |pause| me.borrow_mut().handle_pause(pause))
    }

    fn handle_pause(&mut self, pause: &PauseInfo) -> DebugCommand {
        let _ = writeln!(
            self.output,
            "⏸  paused at line {} in {} ({:?})",
            pause.line, pause.function, pause.reason
        );
        for (expr, value) in &pause.watches {
            let _ = writeln!(self.output, "   watch {expr} = {value}");
        }
        loop {
            let _ = write!(self.output, "(devudf-dbg) ");
            let _ = self.output.flush();
            let mut line = String::new();
            match self.input.read_line(&mut line) {
                Ok(0) | Err(_) => return DebugCommand::Continue, // EOF: run on
                Ok(_) => {}
            }
            let mut parts = line.split_whitespace();
            match parts.next().unwrap_or("") {
                "" => continue,
                "c" | "continue" => return DebugCommand::Continue,
                "s" | "step" => return DebugCommand::StepInto,
                "n" | "next" => return DebugCommand::StepOver,
                "o" | "out" => return DebugCommand::StepOut,
                "q" | "quit" => return DebugCommand::Quit,
                "l" | "locals" => {
                    if pause.locals.is_empty() {
                        let _ = writeln!(self.output, "   (no locals)");
                    }
                    for (name, value) in &pause.locals {
                        let _ = writeln!(self.output, "   {name} = {value}");
                    }
                }
                "bt" | "stack" => {
                    for (depth, (func, line)) in pause.stack.iter().enumerate() {
                        let _ = writeln!(self.output, "   #{depth} {func} (line {line})");
                    }
                }
                "p" | "print" => {
                    let Some(name) = parts.next() else {
                        let _ = writeln!(self.output, "   usage: p <name>");
                        continue;
                    };
                    match pause.locals.iter().find(|(n, _)| n == name) {
                        Some((_, value)) => {
                            let _ = writeln!(self.output, "   {name} = {value}");
                        }
                        None => {
                            let _ = writeln!(self.output, "   NameError: '{name}' not in locals");
                        }
                    }
                }
                other => {
                    let _ = writeln!(
                        self.output,
                        "   unknown command '{other}' (c/s/n/o/l/bt/p/q)"
                    );
                }
            }
        }
    }
}

/// Shared writable buffer for capturing REPL output in tests and demos.
#[derive(Clone, Default)]
pub struct SharedBuf(pub Rc<RefCell<Vec<u8>>>);

impl SharedBuf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.borrow()).to_string()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pylite::Interp;
    use std::io::Cursor;

    const PROGRAM: &str = "\
def helper(v):
    doubled = v * 2
    return doubled
total = 0
for i in range(3):
    total = total + helper(i)
final = total
";

    fn run_with_script(script: &str, breakpoints: &[u32]) -> (String, usize) {
        let buf = SharedBuf::new();
        let controller = ReplController::new(Cursor::new(script.to_string()), buf.clone());
        let dbg = controller.into_debugger();
        for &bp in breakpoints {
            dbg.borrow_mut().add_breakpoint(bp);
        }
        let mut interp = Interp::new();
        interp.set_hook(dbg.clone());
        let _ = interp.eval_module(PROGRAM);
        let pauses = dbg.borrow().pause_count();
        (buf.contents(), pauses)
    }

    #[test]
    fn continue_command_resumes() {
        let (out, pauses) = run_with_script("c\nc\nc\n", &[2]);
        assert_eq!(pauses, 3, "helper body runs three times");
        assert!(out.contains("paused at line 2 in helper"));
    }

    #[test]
    fn locals_command_prints_variables() {
        let (out, _) = run_with_script("l\nc\nc\nc\n", &[2]);
        assert!(out.contains("v = 0"));
    }

    #[test]
    fn print_command_fetches_one_local() {
        let (out, _) = run_with_script("p v\nc\nc\nc\n", &[2]);
        assert!(out.contains("v = 0"));
        let (out, _) = run_with_script("p nothere\nc\nc\nc\n", &[2]);
        assert!(out.contains("NameError"));
    }

    #[test]
    fn stack_command_prints_frames() {
        let (out, _) = run_with_script("bt\nc\nc\nc\n", &[2]);
        assert!(out.contains("#0 <module>"));
        assert!(out.contains("helper"));
    }

    #[test]
    fn quit_command_stops_program() {
        let buf = SharedBuf::new();
        let controller = ReplController::new(Cursor::new("q\n".to_string()), buf.clone());
        let dbg = controller.into_debugger();
        dbg.borrow_mut().add_breakpoint(4);
        let mut interp = Interp::new();
        interp.set_hook(dbg);
        let err = interp.eval_module(PROGRAM).unwrap_err();
        assert!(err.message.contains("terminated"));
        assert_eq!(interp.get_global("final"), None);
    }

    #[test]
    fn eof_means_continue() {
        let (_, pauses) = run_with_script("", &[2]);
        assert_eq!(pauses, 3);
    }

    #[test]
    fn unknown_command_reports_and_stays_paused() {
        let (out, _) = run_with_script("frobnicate\nc\nc\nc\n", &[2]);
        assert!(out.contains("unknown command 'frobnicate'"));
    }

    #[test]
    fn step_commands_issue_correct_debug_commands() {
        // Step over from line 6 must stay out of helper.
        let buf = SharedBuf::new();
        let controller = ReplController::new(Cursor::new("n\nc\n".to_string()), buf.clone());
        let dbg = controller.into_debugger();
        dbg.borrow_mut().add_breakpoint(6);
        let mut interp = Interp::new();
        interp.set_hook(dbg.clone());
        interp.eval_module(PROGRAM).unwrap();
        let d = dbg.borrow();
        assert!(d.pause_count() >= 2);
        assert_ne!(d.pauses()[1].function, "helper");
    }
}
