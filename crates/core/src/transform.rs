//! The code transformations of paper §2.2 (Listing 1 → Listing 2 and back).
//!
//! The database stores only the *body* of a UDF; to run it locally the
//! plugin must synthesize a `def` header from the function name and its
//! parameters (read from the meta tables), and append a harness that loads
//! the input data from `input.bin` via pickle and calls the function. On
//! export, the transformation is reversed: only the body is committed.

use wireproto::client::FunctionInfo;

use crate::DevUdfError;

/// File name of the transferred input data (paper Listing 2 line 14).
pub const INPUT_BIN: &str = "input.bin";

/// Marker comments delimiting the generated harness, so the reverse
/// transformation is unambiguous even if the user edits the body heavily.
const HARNESS_MARKER: &str = "# --- devudf harness (do not edit below) ---";

/// Generate the local, runnable script for a UDF (the paper's Listing 2).
pub fn to_local_script(info: &FunctionInfo) -> String {
    let mut out = String::with_capacity(info.body.len() + 256);
    out.push_str("import pickle\n\n");
    let params: Vec<&str> = info.params.iter().map(|(n, _)| n.as_str()).collect();
    out.push_str(&format!("def {}({}):\n", info.name, params.join(", ")));
    for line in info.body.lines() {
        if line.trim().is_empty() {
            out.push('\n');
        } else {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push('\n');
    out.push_str(HARNESS_MARKER);
    out.push('\n');
    out.push_str(&format!(
        "input_parameters = pickle.load(open('./{INPUT_BIN}', 'rb'))\n\n"
    ));
    let args: Vec<String> = params
        .iter()
        .map(|p| format!("input_parameters['{p}']"))
        .collect();
    out.push_str(&format!(
        "result = {}({})\n",
        info.name,
        args.join(",\n    ")
    ));
    out
}

/// 1-based line offset of the first body line inside the generated script
/// (`import pickle`, blank, `def …:` → body starts at line 4). Breakpoints
/// set "on body line n" map to file line `n + BODY_LINE_OFFSET`.
pub const BODY_LINE_OFFSET: u32 = 3;

/// Reverse transformation: recover the UDF *body* from a local script.
///
/// Finds `def <name>(…):` and takes its indented block, dedenting by one
/// level. Everything from the harness marker on is ignored.
pub fn extract_body(script: &str, fn_name: &str) -> Result<String, DevUdfError> {
    let mut lines = script.lines().peekable();
    // Find the def line.
    let def_prefix = format!("def {fn_name}(");
    for line in lines.by_ref() {
        if line.trim_start().starts_with(&def_prefix) {
            break;
        }
        if line == HARNESS_MARKER {
            return Err(DevUdfError::Transform(format!(
                "no 'def {fn_name}(...)' found before the harness marker"
            )));
        }
    }
    let mut body = String::new();
    let mut saw_any = false;
    for line in lines {
        if line == HARNESS_MARKER {
            break;
        }
        if line.trim().is_empty() {
            // Blank lines inside the body are preserved (trailing ones are
            // trimmed afterwards).
            body.push('\n');
            continue;
        }
        let indent = line.len() - line.trim_start().len();
        if indent == 0 {
            // Dedented back to module level: body ended.
            break;
        }
        let stripped = if let Some(rest) = line.strip_prefix("    ") {
            rest
        } else {
            line.trim_start()
        };
        body.push_str(stripped);
        body.push('\n');
        saw_any = true;
    }
    if !saw_any {
        return Err(DevUdfError::Transform(format!(
            "function '{fn_name}' has an empty body"
        )));
    }
    // Trim trailing blank lines.
    while body.ends_with("\n\n") {
        body.pop();
    }
    Ok(body)
}

/// Build the `CREATE OR REPLACE FUNCTION` statement committing `body` back
/// to the server (the export step, Figure 3b).
pub fn to_create_statement(info: &FunctionInfo, body: &str) -> String {
    let params: Vec<String> = info
        .params
        .iter()
        .map(|(n, t)| format!("{n} {t}"))
        .collect();
    format!(
        "CREATE OR REPLACE FUNCTION {}({}) RETURNS {} LANGUAGE {} {{\n{}}}",
        info.name,
        params.join(", "),
        info.return_type,
        info.language,
        body
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_rnforest_info() -> FunctionInfo {
        FunctionInfo {
            name: "train_rnforest".to_string(),
            params: vec![
                ("data".to_string(), "INTEGER".to_string()),
                ("classes".to_string(), "INTEGER".to_string()),
                ("n_estimators".to_string(), "INTEGER".to_string()),
            ],
            return_type: "TABLE(clf BLOB, estimators INTEGER)".to_string(),
            language: "PYTHON".to_string(),
            body: "import pickle\nfrom sklearn.ensemble import RandomForestClassifier\nclf = RandomForestClassifier(n_estimators)\nclf.fit(data, classes)\nreturn {'clf': pickle.dumps(clf), 'estimators': n_estimators}\n".to_string(),
        }
    }

    #[test]
    fn generates_listing2_shape() {
        let script = to_local_script(&train_rnforest_info());
        // The structural elements of paper Listing 2:
        assert!(script.starts_with("import pickle\n"));
        assert!(script.contains("def train_rnforest(data, classes, n_estimators):"));
        assert!(script.contains("    clf = RandomForestClassifier(n_estimators)"));
        assert!(script.contains("input_parameters = pickle.load(open('./input.bin', 'rb'))"));
        assert!(script.contains("train_rnforest(input_parameters['data']"));
        assert!(script.contains("input_parameters['n_estimators']"));
    }

    #[test]
    fn generated_script_parses() {
        let script = to_local_script(&train_rnforest_info());
        assert!(pylite::parse_module(&script).is_ok(), "{script}");
    }

    #[test]
    fn body_line_offset_is_correct() {
        let script = to_local_script(&train_rnforest_info());
        let lines: Vec<&str> = script.lines().collect();
        // Body line 1 ("import pickle") must sit at file line 1 + offset.
        assert_eq!(
            lines[(1 + BODY_LINE_OFFSET - 1) as usize].trim(),
            "import pickle"
        );
    }

    #[test]
    fn round_trip_import_then_export_is_identity() {
        let info = train_rnforest_info();
        let script = to_local_script(&info);
        let body = extract_body(&script, &info.name).unwrap();
        assert_eq!(body, info.body);
    }

    #[test]
    fn round_trip_preserves_nested_indentation() {
        let info = FunctionInfo {
            name: "mean_deviation".to_string(),
            params: vec![("column".to_string(), "INTEGER".to_string())],
            return_type: "DOUBLE".to_string(),
            language: "PYTHON".to_string(),
            body: "mean = 0\nfor i in range(0, len(column)):\n    mean += column[i]\nmean = mean / len(column)\nreturn mean\n".to_string(),
        };
        let script = to_local_script(&info);
        let body = extract_body(&script, &info.name).unwrap();
        assert_eq!(body, info.body);
    }

    #[test]
    fn extract_body_from_user_edited_script() {
        // The user fixed the bug and added a comment; only the def block
        // should be exported.
        let script = "\
import pickle

def mean_deviation(column):
    mean = sum(column) / len(column)
    # fixed: use abs()
    distance = 0
    for i in range(0, len(column)):
        distance += abs(column[i] - mean)
    return distance / len(column)

# --- devudf harness (do not edit below) ---
input_parameters = pickle.load(open('./input.bin', 'rb'))

result = mean_deviation(input_parameters['column'])
";
        let body = extract_body(script, "mean_deviation").unwrap();
        assert!(body.contains("abs(column[i] - mean)"));
        assert!(!body.contains("pickle.load"));
        assert!(!body.contains("def mean_deviation"));
    }

    #[test]
    fn extract_body_missing_function_errors() {
        assert!(extract_body("x = 1\n", "ghost").is_err());
        assert!(matches!(
            extract_body("def other():\n    pass\n", "ghost"),
            Err(DevUdfError::Transform(_))
        ));
    }

    #[test]
    fn create_statement_round_trips_through_server() {
        let info = train_rnforest_info();
        let stmt = to_create_statement(&info, &info.body);
        assert!(stmt.starts_with("CREATE OR REPLACE FUNCTION train_rnforest(data INTEGER"));
        assert!(stmt.contains("RETURNS TABLE(clf BLOB, estimators INTEGER)"));
        // The statement must be valid against a real engine.
        let db = monetlite::Engine::new();
        db.execute(&stmt).unwrap();
        let stored = db.get_function("train_rnforest").unwrap().unwrap();
        assert_eq!(stored.body.trim_end(), info.body.trim_end());
    }

    #[test]
    fn blank_lines_in_body_survive() {
        let info = FunctionInfo {
            name: "f".to_string(),
            params: vec![("x".to_string(), "INTEGER".to_string())],
            return_type: "INTEGER".to_string(),
            language: "PYTHON".to_string(),
            body: "a = 1\n\nb = 2\nreturn a + b + x\n".to_string(),
        };
        let script = to_local_script(&info);
        let body = extract_body(&script, "f").unwrap();
        assert_eq!(body, info.body);
    }
}
