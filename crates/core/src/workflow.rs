//! Workflow instrumentation: the traditional edit → `CREATE FUNCTION` →
//! rerun loop versus the devUDF loop (paper §1 and demo step 1 vs step 4).
//!
//! The paper claims devUDF makes UDF development "more attractive, faster
//! and easier"; it reports no numbers. This module makes the claim
//! measurable: both workflows are driven programmatically for `k` fix
//! iterations and we count wall time and server round trips.

use std::time::{Duration, Instant};

use crate::session::DevUdf;
use crate::{DevUdfError, Result};

/// Measured cost of one workflow run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkflowStats {
    /// Total wall-clock time.
    pub wall_micros: u128,
    /// Messages that crossed the client↔server wire.
    pub server_round_trips: usize,
    /// Edit-run iterations performed.
    pub iterations: usize,
}

impl WorkflowStats {
    pub fn wall(&self) -> Duration {
        Duration::from_micros(self.wall_micros as u64)
    }
}

/// The traditional workflow (paper §1): for every candidate fix, re-create
/// the function on the server and rerun the SQL query there.
///
/// `body_for(i)` yields the UDF body for iteration `i` (the i-th attempt at
/// a fix); `signature` is the `CREATE OR REPLACE FUNCTION …(…) RETURNS …
/// LANGUAGE PYTHON` prefix.
pub fn traditional_workflow(
    dev: &mut DevUdf,
    signature: &str,
    test_query: &str,
    iterations: usize,
    mut body_for: impl FnMut(usize) -> String,
) -> Result<WorkflowStats> {
    let start = Instant::now();
    let mut round_trips = 0usize;
    for i in 0..iterations {
        let stmt = format!("{signature} {{\n{}}}", body_for(i));
        dev.server_query(&stmt)?;
        round_trips += 1;
        dev.server_query(test_query)?;
        round_trips += 1;
    }
    Ok(WorkflowStats {
        wall_micros: start.elapsed().as_micros(),
        server_round_trips: round_trips,
        iterations,
    })
}

/// The devUDF workflow: import once, fetch the inputs once, then iterate
/// locally (edit file → local run); export the final version once.
pub fn devudf_workflow(
    dev: &mut DevUdf,
    udf: &str,
    iterations: usize,
    mut script_for: impl FnMut(usize, &str) -> String,
) -> Result<WorkflowStats> {
    let start = Instant::now();
    let mut round_trips = 0usize;

    if !dev.project.has_udf(udf) {
        let report = dev.import(&[udf])?;
        if report.imported.is_empty() {
            return Err(DevUdfError::Config(format!("cannot import '{udf}'")));
        }
        round_trips += 2; // list + get
    }
    dev.fetch_inputs(udf)?;
    round_trips += 1;

    let original = dev.project.read_udf(udf)?;
    for i in 0..iterations {
        let edited = script_for(i, &original);
        dev.project.write_udf(udf, &edited)?;
        // Local run: zero server round trips.
        dev.run_udf(udf)?;
    }
    dev.export(&[udf])?;
    round_trips += 2; // get_function + create-or-replace

    Ok(WorkflowStats {
        wall_micros: start.elapsed().as_micros(),
        server_round_trips: round_trips,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Settings;
    use wireproto::{Server, ServerConfig};

    fn big_server(rows: usize) -> Server {
        Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), move |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            let values: Vec<String> = (0..rows).map(|i| format!("({i})")).collect();
            db.execute(&format!("INSERT INTO numbers VALUES {}", values.join(", ")))
                .unwrap();
            db.execute(
                "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\nreturn 0.0\n}",
            )
            .unwrap();
        })
    }

    fn temp_dev(server: &Server, tag: &str) -> DevUdf {
        let dir = std::env::temp_dir().join(format!(
            "devudf-workflow-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut settings = Settings::default();
        settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
        DevUdf::connect_in_proc(server, settings, &dir).unwrap()
    }

    #[test]
    fn traditional_workflow_counts_two_trips_per_iteration() {
        let server = big_server(100);
        let mut dev = temp_dev(&server, "trad");
        let stats = traditional_workflow(
            &mut dev,
            "CREATE OR REPLACE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON",
            "SELECT mean_deviation(i) FROM numbers",
            5,
            |i| format!("return {i}.0\n"),
        )
        .unwrap();
        assert_eq!(stats.server_round_trips, 10);
        assert_eq!(stats.iterations, 5);
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn devudf_workflow_round_trips_independent_of_iterations() {
        let server = big_server(100);
        let mut dev = temp_dev(&server, "dev");
        let stats = devudf_workflow(&mut dev, "mean_deviation", 8, |i, original| {
            original.replace("return 0.0", &format!("return {i}.0"))
        })
        .unwrap();
        // Fixed costs only: import (2) + fetch (1) + export (2).
        assert_eq!(stats.server_round_trips, 5);
        assert_eq!(stats.iterations, 8);
        // The final export committed the last edit.
        let body = dev.function_info("mean_deviation").unwrap().body;
        assert!(body.contains("return 7.0"));
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
}
