//! The `DevUdf` facade: one connected plugin session over one project.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use wireproto::client::FunctionInfo;
use wireproto::{Client, Embedded, EngineTransport, Server, TransferStats};

use crate::debug::{self, DebugOutcome, RunOutcome};
use crate::import_export::{self, ImportReport, UdfSelection};
use crate::project::Project;
use crate::settings::Settings;
use crate::{DevUdfError, Result};

/// A devUDF session: settings + project + live server connection.
///
/// This is the object the IDE facade drives; its methods correspond 1:1 to
/// the plugin's menu entries (Figure 1: Settings, Import UDFs, Export UDFs,
/// plus the Debug command).
pub struct DevUdf {
    pub settings: Settings,
    pub project: Project,
    /// The database, behind the transport abstraction: a wire [`Client`]
    /// (TCP or in-proc channel) or an [`Embedded`] in-process engine —
    /// every session method is transport-agnostic.
    pub(crate) client: Rc<RefCell<dyn EngineTransport>>,
    /// Transfer statistics accumulated across extractions (reported by the
    /// CLI and the benchmarks).
    pub(crate) transfers: Rc<RefCell<Vec<TransferStats>>>,
}

impl DevUdf {
    /// Connect to an in-process server (tests, benchmarks, examples).
    /// The settings' retry policy applies (socket deadlines do not — the
    /// in-process channel has no sockets).
    pub fn connect_in_proc(
        server: &Server,
        settings: Settings,
        project_root: &Path,
    ) -> Result<DevUdf> {
        let client = Client::connect_in_proc_with(
            server,
            &settings.user,
            &settings.password,
            &settings.database,
            settings.client_options(),
        )?;
        Self::with_client(client, settings, project_root)
    }

    /// Connect over TCP using the host/port from the settings; the
    /// settings' retry policy and socket deadlines apply.
    pub fn connect_tcp(settings: Settings, project_root: &Path) -> Result<DevUdf> {
        let addr: std::net::SocketAddr = format!("{}:{}", settings.host, settings.port)
            .parse()
            .map_err(|e| DevUdfError::Config(format!("bad host/port: {e}")))?;
        let client = Client::connect_tcp_with(
            addr,
            &settings.user,
            &settings.password,
            &settings.database,
            settings.client_options(),
        )?;
        Self::with_client(client, settings, project_root)
    }

    /// Embed the engine in-process ("MonetDBLite mode", DESIGN §17): no
    /// server, no wire. `settings.storage.data_dir` picks the persistent
    /// directory (WAL + snapshots, replayed here on open); empty means a
    /// fresh in-memory engine. The settings' interp mode is applied to
    /// the embedded engine exactly as the demo server applies it, so the
    /// three-way interpreter matrix behaves identically on both
    /// transports. `configure` runs against the engine before the
    /// session starts (seed data, rng seeds).
    pub fn connect_embedded(
        settings: Settings,
        project_root: &Path,
        configure: impl FnOnce(&monetlite::Engine),
    ) -> Result<DevUdf> {
        let embedded = if settings.storage.data_dir.is_empty() {
            Embedded::in_memory()
        } else {
            Embedded::open(&settings.storage.data_dir, settings.storage.options())?
        };
        embedded
            .engine()
            .set_exec_mode(settings.interp.pylite_mode());
        embedded.engine().set_inline(settings.interp.inline());
        configure(embedded.engine());
        Self::with_client(embedded, settings, project_root)
    }

    fn with_client(
        client: impl EngineTransport + 'static,
        settings: Settings,
        project_root: &Path,
    ) -> Result<DevUdf> {
        let project = Project::open(project_root)?;
        settings.save(project.root())?;
        Ok(DevUdf {
            settings,
            project,
            client: Rc::new(RefCell::new(client)),
            transfers: Rc::new(RefCell::new(Vec::new())),
        })
    }

    /// Shared transport handle (used internally and by the workflow
    /// driver).
    pub fn client(&self) -> Rc<RefCell<dyn EngineTransport>> {
        self.client.clone()
    }

    /// Names of UDFs stored on the server (the Import dialog's list).
    pub fn server_functions(&self) -> Result<Vec<String>> {
        Ok(self.client.borrow_mut().list_functions()?)
    }

    /// Full metadata of one server-side UDF.
    pub fn function_info(&self, name: &str) -> Result<FunctionInfo> {
        Ok(self.client.borrow_mut().get_function(name)?)
    }

    /// Import every UDF stored in the server ("import all functions",
    /// Figure 3a).
    pub fn import_all(&mut self) -> Result<ImportReport> {
        import_export::import_udfs(self, UdfSelection::All)
    }

    /// Import a selection of UDFs (Figure 3a).
    pub fn import(&mut self, names: &[&str]) -> Result<ImportReport> {
        import_export::import_udfs(
            self,
            UdfSelection::Named(names.iter().map(|s| s.to_string()).collect()),
        )
    }

    /// Export edited UDFs back to the server (Figure 3b).
    pub fn export(&mut self, names: &[&str]) -> Result<Vec<String>> {
        import_export::export_udfs(self, names)
    }

    /// Fetch the input data for `udf` by running the settings' debug query
    /// with the UDF call intercepted (§2.2), and store it as `input.bin`.
    pub fn fetch_inputs(&mut self, udf: &str) -> Result<TransferStats> {
        debug::fetch_inputs(self, udf)
    }

    /// Run an imported UDF locally (no debugger).
    pub fn run_udf(&mut self, name: &str) -> Result<RunOutcome> {
        debug::run_local(self, name, None)
    }

    /// Run an imported UDF locally under the interactive debugger.
    pub fn debug_udf(
        &mut self,
        name: &str,
        debugger: Rc<RefCell<pylite::Debugger>>,
    ) -> Result<DebugOutcome> {
        debug::debug_local(self, name, debugger)
    }

    /// Execute arbitrary SQL on the server (the traditional workflow path).
    pub fn server_query(&mut self, sql: &str) -> Result<wireproto::message::WireResult> {
        Ok(self.client.borrow_mut().query(sql)?)
    }

    /// Execute SQL with end-to-end tracing: the query travels inside a
    /// traced wire envelope, the server ships its spans back, and the
    /// combined client→wire→engine→UDF tree is returned rendered (the
    /// body of `devudf trace`). The rendered string is empty when
    /// telemetry is off or the server predates the traced envelope.
    pub fn server_query_traced(
        &mut self,
        sql: &str,
    ) -> Result<(wireproto::message::WireResult, String)> {
        let (result, records) = self.client.borrow_mut().query_traced(sql)?;
        let tree = obs::trace::render_tree(&obs::trace::assemble(&records));
        Ok((result, tree))
    }

    /// Run an imported UDF locally with the line profiler armed and
    /// return its per-line hit/time report (the body of `devudf
    /// profile`).
    pub fn profile_udf(&mut self, name: &str) -> Result<debug::ProfileReport> {
        debug::profile_local(self, name)
    }

    /// All transfer statistics recorded so far.
    pub fn transfer_log(&self) -> Vec<TransferStats> {
        self.transfers.borrow().clone()
    }
}
