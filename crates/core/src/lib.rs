//! `devudf` — the paper's primary contribution, as a library.
//!
//! devUDF (EDBT 2019) is an IDE plugin that lets developers **develop and
//! interactively debug MonetDB/Python UDFs from inside their IDE**. This
//! crate implements the plugin's entire machinery against the reproduction
//! substrates (`monetlite` + `wireproto` + `pylite` + `minivcs`):
//!
//! | Paper feature (§) | Module |
//! |---|---|
//! | Connection settings dialog (Fig. 2) | [`settings`] |
//! | Import UDFs from meta tables (Fig. 3a) | [`import_export`] |
//! | Code transformations (Listings 1→2) | [`transform`] |
//! | Export UDFs back to the server (Fig. 3b) | [`import_export`] |
//! | Input extraction via query rewriting (§2.2) | [`debug`] + server extract |
//! | Transfer options: compress / encrypt / sample (§2.1) | [`settings`] → `wireproto` |
//! | Local runs + interactive debugging (§2.1) | [`debug`] |
//! | Nested UDFs and loopback queries (§2.3) | [`nested`], [`debug::LocalConn`] |
//! | VCS integration (§1) | [`project`] (via `minivcs`) |
//! | Workflow comparison (demo §2.5) | [`workflow`] |
//!
//! # Quickstart
//!
//! ```
//! use devudf::{DevUdf, Settings};
//! use wireproto::{Server, ServerConfig};
//!
//! // A running database server with a stored UDF.
//! let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
//!     db.execute("CREATE TABLE t (i INTEGER)").unwrap();
//!     db.execute("INSERT INTO t VALUES (1), (2), (3), (4)").unwrap();
//!     db.execute("CREATE FUNCTION double_it(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }").unwrap();
//! });
//!
//! // The devUDF side: a project directory + connection settings.
//! let dir = std::env::temp_dir().join(format!("devudf-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let mut settings = Settings::default();
//! settings.debug_query = "SELECT double_it(i) FROM t".to_string();
//! let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
//!
//! // Import, run locally, inspect.
//! dev.import_all().unwrap();
//! let outcome = dev.run_udf("double_it").unwrap();
//! assert_eq!(outcome.result_repr, "array([2, 4, 6, 8], dtype=int64)");
//! # std::fs::remove_dir_all(&dir).ok();
//! server.shutdown();
//! ```

pub mod debug;
pub mod import_export;
pub mod nested;
pub mod project;
pub mod session;
pub mod settings;
pub mod transform;
pub mod workflow;

pub use debug::{DebugOutcome, RunOutcome};
pub use import_export::ImportReport;
pub use project::Project;
pub use session::DevUdf;
pub use settings::{InterpMode, RetrySettings, Settings, StorageSettings, TransferSettings};

/// Crate-wide error type.
#[derive(Debug)]
pub enum DevUdfError {
    /// Connection/protocol failure.
    Wire(wireproto::WireError),
    /// Local filesystem problem.
    Io(std::io::Error),
    /// Code transformation failed (malformed script, unknown UDF…).
    Transform(String),
    /// Local interpreter error while running/debugging a UDF.
    Python(pylite::PyError),
    /// Configuration problem.
    Config(String),
}

impl std::fmt::Display for DevUdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DevUdfError::Wire(e) => write!(f, "{e}"),
            DevUdfError::Io(e) => write!(f, "io error: {e}"),
            DevUdfError::Transform(m) => write!(f, "transform error: {m}"),
            DevUdfError::Python(e) => write!(f, "python error: {e}"),
            DevUdfError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for DevUdfError {}

impl From<wireproto::WireError> for DevUdfError {
    fn from(e: wireproto::WireError) -> Self {
        DevUdfError::Wire(e)
    }
}

impl From<std::io::Error> for DevUdfError {
    fn from(e: std::io::Error) -> Self {
        DevUdfError::Io(e)
    }
}

impl From<pylite::PyError> for DevUdfError {
    fn from(e: pylite::PyError) -> Self {
        DevUdfError::Python(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DevUdfError>;
