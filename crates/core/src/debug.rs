//! Local execution and interactive debugging of UDFs (paper §2.1–§2.3).
//!
//! "Running the UDF in the interactive debugger will execute the function
//! locally on the developers' machine instead of remotely inside the
//! database server." The input data is fetched through the server-side
//! extract function, stored as `input.bin` in the project, and the
//! transformed script runs in a pylite interpreter whose `_conn` is rewired
//! to [`LocalConn`] — which forwards plain loopback queries to the live
//! connection and runs *nested UDFs locally* (§2.3).

use std::cell::RefCell;
use std::rc::Rc;

use pylite::debugger::DebugHook;
use pylite::value::{Dict, NativeObject};
use pylite::{pickle, Array, Debugger, Interp, PyError, Value};
use wireproto::client::FunctionInfo;
use wireproto::message::{WireResult, WireTable, WireValue};
use wireproto::{EngineTransport, TransferOptions, TransferStats};

use crate::nested;
use crate::session::DevUdf;
use crate::transform;
use crate::{DevUdfError, Result};

/// Outcome of a local (non-interactive) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Repr of the `result` global after the harness ran.
    pub result_repr: String,
    /// The raw result value.
    pub result: Value,
    /// Captured `print` output.
    pub stdout: String,
}

/// Outcome of a debug session (the pause trail lives in the `Debugger` the
/// caller installed).
#[derive(Debug, Clone)]
pub struct DebugOutcome {
    /// `Some` if execution ran to completion; `None` if the user quit.
    pub run: Option<RunOutcome>,
    /// Number of pauses that occurred.
    pub pauses: usize,
}

/// Fetch the input data for `udf` via the extract function and store it as
/// `input.bin` (paper §2.2).
pub fn fetch_inputs(dev: &mut DevUdf, udf: &str) -> Result<TransferStats> {
    let mut span = obs::trace::span("core.extract");
    span.field("udf", udf);
    if dev.settings.debug_query.trim().is_empty() {
        return Err(DevUdfError::Config(
            "no debug SQL query configured (Settings → SQL Query)".to_string(),
        ));
    }
    let options = dev.settings.transfer_options();
    let query = dev.settings.debug_query.clone();
    let (inputs, stats) = dev
        .client()
        .borrow_mut()
        .extract_inputs(&query, udf, options)?;
    let blob = pickle::dumps(&inputs).map_err(DevUdfError::Python)?;
    dev.project.write_input_bin(&blob)?;
    dev.transfers.borrow_mut().push(stats);
    Ok(stats)
}

/// Run an imported UDF locally. Fetches inputs automatically when
/// `input.bin` is missing.
pub fn run_local(
    dev: &mut DevUdf,
    name: &str,
    hook: Option<Rc<RefCell<dyn DebugHook>>>,
) -> Result<RunOutcome> {
    let mut span = obs::trace::span("core.run");
    span.field("udf", name);
    if !dev.project.has_udf(name) {
        return Err(DevUdfError::Transform(format!(
            "UDF '{name}' is not imported (Import UDFs first)"
        )));
    }
    if !dev.project.fs_provider().exists(transform::INPUT_BIN) {
        fetch_inputs(dev, name)?;
    }
    let script = dev.project.read_udf(name)?;

    let mut interp = Interp::with_fs(dev.project.fs_provider());
    interp.set_step_budget(200_000_000);
    interp.set_exec_mode(dev.settings.interp.pylite_mode());
    let conn = LocalConn::new(dev, hook.clone());
    interp.set_global("_conn", Value::Native(Rc::new(conn)));
    if let Some(h) = hook {
        interp.set_hook(h);
    }
    let eval = interp.eval_module(&script);
    let stdout = interp.take_stdout();
    match eval {
        Ok(_) => {
            let result = interp.get_global("result").unwrap_or(Value::None);
            Ok(RunOutcome {
                result_repr: result.repr(),
                result,
                stdout,
            })
        }
        Err(e) => Err(DevUdfError::Python(e)),
    }
}

/// Per-line profile of one local UDF run (paper §2.1's "IDE amenities"
/// applied to performance: the hot lines of the very script the
/// developer is editing).
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The run whose execution was profiled.
    pub outcome: RunOutcome,
    /// Per-(function, line) hit/time rows, sorted by (function, line).
    pub rows: Vec<obs::profile::ProfileRow>,
    /// The script source annotated with hits and time per line.
    pub annotated: String,
}

/// Run an imported UDF locally with the line profiler armed: activates
/// `obs::profile` around the run, then joins the per-line counters back
/// onto the script's source text. Requires telemetry to be enabled
/// (`obs::set_enabled(true)`, the default); with the `telemetry` feature
/// off the report's rows are empty.
pub fn profile_local(dev: &mut DevUdf, name: &str) -> Result<ProfileReport> {
    let mut span = obs::trace::span("core.profile");
    span.field("udf", name);
    obs::profile::reset();
    obs::profile::set_active(true);
    let run = run_local(dev, name, None);
    obs::profile::set_active(false);
    let rows = obs::profile::rows();
    obs::profile::reset();
    let outcome = run?;
    let script = dev.project.read_udf(name)?;
    Ok(ProfileReport {
        outcome,
        annotated: annotate_profile(&script, &rows),
        rows,
    })
}

/// Join profile rows onto source text: every line gets a `hits` and
/// `time` gutter, filled for the lines that executed. Rows are matched
/// by line number across all frames, so a `def`'d helper's body lines
/// annotate too.
fn annotate_profile(source: &str, rows: &[obs::profile::ProfileRow]) -> String {
    use std::fmt::Write;
    let mut by_line: std::collections::HashMap<u32, (u64, u64)> = std::collections::HashMap::new();
    for r in rows {
        let entry = by_line.entry(r.line).or_insert((0, 0));
        entry.0 += r.hits;
        entry.1 += r.ns;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} {:>12}  │ source", "hits", "time");
    for (idx, text) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        match by_line.get(&line) {
            Some((hits, ns)) => {
                let _ = writeln!(out, "{hits:>8} {:>12}  │ {text}", obs::trace::fmt_ns(*ns));
            }
            None => {
                let _ = writeln!(out, "{:>8} {:>12}  │ {text}", "", "");
            }
        }
    }
    out
}

/// Run an imported UDF under the interactive debugger. A `Quit` command
/// terminates execution without error (like stopping a debug session in the
/// IDE).
pub fn debug_local(
    dev: &mut DevUdf,
    name: &str,
    debugger: Rc<RefCell<Debugger>>,
) -> Result<DebugOutcome> {
    let _span = obs::trace::span("core.debug");
    let hook: Rc<RefCell<dyn DebugHook>> = debugger.clone();
    match run_local(dev, name, Some(hook)) {
        Ok(run) => Ok(DebugOutcome {
            run: Some(run),
            pauses: debugger.borrow().pause_count(),
        }),
        Err(DevUdfError::Python(e)) if e.message.contains("terminated by debugger") => {
            Ok(DebugOutcome {
                run: None,
                pauses: debugger.borrow().pause_count(),
            })
        }
        Err(e) => Err(e),
    }
}

/// The local `_conn` replacement (paper §2.3): plain loopback queries go to
/// the live server connection (transferring their results); queries that
/// invoke a known UDF run that UDF *locally*, on inputs extracted from the
/// server — so nested UDFs are debuggable too.
pub struct LocalConn {
    client: Rc<RefCell<dyn EngineTransport>>,
    /// Known server functions (name → metadata), for nested-call detection.
    functions: Vec<FunctionInfo>,
    options: TransferOptions,
    transfers: Rc<RefCell<Vec<TransferStats>>>,
    /// Debug hook propagated into nested UDF runs.
    hook: Option<Rc<RefCell<dyn DebugHook>>>,
    fs: Rc<dyn pylite::FsProvider>,
    /// Engine selection propagated into nested UDF interpreters.
    exec_mode: pylite::ExecMode,
    /// Shared nesting depth across the whole local run (each nested UDF
    /// spawns a fresh interpreter, so interpreter-level recursion guards
    /// cannot see loopback cycles).
    depth: Rc<RefCell<usize>>,
}

/// Maximum local nested-UDF depth (mirrors the engine-side guard).
const MAX_LOCAL_UDF_DEPTH: usize = 12;

impl LocalConn {
    fn new(dev: &DevUdf, hook: Option<Rc<RefCell<dyn DebugHook>>>) -> LocalConn {
        let names = dev
            .client()
            .borrow_mut()
            .list_functions()
            .unwrap_or_default();
        let mut functions = Vec::with_capacity(names.len());
        for n in &names {
            if let Ok(info) = dev.client().borrow_mut().get_function(n) {
                functions.push(info);
            }
        }
        LocalConn {
            client: dev.client(),
            functions,
            options: dev.settings.transfer_options(),
            transfers: dev.transfers.clone(),
            hook,
            fs: dev.project.fs_provider(),
            exec_mode: dev.settings.interp.pylite_mode(),
            depth: Rc::new(RefCell::new(0)),
        }
    }

    fn function_names(&self) -> Vec<String> {
        self.functions.iter().map(|f| f.name.clone()).collect()
    }

    fn execute_sql(&self, sql: &str) -> std::result::Result<Value, PyError> {
        let py_err = |m: String| PyError::new(pylite::ErrorKind::Value, m);

        // Nested UDF? Run it locally on extracted inputs.
        let known = self.function_names();
        let invoked = nested::udfs_in_sql(sql, &known);
        if let Some(udf_name) = invoked.first() {
            if *self.depth.borrow() >= MAX_LOCAL_UDF_DEPTH {
                return Err(py_err(format!(
                    "maximum nested-UDF depth exceeded ({MAX_LOCAL_UDF_DEPTH}) — loopback recursion?"
                )));
            }
            let info = self
                .functions
                .iter()
                .find(|f| f.name.eq_ignore_ascii_case(udf_name))
                .expect("invoked name came from this list")
                .clone();
            let (inputs, stats) = self
                .client
                .borrow_mut()
                .extract_inputs(sql, &info.name, self.options)
                .map_err(|e| py_err(format!("nested extract failed: {e}")))?;
            self.transfers.borrow_mut().push(stats);
            let Value::Dict(d) = &inputs else {
                return Err(py_err("extracted inputs were not a dict".to_string()));
            };

            // Fresh interpreter, same _conn (deeper nesting keeps working)
            // and same debug hook (stepping descends into nested UDFs).
            let mut interp = Interp::with_fs(self.fs.clone());
            interp.set_step_budget(200_000_000);
            interp.set_exec_mode(self.exec_mode);
            for (k, v) in d.borrow().entries() {
                interp.set_global(&k.py_str(), v.clone());
            }
            interp.set_global(
                "_conn",
                Value::Native(Rc::new(LocalConn {
                    client: self.client.clone(),
                    functions: self.functions.clone(),
                    options: self.options,
                    transfers: self.transfers.clone(),
                    hook: self.hook.clone(),
                    fs: self.fs.clone(),
                    exec_mode: self.exec_mode,
                    depth: self.depth.clone(),
                })),
            );
            if let Some(h) = &self.hook {
                interp.set_hook(h.clone());
            }
            let mut span = obs::trace::span("core.run.nested");
            span.field("udf", &info.name);
            span.field("depth", *self.depth.borrow() + 1);
            *self.depth.borrow_mut() += 1;
            let value = interp.eval_module(&info.body);
            *self.depth.borrow_mut() -= 1;
            drop(span);
            return Ok(local_result_set(value?));
        }

        // Plain data query: forward to the server.
        let result = self
            .client
            .borrow_mut()
            .query(sql)
            .map_err(|e| py_err(format!("loopback query failed: {e}")))?;
        match result {
            WireResult::Table(t) => Ok(table_result_set(&t)),
            WireResult::Affected { message, .. } => Err(py_err(format!(
                "loopback statement produced no result set ({message})"
            ))),
        }
    }
}

impl NativeObject for LocalConn {
    fn type_name(&self) -> &'static str {
        "monetdb_connection"
    }

    fn repr(&self) -> String {
        "<devudf local connection>".to_string()
    }

    fn call_method(
        &self,
        name: &str,
        _interp: &mut Interp,
        args: &[Value],
        _kwargs: &[(String, Value)],
    ) -> std::result::Result<Value, PyError> {
        match name {
            "execute" => {
                let Some(Value::Str(sql)) = args.first() else {
                    return Err(PyError::new(
                        pylite::ErrorKind::Type,
                        "_conn.execute() takes a SQL string",
                    ));
                };
                self.execute_sql(sql)
            }
            other => Err(PyError::new(
                pylite::ErrorKind::Attribute,
                format!("'monetdb_connection' object has no method '{other}'"),
            )),
        }
    }
}

/// Wrap a local UDF's return value the way server loopback results are
/// wrapped: dicts become name-addressable result sets; everything else is
/// a single-column result.
pub fn local_result_set(value: Value) -> Value {
    Value::Native(Rc::new(LocalResultSet { value }))
}

/// Convert a wire table into a result-set value (columns as arrays; 1-row
/// columns collapse to scalars, mirroring `monetlite`'s loopback behaviour).
pub fn table_result_set(t: &WireTable) -> Value {
    let mut d = Dict::new();
    for (idx, (name, _)) in t.columns.iter().enumerate() {
        let values: Vec<Value> = t.rows.iter().map(|r| wire_to_py(&r[idx])).collect();
        let v = column_value(values);
        d.insert(Value::str(name.clone()), v)
            .expect("string keys are hashable");
    }
    local_result_set(Value::dict(d))
}

fn wire_to_py(v: &WireValue) -> Value {
    match v {
        WireValue::Null => Value::None,
        WireValue::Int(i) => Value::Int(*i),
        WireValue::Double(d) => Value::Float(*d),
        WireValue::Str(s) => Value::str(s.clone()),
        WireValue::Bool(b) => Value::Bool(*b),
        WireValue::Blob(b) => Value::bytes(b.clone()),
    }
}

/// Build the friendliest value for a column: scalar when single-row, a
/// typed array when possible, else a plain list.
fn column_value(values: Vec<Value>) -> Value {
    if values.len() == 1 {
        return values.into_iter().next().expect("len checked");
    }
    match Array::from_values(&values) {
        Ok(a) => Value::array(a),
        Err(_) => Value::list(values),
    }
}

/// Result-set wrapper for local values.
struct LocalResultSet {
    value: Value,
}

impl NativeObject for LocalResultSet {
    fn type_name(&self) -> &'static str {
        "result_set"
    }

    fn repr(&self) -> String {
        format!("<local result_set {}>", self.value.repr())
    }

    fn iterate(&self) -> Option<Vec<Value>> {
        match &self.value {
            Value::Dict(d) => Some(d.borrow().values()),
            other => Some(vec![other.clone()]),
        }
    }

    fn call_method(
        &self,
        name: &str,
        _interp: &mut Interp,
        args: &[Value],
        _kwargs: &[(String, Value)],
    ) -> std::result::Result<Value, PyError> {
        match name {
            "__getitem__" => {
                let key = args.first().cloned().unwrap_or(Value::None);
                match &self.value {
                    Value::Dict(d) => d
                        .borrow()
                        .get(&key)?
                        .ok_or_else(|| PyError::new(pylite::ErrorKind::Key, key.repr())),
                    other => Err(PyError::new(
                        pylite::ErrorKind::Type,
                        format!("result of type '{}' is not keyed", other.type_name()),
                    )),
                }
            }
            "keys" => match &self.value {
                Value::Dict(d) => Ok(Value::list(d.borrow().keys())),
                _ => Ok(Value::list(vec![])),
            },
            other => Err(PyError::new(
                pylite::ErrorKind::Attribute,
                format!("'result_set' object has no method '{other}'"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Settings;
    use pylite::DebugCommand;
    use wireproto::{Server, ServerConfig};

    const MEAN_DEVIATION_BUGGY: &str = "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\nmean = 0\nfor i in range(0, len(column)):\n    mean += column[i]\nmean = mean / len(column)\ndistance = 0\nfor i in range(0, len(column)):\n    distance += column[i] - mean\ndeviation = distance / len(column)\nreturn deviation\n}";

    fn demo_server() -> Server {
        Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            db.execute("INSERT INTO numbers VALUES (1), (2), (3), (4), (5), (6)")
                .unwrap();
            db.execute(MEAN_DEVIATION_BUGGY).unwrap();
        })
    }

    fn temp_dev(server: &Server, tag: &str) -> DevUdf {
        let dir = std::env::temp_dir().join(format!(
            "devudf-debug-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut settings = Settings::default();
        settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
        DevUdf::connect_in_proc(server, settings, &dir).unwrap()
    }

    #[test]
    fn fetch_inputs_writes_input_bin() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "fetch");
        dev.import_all().unwrap();
        let stats = dev.fetch_inputs("mean_deviation").unwrap();
        assert!(stats.raw_len > 0);
        let blob = std::fs::read(dev.project.root().join("input.bin")).unwrap();
        let inputs = pickle::loads(&blob).unwrap();
        let Value::Dict(d) = inputs else { panic!() };
        let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
        match col {
            Value::Array(a) => assert_eq!(a.len(), 6),
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn run_local_executes_buggy_udf() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "run");
        dev.import_all().unwrap();
        let outcome = dev.run_udf("mean_deviation").unwrap();
        // The buggy version returns ~0 on symmetric data.
        match outcome.result {
            Value::Float(f) => assert!(f.abs() < 1e-9, "got {f}"),
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn debug_local_hits_breakpoint_in_body() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "bp");
        dev.import_all().unwrap();
        // Breakpoint on the buggy accumulation line: body line 7 ⇒ file
        // line 7 + BODY_LINE_OFFSET.
        let file_line = 7 + transform::BODY_LINE_OFFSET;
        let dbg = Debugger::scripted(vec![DebugCommand::Continue; 12]);
        dbg.borrow_mut().add_breakpoint(file_line);
        let outcome = dev.debug_udf("mean_deviation", dbg.clone()).unwrap();
        assert!(outcome.run.is_some());
        assert_eq!(outcome.pauses, 6, "loop body runs once per row");
        let d = dbg.borrow();
        assert_eq!(d.pauses()[0].function, "mean_deviation");
        // Locals at the pause expose the running `distance`.
        assert!(d.pauses()[2]
            .locals
            .iter()
            .any(|(n, v)| n == "distance" && v.starts_with('-')));
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn debug_quit_terminates_cleanly() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "quit");
        dev.import_all().unwrap();
        let dbg = Debugger::scripted(vec![DebugCommand::Quit]);
        dbg.borrow_mut().break_on_entry = true;
        let outcome = dev.debug_udf("mean_deviation", dbg).unwrap();
        assert!(outcome.run.is_none());
        assert_eq!(outcome.pauses, 1);
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn run_udf_without_import_errors() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "unimported");
        let err = dev.run_udf("mean_deviation").unwrap_err();
        assert!(matches!(err, DevUdfError::Transform(_)));
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn missing_debug_query_is_config_error() {
        let server = demo_server();
        let dir = std::env::temp_dir().join(format!("devudf-debug-noq-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let settings = Settings::default(); // empty debug_query
        let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
        dev.import_all().unwrap();
        assert!(matches!(
            dev.run_udf("mean_deviation").unwrap_err(),
            DevUdfError::Config(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
        server.shutdown();
    }

    #[test]
    fn local_conn_forwards_plain_loopback_queries() {
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            db.execute("INSERT INTO numbers VALUES (10), (20)").unwrap();
            db.execute(
                "CREATE FUNCTION uses_loopback(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nres = _conn.execute('SELECT i FROM numbers')\nreturn sum(res['i'])\n}",
            )
            .unwrap();
        });
        let dir = std::env::temp_dir().join(format!("devudf-debug-loop-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut settings = Settings::default();
        settings.debug_query = "SELECT uses_loopback(i) FROM numbers".to_string();
        let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
        dev.import_all().unwrap();
        let outcome = dev.run_udf("uses_loopback").unwrap();
        assert_eq!(outcome.result, Value::Int(30));
        std::fs::remove_dir_all(&dir).ok();
        server.shutdown();
    }

    #[test]
    fn local_run_emits_nested_phase_spans() {
        // Subscribers and the enable flag are process-global: serialize
        // with every other telemetry-recording test.
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            db.execute("INSERT INTO numbers VALUES (10), (20)").unwrap();
            db.execute(
                "CREATE FUNCTION inner_fn(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return sum(column) }",
            )
            .unwrap();
            db.execute(
                "CREATE FUNCTION outer_fn(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nres = _conn.execute('SELECT inner_fn(i) FROM numbers')\ntotal = 0\nfor v in res:\n    total += v\nreturn total\n}",
            )
            .unwrap();
        });
        let dir = std::env::temp_dir().join(format!("devudf-debug-spans-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut settings = Settings::default();
        settings.debug_query = "SELECT outer_fn(i) FROM numbers".to_string();
        let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
        dev.import_all().unwrap();

        let shared = std::sync::Arc::new(obs::trace::RingBufferRecorder::new(256));
        obs::trace::add_subscriber(shared.clone());
        let outcome = dev.run_udf("outer_fn").unwrap();
        obs::trace::clear_subscribers();
        assert_eq!(outcome.result, Value::Int(30));

        type SpanRow = (String, usize, Vec<(String, String)>);
        let spans: Vec<SpanRow> = shared
            .events()
            .iter()
            .filter_map(|e| match e {
                obs::trace::Event::Span {
                    name,
                    depth,
                    fields,
                    ..
                } => Some((name.to_string(), *depth, fields.clone())),
                _ => None,
            })
            .collect();
        // Other tests may run concurrently while telemetry is enabled and
        // emit their own spans into the shared subscriber: select ours by
        // the udf field, not by arrival order.
        let has_udf = |fields: &[(String, String)], udf: &str| {
            fields.iter().any(|(k, v)| k == "udf" && v == udf)
        };
        let run = spans
            .iter()
            .find(|(n, _, f)| n == "core.run" && has_udf(f, "outer_fn"))
            .unwrap();
        let nested = spans
            .iter()
            .find(|(n, _, f)| n == "core.run.nested" && has_udf(f, "inner_fn"))
            .unwrap();
        // The nested span opened while core.run was live: depth > core.run's.
        assert!(nested.1 > run.1, "nested {} vs run {}", nested.1, run.1);
        assert!(nested.2.iter().any(|(k, v)| k == "depth" && v == "1"));
        // Extract happened under the hood too (input.bin was missing).
        assert!(spans.iter().any(|(n, _, _)| n == "core.extract"));
        std::fs::remove_dir_all(&dir).ok();
        server.shutdown();
    }

    #[test]
    fn profile_local_counts_loop_line_hits() {
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        let server = demo_server();
        let mut dev = temp_dev(&server, "prof");
        dev.import_all().unwrap();
        let report = dev.profile_udf("mean_deviation").unwrap();
        // The accumulation line runs once per row: body line 7 ⇒ file
        // line 7 + BODY_LINE_OFFSET (same arithmetic as breakpoints).
        let loop_line = 7 + transform::BODY_LINE_OFFSET;
        let row = report
            .rows
            .iter()
            .find(|r| r.line == loop_line)
            .unwrap_or_else(|| panic!("no row for line {loop_line}: {:?}", report.rows));
        // Exactly 6 from our run; the profiler switch is process-global,
        // so a concurrent test's mean_deviation run may add whole extra
        // multiples of 6 — never a partial count.
        assert!(
            row.hits >= 6 && row.hits % 6 == 0,
            "loop body runs once per row: {row:?}"
        );
        // The annotated listing carries the hit count next to the source.
        let annotated_line = report
            .annotated
            .lines()
            .find(|l| l.contains("distance += column[i] - mean"))
            .unwrap();
        assert!(
            annotated_line
                .trim_start()
                .starts_with(|c: char| c.is_ascii_digit()),
            "{annotated_line}"
        );
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn transfer_options_respected_on_fetch() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "opts");
        dev.settings.transfer.compress = true;
        dev.settings.transfer.encrypt = true;
        dev.import_all().unwrap();
        let stats = dev.fetch_inputs("mean_deviation").unwrap();
        assert!(stats.raw_len > 0);
        // Running still works on the (transparently decoded) data.
        let outcome = dev.run_udf("mean_deviation").unwrap();
        assert!(matches!(outcome.result, Value::Float(_)));
        assert_eq!(dev.transfer_log().len(), 1);
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
}
