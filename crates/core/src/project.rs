//! The project model: UDFs as plain files in a directory, with optional
//! version control — the property §1 of the paper calls out as missing from
//! the in-database workflow.

use std::path::{Path, PathBuf};
use std::rc::Rc;

use minivcs::Repository;
use pylite::FsProvider;

use crate::transform::INPUT_BIN;
use crate::Result;

/// A devUDF project directory.
pub struct Project {
    root: PathBuf,
    vcs: Option<Repository>,
}

impl Project {
    /// Open (creating if needed) a project at `root`.
    pub fn open(root: &Path) -> Result<Project> {
        std::fs::create_dir_all(root)?;
        Ok(Project {
            root: root.to_path_buf(),
            vcs: None,
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// File path for a UDF's local script.
    pub fn udf_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.py"))
    }

    /// Write a UDF script file.
    pub fn write_udf(&self, name: &str, content: &str) -> Result<PathBuf> {
        let path = self.udf_path(name);
        std::fs::write(&path, content)?;
        Ok(path)
    }

    /// Read a UDF script file.
    pub fn read_udf(&self, name: &str) -> Result<String> {
        Ok(std::fs::read_to_string(self.udf_path(name))?)
    }

    /// Whether a UDF script exists locally.
    pub fn has_udf(&self, name: &str) -> bool {
        self.udf_path(name).exists()
    }

    /// Names of all imported UDFs (every `*.py` in the project root).
    pub fn udf_names(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().to_string();
            if let Some(stem) = name.strip_suffix(".py") {
                out.push(stem.to_string());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Store the transferred input data (the `input.bin` of Listing 2).
    pub fn write_input_bin(&self, data: &[u8]) -> Result<()> {
        std::fs::write(self.root.join(INPUT_BIN), data)?;
        Ok(())
    }

    /// A pylite filesystem provider rooted at the project directory, so
    /// locally-run UDF scripts resolve `./input.bin` (and any CSV fixtures)
    /// against the project.
    pub fn fs_provider(&self) -> Rc<dyn FsProvider> {
        Rc::new(ProjectFs {
            root: self.root.clone(),
        })
    }

    // ---------------- VCS ----------------

    /// Initialize (or reopen) version control for the project.
    pub fn init_vcs(&mut self) -> Result<()> {
        self.vcs = Some(Repository::init(&self.root)?);
        Ok(())
    }

    /// The VCS handle, if initialized.
    pub fn vcs(&self) -> Option<&Repository> {
        self.vcs.as_ref()
    }

    /// Stage all files and commit; returns the commit id.
    pub fn commit_all(&self, message: &str, author: &str) -> Result<String> {
        let repo = self
            .vcs
            .as_ref()
            .ok_or_else(|| crate::DevUdfError::Config("VCS not initialized".to_string()))?;
        repo.add_all()?;
        Ok(repo.commit(message, author)?.0)
    }
}

/// Sandboxed real-filesystem provider rooted at the project directory.
struct ProjectFs {
    root: PathBuf,
}

impl ProjectFs {
    /// Resolve a script-visible path inside the project, rejecting escapes.
    fn resolve(&self, path: &str) -> std::result::Result<PathBuf, String> {
        let cleaned = path.trim_start_matches("./");
        if cleaned.split('/').any(|seg| seg == "..") {
            return Err(format!("path '{path}' escapes the project sandbox"));
        }
        Ok(self.root.join(cleaned))
    }
}

impl FsProvider for ProjectFs {
    fn read(&self, path: &str) -> std::result::Result<Vec<u8>, String> {
        let p = self.resolve(path)?;
        std::fs::read(&p).map_err(|e| format!("cannot read '{path}': {e}"))
    }

    fn write(&self, path: &str, data: &[u8]) -> std::result::Result<(), String> {
        let p = self.resolve(path)?;
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(&p, data).map_err(|e| format!("cannot write '{path}': {e}"))
    }

    fn listdir(&self, path: &str) -> std::result::Result<Vec<String>, String> {
        let p = self.resolve(path)?;
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&p).map_err(|e| format!("cannot list '{path}': {e}"))? {
            let entry = entry.map_err(|e| e.to_string())?;
            out.push(entry.file_name().to_string_lossy().to_string());
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).map(|p| p.exists()).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_project(tag: &str) -> Project {
        let dir = std::env::temp_dir().join(format!(
            "devudf-project-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        Project::open(&dir).unwrap()
    }

    #[test]
    fn write_read_udf_files() {
        let p = temp_project("files");
        p.write_udf("mean_deviation", "def mean_deviation(c):\n    return 0\n")
            .unwrap();
        assert!(p.has_udf("mean_deviation"));
        assert!(!p.has_udf("ghost"));
        assert!(p.read_udf("mean_deviation").unwrap().contains("def"));
        assert_eq!(p.udf_names().unwrap(), vec!["mean_deviation"]);
        std::fs::remove_dir_all(p.root()).ok();
    }

    #[test]
    fn input_bin_visible_through_fs_provider() {
        let p = temp_project("inputbin");
        p.write_input_bin(b"PKL1-test").unwrap();
        let fs = p.fs_provider();
        assert_eq!(fs.read("./input.bin").unwrap(), b"PKL1-test");
        assert_eq!(fs.read("input.bin").unwrap(), b"PKL1-test");
        assert!(fs.exists("input.bin"));
        std::fs::remove_dir_all(p.root()).ok();
    }

    #[test]
    fn fs_provider_sandbox_rejects_escapes() {
        let p = temp_project("sandbox");
        let fs = p.fs_provider();
        assert!(fs.read("../outside.txt").is_err());
        assert!(fs.read("a/../../outside.txt").is_err());
        std::fs::remove_dir_all(p.root()).ok();
    }

    #[test]
    fn fs_provider_listdir_and_write() {
        let p = temp_project("listdir");
        let fs = p.fs_provider();
        fs.write("data/a.csv", b"1\n").unwrap();
        fs.write("data/b.csv", b"2\n").unwrap();
        assert_eq!(fs.listdir("data").unwrap(), vec!["a.csv", "b.csv"]);
        std::fs::remove_dir_all(p.root()).ok();
    }

    #[test]
    fn vcs_integration_commits_udf_edits() {
        let mut p = temp_project("vcs");
        p.init_vcs().unwrap();
        p.write_udf("f", "version 1\n").unwrap();
        let c1 = p.commit_all("import f", "dev").unwrap();
        p.write_udf("f", "version 2\n").unwrap();
        let c2 = p.commit_all("fix f", "dev").unwrap();
        assert_ne!(c1, c2);
        let log = p.vcs().unwrap().log().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].message, "fix f");
        std::fs::remove_dir_all(p.root()).ok();
    }

    #[test]
    fn commit_without_vcs_errors() {
        let p = temp_project("novcs");
        assert!(p.commit_all("nope", "dev").is_err());
        std::fs::remove_dir_all(p.root()).ok();
    }
}
