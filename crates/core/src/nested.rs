//! Nested-UDF discovery (paper §2.3).
//!
//! Loopback queries (`_conn.execute("SELECT …")`) inside a UDF body may
//! themselves invoke stored UDFs. To debug the whole pipeline locally,
//! devUDF must find those nested calls, import the nested UDFs too, and
//! rewire `_conn` so nested invocations also run in the IDE. This module
//! does the *discovery*: scanning a body for loopback SQL strings and
//! matching the UDF names they invoke.

/// A loopback query found in a UDF body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopbackQuery {
    /// The raw SQL string literal (with `%d`-style placeholders intact).
    pub sql: String,
    /// 1-based body line where the `_conn.execute` call starts.
    pub line: u32,
    /// Names of known UDFs invoked inside this query.
    pub udfs: Vec<String>,
}

/// Scan a UDF body for `_conn.execute(...)` string literals.
///
/// `known_functions` is the server's function list; matching is by
/// word-boundary name search inside the SQL text (enough for the paper's
/// `SELECT * FROM train_rnforest(…)` shape and robust to formatting).
pub fn find_loopback_queries(body: &str, known_functions: &[String]) -> Vec<LoopbackQuery> {
    let mut out = Vec::new();
    let mut line_no = 0u32;
    let mut search_from = 0usize;
    // Precompute line start offsets for line attribution.
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            body.char_indices()
                .filter(|(_, c)| *c == '\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let _ = line_no;

    while let Some(rel) = body[search_from..].find("_conn.execute") {
        let call_pos = search_from + rel;
        line_no = line_starts.iter().take_while(|&&s| s <= call_pos).count() as u32;
        // Find the string literal argument after the opening paren.
        let after = &body[call_pos..];
        let Some(paren) = after.find('(') else {
            search_from = call_pos + 13;
            continue;
        };
        let literal_region = &after[paren + 1..];
        if let Some(sql) = extract_string_literal(literal_region) {
            let udfs = udfs_in_sql(&sql, known_functions);
            out.push(LoopbackQuery {
                sql,
                line: line_no,
                udfs,
            });
        }
        search_from = call_pos + 13;
    }
    out
}

/// Extract the first Python string literal from `text` (handles `'`, `"`,
/// and triple-quoted forms; skips leading whitespace/newlines).
fn extract_string_literal(text: &str) -> Option<String> {
    let trimmed = text.trim_start();
    let bytes = trimmed.as_bytes();
    let quote = *bytes.first()?;
    if quote != b'\'' && quote != b'"' {
        return None;
    }
    let q = quote as char;
    let triple =
        trimmed.len() >= 3 && trimmed.as_bytes()[1] == quote && trimmed.as_bytes()[2] == quote;
    if triple {
        let inner = &trimmed[3..];
        let end = inner.find(&format!("{q}{q}{q}"))?;
        Some(inner[..end].to_string())
    } else {
        let inner = &trimmed[1..];
        let mut out = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == q {
                return Some(out);
            }
            if c == '\\' {
                if let Some(esc) = chars.next() {
                    out.push(esc);
                }
                continue;
            }
            out.push(c);
        }
        None
    }
}

/// Which of `known` appear as word-bounded names in `sql`.
pub fn udfs_in_sql(sql: &str, known: &[String]) -> Vec<String> {
    let lower = sql.to_ascii_lowercase();
    let mut out = Vec::new();
    for name in known {
        let needle = name.to_ascii_lowercase();
        let mut from = 0usize;
        while let Some(rel) = lower[from..].find(&needle) {
            let start = from + rel;
            let end = start + needle.len();
            let before_ok = start == 0
                || !lower.as_bytes()[start - 1].is_ascii_alphanumeric()
                    && lower.as_bytes()[start - 1] != b'_';
            let after_ok = end >= lower.len()
                || !lower.as_bytes()[end].is_ascii_alphanumeric() && lower.as_bytes()[end] != b'_';
            if before_ok && after_ok {
                if !out.contains(name) {
                    out.push(name.clone());
                }
                break;
            }
            from = end;
        }
    }
    out
}

/// The full transitive closure of nested UDFs reachable from `root_body`.
///
/// `lookup` resolves a UDF name to its body (e.g. via the client); cycles
/// are tolerated (each function is visited once).
pub fn nested_closure(
    root_body: &str,
    known_functions: &[String],
    mut lookup: impl FnMut(&str) -> Option<String>,
) -> Vec<String> {
    let mut discovered: Vec<String> = Vec::new();
    let mut queue: Vec<String> = find_loopback_queries(root_body, known_functions)
        .into_iter()
        .flat_map(|q| q.udfs)
        .collect();
    while let Some(name) = queue.pop() {
        if discovered.contains(&name) {
            continue;
        }
        if let Some(body) = lookup(&name) {
            for q in find_loopback_queries(&body, known_functions) {
                queue.extend(q.udfs);
            }
        }
        discovered.push(name);
    }
    discovered.sort();
    discovered
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The body of paper Listing 3.
    const LISTING3_BODY: &str = r#"import pickle
(tdata, tlabels) = _conn.execute("""SELECT data,
    labels FROM testingset""")
best_classifier = None
best_classifier_answers = -1
best_estimator = -1
for estimator in esttest:
    res = _conn.execute("""
        SELECT *
        FROM train_rnforest(
            (SELECT data, labels
            FROM trainingset), %d);
        """ % estimator)
    classifier = pickle.loads(res['clf'])
return best_classifier
"#;

    fn known() -> Vec<String> {
        vec![
            "train_rnforest".to_string(),
            "mean_deviation".to_string(),
            "find_best_classifier".to_string(),
        ]
    }

    #[test]
    fn finds_both_listing3_loopbacks() {
        let queries = find_loopback_queries(LISTING3_BODY, &known());
        assert_eq!(queries.len(), 2);
        assert!(queries[0].sql.contains("FROM testingset"));
        assert!(queries[0].udfs.is_empty(), "plain data query has no UDFs");
        assert!(queries[1].sql.contains("train_rnforest"));
        assert_eq!(queries[1].udfs, vec!["train_rnforest"]);
    }

    #[test]
    fn line_attribution() {
        let queries = find_loopback_queries(LISTING3_BODY, &known());
        assert_eq!(queries[0].line, 2);
        assert!(queries[1].line >= 8, "second loopback is inside the loop");
    }

    #[test]
    fn word_boundary_matching() {
        let known = vec!["f".to_string(), "train".to_string()];
        assert!(udfs_in_sql("SELECT * FROM training", &known).is_empty());
        assert_eq!(udfs_in_sql("SELECT * FROM train(x)", &known), vec!["train"]);
        assert_eq!(udfs_in_sql("SELECT f(i) FROM t", &known), vec!["f"]);
        assert!(udfs_in_sql("SELECT fff(i) FROM t", &known).is_empty());
    }

    #[test]
    fn single_and_double_quoted_literals() {
        let body = "a = _conn.execute('SELECT 1')\nb = _conn.execute(\"SELECT mean_deviation(i) FROM t\")\n";
        let queries = find_loopback_queries(body, &known());
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].sql, "SELECT 1");
        assert_eq!(queries[1].udfs, vec!["mean_deviation"]);
    }

    #[test]
    fn non_literal_arguments_are_skipped() {
        // Dynamic SQL built in a variable cannot be statically analyzed;
        // the scanner must not panic or invent results.
        let body = "q = 'SELECT 1'\nres = _conn.execute(q)\n";
        let queries = find_loopback_queries(body, &known());
        assert!(queries.is_empty());
    }

    #[test]
    fn nested_closure_is_transitive() {
        let known = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let bodies = |name: &str| -> Option<String> {
            match name {
                "a" => Some("res = _conn.execute('SELECT b(i) FROM t')\n".to_string()),
                "b" => Some("res = _conn.execute('SELECT c(i) FROM t')\n".to_string()),
                "c" => Some("return 1\n".to_string()),
                _ => None,
            }
        };
        let root = "res = _conn.execute('SELECT a(i) FROM t')\n";
        let closure = nested_closure(root, &known, bodies);
        assert_eq!(closure, vec!["a", "b", "c"]);
    }

    #[test]
    fn nested_closure_tolerates_cycles() {
        let known = vec!["x".to_string(), "y".to_string()];
        let bodies = |name: &str| -> Option<String> {
            match name {
                "x" => Some("res = _conn.execute('SELECT y(i) FROM t')\n".to_string()),
                "y" => Some("res = _conn.execute('SELECT x(i) FROM t')\n".to_string()),
                _ => None,
            }
        };
        let closure = nested_closure(
            "res = _conn.execute('SELECT x(i) FROM t')\n",
            &known,
            bodies,
        );
        assert_eq!(closure, vec!["x", "y"]);
    }
}
