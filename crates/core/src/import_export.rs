//! Importing and exporting UDFs (paper Figure 3 and §2.2).
//!
//! Import: read name + parameters + body from the server's meta tables,
//! apply the Listing-2 transformation, and write one `.py` file per UDF
//! into the project. Export: reverse the transformation on the edited file
//! and commit only the body back via `CREATE OR REPLACE FUNCTION`.

use crate::nested;
use crate::session::DevUdf;
use crate::transform;
use crate::{DevUdfError, Result};

/// Which UDFs to import (the checkbox list of Figure 3a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdfSelection {
    All,
    Named(Vec<String>),
}

/// Outcome of an import.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ImportReport {
    /// UDFs written into the project, with their file paths.
    pub imported: Vec<(String, String)>,
    /// Requested names that do not exist on the server.
    pub missing: Vec<String>,
    /// UDFs imported automatically because a requested UDF invokes them in
    /// a loopback query (paper §2.3).
    pub nested: Vec<String>,
}

/// Import UDFs from the server into the project.
pub fn import_udfs(dev: &mut DevUdf, selection: UdfSelection) -> Result<ImportReport> {
    let mut span = obs::trace::span("core.import");
    let available = dev.server_functions()?;
    let wanted: Vec<String> = match selection {
        UdfSelection::All => available.clone(),
        UdfSelection::Named(names) => names,
    };
    let mut report = ImportReport::default();
    let mut imported_names: Vec<String> = Vec::new();
    for name in wanted {
        if !available.iter().any(|a| a.eq_ignore_ascii_case(&name)) {
            report.missing.push(name);
            continue;
        }
        let info = dev.function_info(&name)?;
        let script = transform::to_local_script(&info);
        let path = dev.project.write_udf(&info.name, &script)?;
        imported_names.push(info.name.clone());
        report
            .imported
            .push((info.name, path.to_string_lossy().to_string()));
    }

    // §2.3: also import the transitive closure of nested UDFs invoked via
    // loopback queries, so local debugging can step into them.
    let mut queue = imported_names.clone();
    while let Some(name) = queue.pop() {
        let info = dev.function_info(&name)?;
        for q in nested::find_loopback_queries(&info.body, &available) {
            for nested_name in q.udfs {
                if imported_names
                    .iter()
                    .any(|n| n.eq_ignore_ascii_case(&nested_name))
                {
                    continue;
                }
                let ninfo = dev.function_info(&nested_name)?;
                let nscript = transform::to_local_script(&ninfo);
                dev.project.write_udf(&ninfo.name, &nscript)?;
                imported_names.push(ninfo.name.clone());
                report.nested.push(ninfo.name.clone());
                queue.push(nested_name);
            }
        }
    }
    span.field("imported", report.imported.len());
    span.field("nested", report.nested.len());
    Ok(report)
}

/// Export edited UDFs back to the server. Returns the exported names.
pub fn export_udfs(dev: &mut DevUdf, names: &[&str]) -> Result<Vec<String>> {
    let mut span = obs::trace::span("core.export");
    span.field("requested", names.len());
    let mut exported = Vec::new();
    for name in names {
        if !dev.project.has_udf(name) {
            return Err(DevUdfError::Transform(format!(
                "no local file for UDF '{name}' (import it first)"
            )));
        }
        let script = dev.project.read_udf(name)?;
        let body = transform::extract_body(&script, name)?;
        // Signature comes from the server's current metadata; only the body
        // is replaced (paper §2.2: "only the function body is committed").
        let info = dev.function_info(name)?;
        let stmt = transform::to_create_statement(&info, &body);
        dev.server_query(&stmt)?;
        exported.push(name.to_string());
    }
    Ok(exported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Settings;
    use wireproto::{Server, ServerConfig};

    fn demo_server() -> Server {
        Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            db.execute("INSERT INTO numbers VALUES (1), (2), (3), (4)")
                .unwrap();
            db.execute(
                "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\nmean = 0\nfor i in range(0, len(column)):\n    mean += column[i]\nmean = mean / len(column)\ndistance = 0\nfor i in range(0, len(column)):\n    distance += column[i] - mean\ndeviation = distance / len(column)\nreturn deviation\n}",
            )
            .unwrap();
            db.execute(
                "CREATE FUNCTION double_it(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
            )
            .unwrap();
        })
    }

    fn temp_dev(server: &Server, tag: &str) -> DevUdf {
        let dir = std::env::temp_dir().join(format!(
            "devudf-impexp-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut settings = Settings::default();
        settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
        DevUdf::connect_in_proc(server, settings, &dir).unwrap()
    }

    #[test]
    fn import_all_writes_transformed_files() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "all");
        let report = dev.import_all().unwrap();
        assert_eq!(report.imported.len(), 2);
        assert!(report.missing.is_empty());
        let script = dev.project.read_udf("mean_deviation").unwrap();
        assert!(script.contains("def mean_deviation(column):"));
        assert!(script.contains("pickle.load(open('./input.bin', 'rb'))"));
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn import_selection_reports_missing() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "sel");
        let report = dev.import(&["double_it", "ghost_fn"]).unwrap();
        assert_eq!(report.imported.len(), 1);
        assert_eq!(report.missing, vec!["ghost_fn"]);
        assert!(dev.project.has_udf("double_it"));
        assert!(!dev.project.has_udf("mean_deviation"));
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn edit_and_export_round_trip_fixes_scenario_a() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "roundtrip");
        dev.import(&["mean_deviation"]).unwrap();

        // The buggy UDF returns ~0 on the server (missing abs).
        let before = dev
            .server_query("SELECT mean_deviation(i) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        match &before.rows[0][0] {
            wireproto::WireValue::Double(d) => assert!(d.abs() < 1e-9, "buggy sums to 0, got {d}"),
            other => panic!("{other:?}"),
        }

        // Fix the bug locally (the Scenario A fix: wrap in abs()).
        let script = dev.project.read_udf("mean_deviation").unwrap();
        let fixed = script.replace(
            "distance += column[i] - mean",
            "distance += abs(column[i] - mean)",
        );
        assert_ne!(script, fixed, "the buggy line must be present");
        dev.project.write_udf("mean_deviation", &fixed).unwrap();

        // Export and re-run server-side: now correct (mean dev of 1..4 = 1.0).
        dev.export(&["mean_deviation"]).unwrap();
        let after = dev
            .server_query("SELECT mean_deviation(i) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        match &after.rows[0][0] {
            wireproto::WireValue::Double(d) => assert!((d - 1.0).abs() < 1e-9, "got {d}"),
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn importing_a_udf_pulls_its_nested_udfs() {
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute(
                "CREATE FUNCTION inner_fn(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i }",
            )
            .unwrap();
            db.execute(
                "CREATE FUNCTION outer_fn(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nres = _conn.execute('SELECT inner_fn(x) FROM t')\nreturn res['inner_fn']\n}",
            )
            .unwrap();
            db.execute(
                "CREATE FUNCTION unrelated(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i }",
            )
            .unwrap();
        });
        let mut dev = temp_dev(&server, "nestedimport");
        let report = dev.import(&["outer_fn"]).unwrap();
        assert_eq!(report.imported.len(), 1);
        assert_eq!(report.nested, vec!["inner_fn"]);
        assert!(dev.project.has_udf("inner_fn"));
        assert!(!dev.project.has_udf("unrelated"));
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn export_without_import_errors() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "noimport");
        assert!(dev.export(&["mean_deviation"]).is_err());
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }

    #[test]
    fn exported_body_matches_stored_body_when_unedited() {
        let server = demo_server();
        let mut dev = temp_dev(&server, "identity");
        dev.import(&["double_it"]).unwrap();
        let before = dev.function_info("double_it").unwrap().body;
        dev.export(&["double_it"]).unwrap();
        let after = dev.function_info("double_it").unwrap().body;
        assert_eq!(before.trim_end(), after.trim_end());
        std::fs::remove_dir_all(dev.project.root()).ok();
        server.shutdown();
    }
}
