//! Plugin settings — the contents of the paper's settings dialog (Figure 2):
//! the usual client connection parameters (host, port, database, user,
//! password), the SQL query that invokes the to-be-debugged UDF, and the
//! data-transfer options (§2.1).

use std::path::Path;

use codecs::json::{self, Value};
use wireproto::TransferOptions;

/// Serializable mirror of [`wireproto::TransferOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferSettings {
    /// Compress the extracted data during transfer.
    pub compress: bool,
    /// Encrypt the extracted data with the user's password.
    pub encrypt: bool,
    /// Transfer only a uniform random sample of this many rows.
    pub sample: Option<usize>,
}

impl From<TransferSettings> for TransferOptions {
    fn from(s: TransferSettings) -> TransferOptions {
        TransferOptions {
            compress: s.compress,
            encrypt: s.encrypt,
            sample: s.sample,
        }
    }
}

/// All devUDF settings.
#[derive(Debug, Clone, PartialEq)]
pub struct Settings {
    pub host: String,
    pub port: u16,
    pub database: String,
    pub user: String,
    pub password: String,
    /// "the user must provide a SQL query which executes the to-be-debugged
    /// UDF. This SQL query must be specified in the Settings menu" (§2.1).
    pub debug_query: String,
    pub transfer: TransferSettings,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            host: "localhost".to_string(),
            port: 50_000,
            database: "demo".to_string(),
            user: "monetdb".to_string(),
            password: "monetdb".to_string(),
            debug_query: String::new(),
            transfer: TransferSettings::default(),
        }
    }
}

fn invalid(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

impl TransferSettings {
    fn to_json(self) -> Value {
        Value::Object(vec![
            ("compress".to_string(), Value::Bool(self.compress)),
            ("encrypt".to_string(), Value::Bool(self.encrypt)),
            (
                "sample".to_string(),
                Value::from(self.sample.map(|k| k as u64)),
            ),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<TransferSettings> {
        Ok(TransferSettings {
            compress: v
                .get("compress")
                .and_then(Value::as_bool)
                .ok_or_else(|| invalid("transfer.compress missing"))?,
            encrypt: v
                .get("encrypt")
                .and_then(Value::as_bool)
                .ok_or_else(|| invalid("transfer.encrypt missing"))?,
            sample: match v.get("sample") {
                None | Some(Value::Null) => None,
                Some(k) => Some(
                    k.as_u64()
                        .ok_or_else(|| invalid("transfer.sample must be a count"))?
                        as usize,
                ),
            },
        })
    }
}

impl Settings {
    /// Path of the settings file inside a project directory.
    pub fn path_in(project_root: &Path) -> std::path::PathBuf {
        project_root.join(".devudf").join("settings.json")
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("host".to_string(), Value::from(self.host.as_str())),
            ("port".to_string(), Value::Int(i64::from(self.port))),
            ("database".to_string(), Value::from(self.database.as_str())),
            ("user".to_string(), Value::from(self.user.as_str())),
            ("password".to_string(), Value::from(self.password.as_str())),
            (
                "debug_query".to_string(),
                Value::from(self.debug_query.as_str()),
            ),
            ("transfer".to_string(), self.transfer.to_json()),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<Settings> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("settings field '{name}' missing")))
        };
        Ok(Settings {
            host: field("host")?,
            port: v
                .get("port")
                .and_then(Value::as_u64)
                .and_then(|p| u16::try_from(p).ok())
                .ok_or_else(|| invalid("settings field 'port' missing or out of range"))?,
            database: field("database")?,
            user: field("user")?,
            password: field("password")?,
            debug_query: field("debug_query")?,
            transfer: TransferSettings::from_json(
                v.get("transfer")
                    .ok_or_else(|| invalid("settings field 'transfer' missing"))?,
            )?,
        })
    }

    /// Load settings from a project directory; missing file yields defaults.
    pub fn load(project_root: &Path) -> std::io::Result<Settings> {
        let path = Self::path_in(project_root);
        if !path.exists() {
            return Ok(Settings::default());
        }
        let data = std::fs::read(path)?;
        let text = std::str::from_utf8(&data).map_err(invalid_utf8)?;
        let doc = json::parse(text).map_err(|e| invalid(e.to_string()))?;
        Self::from_json(&doc)
    }

    /// Persist settings into a project directory.
    pub fn save(&self, project_root: &Path) -> std::io::Result<()> {
        let path = Self::path_in(project_root);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }

    /// Transfer options in wire form.
    pub fn transfer_options(&self) -> TransferOptions {
        self.transfer.into()
    }

    /// Render the settings dialog content (Figure 2) as text, masking the
    /// password like the GUI does.
    pub fn render_dialog(&self) -> String {
        let mask = "*".repeat(self.password.len().max(4));
        format!(
            "┌─ devUDF Settings ──────────────────────────────┐\n\
             │ Host:       {:<35}│\n\
             │ Port:       {:<35}│\n\
             │ Database:   {:<35}│\n\
             │ User:       {:<35}│\n\
             │ Password:   {:<35}│\n\
             │ SQL Query:  {:<35}│\n\
             │ Transfer:   {:<35}│\n\
             └────────────────────────────────────────────────┘",
            self.host,
            self.port,
            self.database,
            self.user,
            mask,
            truncate(&self.debug_query, 35),
            truncate(&self.describe_transfer(), 35),
        )
    }

    fn describe_transfer(&self) -> String {
        let mut parts = Vec::new();
        if self.transfer.compress {
            parts.push("compress".to_string());
        }
        if self.transfer.encrypt {
            parts.push("encrypt".to_string());
        }
        if let Some(k) = self.transfer.sample {
            parts.push(format!("sample {k} rows"));
        }
        if parts.is_empty() {
            "full data, plaintext".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

fn invalid_utf8(e: std::str::Utf8Error) -> std::io::Error {
    invalid(format!("settings file is not UTF-8: {e}"))
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let cut: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "devudf-settings-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut s = Settings::default();
        s.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
        s.transfer.compress = true;
        s.transfer.sample = Some(500);
        s.save(&dir).unwrap();
        let loaded = Settings::load(&dir).unwrap();
        assert_eq!(loaded, s);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_yields_defaults() {
        let dir = temp_dir("defaults");
        let s = Settings::load(&dir).unwrap();
        assert_eq!(s, Settings::default());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn transfer_options_conversion() {
        let s = TransferSettings {
            compress: true,
            encrypt: false,
            sample: Some(10),
        };
        let o: TransferOptions = s.into();
        assert!(o.compress);
        assert!(!o.encrypt);
        assert_eq!(o.sample, Some(10));
    }

    #[test]
    fn dialog_masks_password() {
        let mut s = Settings::default();
        s.password = "hunter2".to_string();
        let dialog = s.render_dialog();
        assert!(!dialog.contains("hunter2"));
        assert!(dialog.contains("*******"));
        assert!(dialog.contains("devUDF Settings"));
    }

    #[test]
    fn dialog_describes_transfer_options() {
        let mut s = Settings::default();
        assert!(s.render_dialog().contains("full data, plaintext"));
        s.transfer = TransferSettings {
            compress: true,
            encrypt: true,
            sample: Some(100),
        };
        let d = s.render_dialog();
        // The dialog truncates long values; the prefix must be visible.
        assert!(d.contains("compress + encrypt + sample"), "{d}");
    }

    #[test]
    fn corrupt_settings_file_is_io_error() {
        let dir = temp_dir("corrupt");
        let path = Settings::path_in(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"{not json").unwrap();
        assert!(Settings::load(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
