//! Plugin settings — the contents of the paper's settings dialog (Figure 2):
//! the usual client connection parameters (host, port, database, user,
//! password), the SQL query that invokes the to-be-debugged UDF, and the
//! data-transfer options (§2.1).

use std::path::Path;
use std::time::Duration;

use codecs::json::{self, Value};
use monetlite::{FsyncPolicy, StorageOptions};
use pylite::ExecMode;
use wireproto::{ClientOptions, RetryPolicy, TransferOptions};

/// Serializable mirror of [`wireproto::TransferOptions`] plus the local
/// codec-parallelism knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferSettings {
    /// Compress the extracted data during transfer.
    pub compress: bool,
    /// Encrypt the extracted data with the user's password.
    pub encrypt: bool,
    /// Transfer only a uniform random sample of this many rows.
    pub sample: Option<usize>,
    /// Worker threads for the chunked payload codec on the client side
    /// (`None` = share the process-global pool sized by
    /// `DEVUDF_POOL_THREADS`). Local knob: changes decode speed, never
    /// the bytes on the wire.
    pub parallelism: Option<usize>,
    /// Container block size in bytes (`None` = the wire default,
    /// [`wireproto::DEFAULT_BLOCK_SIZE`]).
    pub block_size: Option<usize>,
    /// Content-addressed delta cache for repeated extracts (DESIGN §12).
    pub cache: CacheSettings,
}

/// Settings of the client-side extract cache: on by default — the
/// iterative edit→extract→debug loop is the paper's whole premise, and
/// against an old server the client falls back transparently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSettings {
    /// Use the `ExtractDelta` protocol with a local block cache.
    pub enabled: bool,
    /// Extract payloads kept client-side (MRU eviction).
    pub entries: usize,
}

impl Default for CacheSettings {
    fn default() -> CacheSettings {
        CacheSettings {
            enabled: true,
            entries: 8,
        }
    }
}

impl CacheSettings {
    fn to_json(self) -> Value {
        Value::Object(vec![
            ("enabled".to_string(), Value::Bool(self.enabled)),
            ("entries".to_string(), Value::from(self.entries as u64)),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<CacheSettings> {
        let enabled = v
            .get("enabled")
            .and_then(Value::as_bool)
            .ok_or_else(|| invalid("transfer.cache.enabled missing"))?;
        let entries = match v.get("entries") {
            None | Some(Value::Null) => CacheSettings::default().entries,
            Some(k) => match k.as_u64() {
                Some(n) if n > 0 => n as usize,
                _ => return Err(invalid("transfer.cache.entries must be a positive count")),
            },
        };
        Ok(CacheSettings { enabled, entries })
    }
}

impl From<TransferSettings> for TransferOptions {
    fn from(s: TransferSettings) -> TransferOptions {
        TransferOptions {
            compress: s.compress,
            encrypt: s.encrypt,
            sample: s.sample,
            block_size: s.block_size.unwrap_or(wireproto::DEFAULT_BLOCK_SIZE),
        }
    }
}

/// Serializable mirror of [`wireproto::RetryPolicy`] plus the TCP socket
/// deadlines — the robustness half of the connection settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySettings {
    /// Total attempts for idempotent calls (1 disables retries).
    pub max_attempts: u32,
    /// First backoff in milliseconds; doubles per retry.
    pub initial_backoff_ms: u64,
    /// Cap on a single backoff sleep, in milliseconds.
    pub max_backoff_ms: u64,
    /// Overall retry budget in milliseconds (`None` = attempts only).
    pub deadline_ms: Option<u64>,
    /// Per-read/write socket deadline in milliseconds (`None` = block).
    pub io_timeout_ms: Option<u64>,
}

impl Default for RetrySettings {
    /// Mirrors [`RetryPolicy::standard`] with 30 s socket deadlines: the
    /// IDE's calls are dominated by idempotent reads, so transparent
    /// retries are the right out-of-the-box behaviour.
    fn default() -> RetrySettings {
        RetrySettings {
            max_attempts: 3,
            initial_backoff_ms: 10,
            max_backoff_ms: 200,
            deadline_ms: Some(2_000),
            io_timeout_ms: Some(30_000),
        }
    }
}

impl RetrySettings {
    /// The wire-layer policy these settings describe.
    pub fn policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.max_attempts.max(1),
            initial_backoff: Duration::from_millis(self.initial_backoff_ms),
            max_backoff: Duration::from_millis(self.max_backoff_ms),
            deadline: self.deadline_ms.map(Duration::from_millis),
        }
    }

    fn to_json(self) -> Value {
        Value::Object(vec![
            (
                "max_attempts".to_string(),
                Value::Int(i64::from(self.max_attempts)),
            ),
            (
                "initial_backoff_ms".to_string(),
                Value::from(self.initial_backoff_ms),
            ),
            (
                "max_backoff_ms".to_string(),
                Value::from(self.max_backoff_ms),
            ),
            ("deadline_ms".to_string(), Value::from(self.deadline_ms)),
            ("io_timeout_ms".to_string(), Value::from(self.io_timeout_ms)),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<RetrySettings> {
        let ms = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| invalid(format!("retry.{name} missing")))
        };
        let opt_ms = |name: &str| match v.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(k) => k
                .as_u64()
                .map(Some)
                .ok_or_else(|| invalid(format!("retry.{name} must be milliseconds"))),
        };
        Ok(RetrySettings {
            max_attempts: ms("max_attempts").and_then(|n| {
                u32::try_from(n).map_err(|_| invalid("retry.max_attempts out of range"))
            })?,
            initial_backoff_ms: ms("initial_backoff_ms")?,
            max_backoff_ms: ms("max_backoff_ms")?,
            deadline_ms: opt_ms("deadline_ms")?,
            io_timeout_ms: opt_ms("io_timeout_ms")?,
        })
    }
}

/// All devUDF settings.
#[derive(Debug, Clone, PartialEq)]
pub struct Settings {
    pub host: String,
    pub port: u16,
    pub database: String,
    pub user: String,
    pub password: String,
    /// "the user must provide a SQL query which executes the to-be-debugged
    /// UDF. This SQL query must be specified in the Settings menu" (§2.1).
    pub debug_query: String,
    pub transfer: TransferSettings,
    /// Retry/timeout behaviour of the underlying connection.
    pub retry: RetrySettings,
    /// How UDFs execute: the pylite engine for local runs, plus whether
    /// the server-side engine may inline straight-line bodies (Froid).
    pub interp: InterpMode,
    /// Embedded-mode persistence (DESIGN §17). Only consulted when the
    /// session embeds the engine in-process; wire connections ignore it.
    pub storage: StorageSettings,
}

/// The `storage` settings section: where (and how durably) an embedded
/// engine persists. Serializable mirror of [`monetlite::StorageOptions`]
/// plus the data directory itself.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageSettings {
    /// Directory the embedded engine opens (WAL + snapshots). Empty means
    /// the embedded engine is purely in-memory.
    pub data_dir: String,
    /// When WAL appends reach disk: `always` (fsync per commit, default)
    /// or `never` (OS page cache only).
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many WAL records; `0` disables automatic
    /// checkpoints (explicit `devudf checkpoint` only).
    pub snapshot_every: u64,
}

impl Default for StorageSettings {
    fn default() -> Self {
        let defaults = StorageOptions::default();
        StorageSettings {
            data_dir: String::new(),
            fsync: defaults.fsync,
            snapshot_every: defaults.snapshot_every,
        }
    }
}

impl StorageSettings {
    /// The engine-facing options (everything except the directory).
    pub fn options(&self) -> StorageOptions {
        StorageOptions {
            fsync: self.fsync,
            snapshot_every: self.snapshot_every,
        }
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("data_dir".to_string(), Value::from(self.data_dir.as_str())),
            ("fsync".to_string(), Value::from(self.fsync.as_str())),
            (
                "snapshot_every".to_string(),
                Value::from(self.snapshot_every),
            ),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<StorageSettings> {
        Ok(StorageSettings {
            data_dir: v
                .get("data_dir")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid("storage.data_dir missing"))?,
            // Unknown spellings fail loudly with the allowed set — same
            // rule as `interp`.
            fsync: match v.get("fsync") {
                None | Some(Value::Null) => FsyncPolicy::default(),
                Some(m) => {
                    let text = m.as_str().unwrap_or_default();
                    FsyncPolicy::parse(text).ok_or_else(|| {
                        invalid(format!(
                            "storage.fsync must be one of {} (got '{text}')",
                            FsyncPolicy::ALLOWED
                        ))
                    })?
                }
            },
            snapshot_every: match v.get("snapshot_every") {
                None | Some(Value::Null) => StorageOptions::default().snapshot_every,
                Some(k) => k
                    .as_u64()
                    .ok_or_else(|| invalid("storage.snapshot_every must be a record count"))?,
            },
        })
    }
}

/// The `interp` settings knob. `ast` and `bytecode` pick a pylite engine
/// with server-side inlining off; `inline` (the default) runs the bytecode
/// VM locally *and* lets the engine compile straight-line UDFs into
/// relational expressions, falling back to the VM on bail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMode {
    /// Tree-walking reference interpreter; no engine inlining.
    Ast,
    /// Bytecode VM; no engine inlining.
    Bytecode,
    /// Bytecode VM with Froid-style engine inlining (default).
    #[default]
    Inline,
}

impl InterpMode {
    /// The allowed spellings, for error messages.
    pub const ALLOWED: &'static str = "'ast', 'bytecode' or 'inline'";

    pub fn parse(s: &str) -> Option<InterpMode> {
        match s {
            "ast" => Some(InterpMode::Ast),
            "bytecode" => Some(InterpMode::Bytecode),
            "inline" => Some(InterpMode::Inline),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            InterpMode::Ast => "ast",
            InterpMode::Bytecode => "bytecode",
            InterpMode::Inline => "inline",
        }
    }

    /// The pylite engine behind this mode. Local debug runs have no
    /// relational engine to inline into, so `inline` uses the VM.
    pub fn pylite_mode(&self) -> ExecMode {
        match self {
            InterpMode::Ast => ExecMode::Ast,
            InterpMode::Bytecode | InterpMode::Inline => ExecMode::Bytecode,
        }
    }

    /// Whether server-side UDF inlining is enabled.
    pub fn inline(&self) -> bool {
        matches!(self, InterpMode::Inline)
    }
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            host: "localhost".to_string(),
            port: 50_000,
            database: "demo".to_string(),
            user: "monetdb".to_string(),
            password: "monetdb".to_string(),
            debug_query: String::new(),
            transfer: TransferSettings::default(),
            retry: RetrySettings::default(),
            interp: InterpMode::default(),
            storage: StorageSettings::default(),
        }
    }
}

fn invalid(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

impl TransferSettings {
    fn to_json(self) -> Value {
        Value::Object(vec![
            ("compress".to_string(), Value::Bool(self.compress)),
            ("encrypt".to_string(), Value::Bool(self.encrypt)),
            (
                "sample".to_string(),
                Value::from(self.sample.map(|k| k as u64)),
            ),
            (
                "parallelism".to_string(),
                Value::from(self.parallelism.map(|n| n as u64)),
            ),
            (
                "block_size".to_string(),
                Value::from(self.block_size.map(|n| n as u64)),
            ),
            ("cache".to_string(), self.cache.to_json()),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<TransferSettings> {
        // `parallelism`/`block_size` are absent in settings files written
        // before the chunked pipeline existed — optional, like `sample`.
        let opt_count = |name: &str, zero_ok: bool| match v.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(k) => match k.as_u64() {
                Some(n) if zero_ok || n > 0 => Ok(Some(n as usize)),
                _ => Err(invalid(format!("transfer.{name} must be a positive count"))),
            },
        };
        Ok(TransferSettings {
            compress: v
                .get("compress")
                .and_then(Value::as_bool)
                .ok_or_else(|| invalid("transfer.compress missing"))?,
            encrypt: v
                .get("encrypt")
                .and_then(Value::as_bool)
                .ok_or_else(|| invalid("transfer.encrypt missing"))?,
            sample: opt_count("sample", true)?,
            parallelism: opt_count("parallelism", false)?,
            block_size: opt_count("block_size", false)?,
            // Absent in settings files written before the delta cache
            // existed — default (enabled) rather than reject.
            cache: match v.get("cache") {
                None | Some(Value::Null) => CacheSettings::default(),
                Some(c) => CacheSettings::from_json(c)?,
            },
        })
    }
}

impl Settings {
    /// Path of the settings file inside a project directory.
    pub fn path_in(project_root: &Path) -> std::path::PathBuf {
        project_root.join(".devudf").join("settings.json")
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("host".to_string(), Value::from(self.host.as_str())),
            ("port".to_string(), Value::Int(i64::from(self.port))),
            ("database".to_string(), Value::from(self.database.as_str())),
            ("user".to_string(), Value::from(self.user.as_str())),
            ("password".to_string(), Value::from(self.password.as_str())),
            (
                "debug_query".to_string(),
                Value::from(self.debug_query.as_str()),
            ),
            ("transfer".to_string(), self.transfer.to_json()),
            ("retry".to_string(), self.retry.to_json()),
            ("interp".to_string(), Value::from(self.interp.as_str())),
            ("storage".to_string(), self.storage.to_json()),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<Settings> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("settings field '{name}' missing")))
        };
        Ok(Settings {
            host: field("host")?,
            port: v
                .get("port")
                .and_then(Value::as_u64)
                .and_then(|p| u16::try_from(p).ok())
                .ok_or_else(|| invalid("settings field 'port' missing or out of range"))?,
            database: field("database")?,
            user: field("user")?,
            password: field("password")?,
            debug_query: field("debug_query")?,
            transfer: TransferSettings::from_json(
                v.get("transfer")
                    .ok_or_else(|| invalid("settings field 'transfer' missing"))?,
            )?,
            // Absent in settings files written before the retry layer
            // existed — default rather than reject.
            retry: match v.get("retry") {
                None | Some(Value::Null) => RetrySettings::default(),
                Some(r) => RetrySettings::from_json(r)?,
            },
            // Absent in settings files written before the bytecode VM
            // existed — default (inline) rather than reject. Unknown
            // spellings fail loudly with the allowed set.
            interp: match v.get("interp") {
                None | Some(Value::Null) => InterpMode::default(),
                Some(m) => {
                    let text = m.as_str().unwrap_or_default();
                    InterpMode::parse(text).ok_or_else(|| {
                        invalid(format!(
                            "settings field 'interp' must be one of {} (got '{text}')",
                            InterpMode::ALLOWED
                        ))
                    })?
                }
            },
            // Absent in settings files written before embedded mode
            // existed — default (in-memory) rather than reject. Unknown
            // values inside the section fail loudly.
            storage: match v.get("storage") {
                None | Some(Value::Null) => StorageSettings::default(),
                Some(s) => StorageSettings::from_json(s)?,
            },
        })
    }

    /// Load settings from a project directory; missing file yields defaults.
    pub fn load(project_root: &Path) -> std::io::Result<Settings> {
        let path = Self::path_in(project_root);
        if !path.exists() {
            return Ok(Settings::default());
        }
        let data = std::fs::read(path)?;
        let text = std::str::from_utf8(&data).map_err(invalid_utf8)?;
        let doc = json::parse(text).map_err(|e| invalid(e.to_string()))?;
        Self::from_json(&doc)
    }

    /// Persist settings into a project directory.
    pub fn save(&self, project_root: &Path) -> std::io::Result<()> {
        let path = Self::path_in(project_root);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }

    /// Transfer options in wire form.
    pub fn transfer_options(&self) -> TransferOptions {
        self.transfer.into()
    }

    /// Connection options (retry policy + socket deadlines) in wire form.
    pub fn client_options(&self) -> ClientOptions {
        let io_timeout = self.retry.io_timeout_ms.map(Duration::from_millis);
        ClientOptions {
            retry: self.retry.policy(),
            read_timeout: io_timeout,
            write_timeout: io_timeout,
            parallelism: self.transfer.parallelism,
            cache: self
                .transfer
                .cache
                .enabled
                .then_some(self.transfer.cache.entries),
            ..ClientOptions::default()
        }
    }

    /// Render the settings dialog content (Figure 2) as text, masking the
    /// password like the GUI does.
    pub fn render_dialog(&self) -> String {
        let mask = "*".repeat(self.password.len().max(4));
        format!(
            "┌─ devUDF Settings ──────────────────────────────┐\n\
             │ Host:       {:<35}│\n\
             │ Port:       {:<35}│\n\
             │ Database:   {:<35}│\n\
             │ User:       {:<35}│\n\
             │ Password:   {:<35}│\n\
             │ SQL Query:  {:<35}│\n\
             │ Transfer:   {:<35}│\n\
             │ Cache:      {:<35}│\n\
             │ Retry:      {:<35}│\n\
             │ Interp:     {:<35}│\n\
             │ Storage:    {:<35}│\n\
             └────────────────────────────────────────────────┘",
            self.host,
            self.port,
            self.database,
            self.user,
            mask,
            truncate(&self.debug_query, 35),
            truncate(&self.describe_transfer(), 35),
            truncate(&self.describe_cache(), 35),
            truncate(&self.describe_retry(), 35),
            truncate(&self.describe_interp(), 35),
            truncate(&self.describe_storage(), 35),
        )
    }

    fn describe_storage(&self) -> String {
        if self.storage.data_dir.is_empty() {
            "in-memory (no data dir)".to_string()
        } else {
            format!(
                "{} (fsync {}, snapshot/{})",
                self.storage.data_dir,
                self.storage.fsync.as_str(),
                self.storage.snapshot_every
            )
        }
    }

    fn describe_interp(&self) -> String {
        match self.interp {
            InterpMode::Inline => "bytecode VM + engine inlining".to_string(),
            InterpMode::Bytecode => "bytecode VM".to_string(),
            InterpMode::Ast => "AST walker (reference)".to_string(),
        }
    }

    fn describe_transfer(&self) -> String {
        let mut parts = Vec::new();
        if self.transfer.compress {
            parts.push("compress".to_string());
        }
        if self.transfer.encrypt {
            parts.push("encrypt".to_string());
        }
        if let Some(k) = self.transfer.sample {
            parts.push(format!("sample {k} rows"));
        }
        if let Some(n) = self.transfer.parallelism {
            parts.push(format!("{n} codec threads"));
        }
        if let Some(b) = self.transfer.block_size {
            parts.push(format!("{} KiB blocks", b / 1024));
        }
        if parts.is_empty() {
            "full data, plaintext".to_string()
        } else {
            parts.join(" + ")
        }
    }

    fn describe_cache(&self) -> String {
        if self.transfer.cache.enabled {
            format!("delta, {} extracts kept", self.transfer.cache.entries)
        } else {
            "disabled (full extract)".to_string()
        }
    }

    fn describe_retry(&self) -> String {
        if self.retry.max_attempts <= 1 {
            return "disabled".to_string();
        }
        let mut s = format!(
            "{} attempts, {}-{} ms backoff",
            self.retry.max_attempts, self.retry.initial_backoff_ms, self.retry.max_backoff_ms
        );
        if let Some(d) = self.retry.deadline_ms {
            s.push_str(&format!(", {d} ms budget"));
        }
        s
    }
}

fn invalid_utf8(e: std::str::Utf8Error) -> std::io::Error {
    invalid(format!("settings file is not UTF-8: {e}"))
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let cut: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "devudf-settings-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut s = Settings::default();
        s.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
        s.transfer.compress = true;
        s.transfer.sample = Some(500);
        s.transfer.parallelism = Some(4);
        s.transfer.block_size = Some(64 * 1024);
        s.retry.max_attempts = 5;
        s.retry.deadline_ms = None;
        s.save(&dir).unwrap();
        let loaded = Settings::load(&dir).unwrap();
        assert_eq!(loaded, s);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn settings_file_without_retry_section_loads_with_defaults() {
        // Settings written before the retry layer existed must keep
        // loading (the `retry` key is optional).
        let dir = temp_dir("noretry");
        let path = Settings::path_in(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            r#"{"host": "localhost", "port": 50000, "database": "demo",
                "user": "monetdb", "password": "monetdb", "debug_query": "",
                "transfer": {"compress": false, "encrypt": false, "sample": null}}"#,
        )
        .unwrap();
        let s = Settings::load(&dir).unwrap();
        assert_eq!(s.retry, RetrySettings::default());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retry_settings_convert_to_wire_policy() {
        let s = Settings::default();
        let opts = s.client_options();
        assert!(opts.retry.enabled());
        assert_eq!(opts.retry.max_attempts, 3);
        assert_eq!(opts.retry.initial_backoff, Duration::from_millis(10));
        assert_eq!(opts.retry.max_backoff, Duration::from_millis(200));
        assert_eq!(opts.retry.deadline, Some(Duration::from_secs(2)));
        assert_eq!(opts.read_timeout, Some(Duration::from_secs(30)));
        assert_eq!(opts.write_timeout, Some(Duration::from_secs(30)));
    }

    #[test]
    fn missing_file_yields_defaults() {
        let dir = temp_dir("defaults");
        let s = Settings::load(&dir).unwrap();
        assert_eq!(s, Settings::default());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn transfer_options_conversion() {
        let s = TransferSettings {
            compress: true,
            encrypt: false,
            sample: Some(10),
            ..Default::default()
        };
        let o: TransferOptions = s.into();
        assert!(o.compress);
        assert!(!o.encrypt);
        assert_eq!(o.sample, Some(10));
        assert_eq!(o.block_size, wireproto::DEFAULT_BLOCK_SIZE);
        let sized = TransferSettings {
            block_size: Some(64 * 1024),
            ..Default::default()
        };
        assert_eq!(TransferOptions::from(sized).block_size, 64 * 1024);
    }

    #[test]
    fn parallelism_plumbs_into_client_options() {
        let mut s = Settings::default();
        assert_eq!(s.client_options().parallelism, None);
        s.transfer.parallelism = Some(4);
        assert_eq!(s.client_options().parallelism, Some(4));
    }

    #[test]
    fn settings_file_without_parallelism_keys_loads() {
        // Files written before the chunked pipeline lack the new keys.
        let dir = temp_dir("nopar");
        let path = Settings::path_in(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            r#"{"host": "localhost", "port": 50000, "database": "demo",
                "user": "monetdb", "password": "monetdb", "debug_query": "",
                "transfer": {"compress": true, "encrypt": false, "sample": null}}"#,
        )
        .unwrap();
        let s = Settings::load(&dir).unwrap();
        assert_eq!(s.transfer.parallelism, None);
        assert_eq!(s.transfer.block_size, None);
        assert!(s.transfer.compress);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn zero_parallelism_or_block_size_is_rejected() {
        let dir = temp_dir("zeropar");
        let path = Settings::path_in(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            r#"{"host": "localhost", "port": 50000, "database": "demo",
                "user": "monetdb", "password": "monetdb", "debug_query": "",
                "transfer": {"compress": true, "encrypt": false, "sample": null,
                             "parallelism": 0}}"#,
        )
        .unwrap();
        assert!(Settings::load(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cache_is_on_by_default_and_plumbs_into_client_options() {
        let mut s = Settings::default();
        assert_eq!(s.transfer.cache, CacheSettings::default());
        assert_eq!(s.client_options().cache, Some(8));
        s.transfer.cache.entries = 2;
        assert_eq!(s.client_options().cache, Some(2));
        s.transfer.cache.enabled = false;
        assert_eq!(s.client_options().cache, None);
    }

    #[test]
    fn settings_file_without_cache_section_loads_enabled() {
        // Files written before the delta cache existed default to on —
        // the client degrades transparently against old servers anyway.
        let dir = temp_dir("nocache");
        let path = Settings::path_in(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            r#"{"host": "localhost", "port": 50000, "database": "demo",
                "user": "monetdb", "password": "monetdb", "debug_query": "",
                "transfer": {"compress": false, "encrypt": false, "sample": null}}"#,
        )
        .unwrap();
        let s = Settings::load(&dir).unwrap();
        assert_eq!(s.transfer.cache, CacheSettings::default());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cache_settings_round_trip_and_reject_zero_entries() {
        let dir = temp_dir("cache-rt");
        let mut s = Settings::default();
        s.transfer.cache = CacheSettings {
            enabled: false,
            entries: 3,
        };
        s.save(&dir).unwrap();
        assert_eq!(Settings::load(&dir).unwrap(), s);
        let path = Settings::path_in(&dir);
        std::fs::write(
            &path,
            r#"{"host": "localhost", "port": 50000, "database": "demo",
                "user": "monetdb", "password": "monetdb", "debug_query": "",
                "transfer": {"compress": false, "encrypt": false, "sample": null,
                             "cache": {"enabled": true, "entries": 0}}}"#,
        )
        .unwrap();
        assert!(Settings::load(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn exec_mode_round_trips_defaults_and_rejects_garbage() {
        let dir = temp_dir("interp");
        let mut s = Settings::default();
        assert_eq!(s.interp, InterpMode::Inline);
        assert_eq!(s.interp.pylite_mode(), ExecMode::Bytecode);
        assert!(s.interp.inline());
        s.interp = InterpMode::Ast;
        s.save(&dir).unwrap();
        assert_eq!(Settings::load(&dir).unwrap().interp, InterpMode::Ast);
        s.interp = InterpMode::Bytecode;
        s.save(&dir).unwrap();
        let loaded = Settings::load(&dir).unwrap().interp;
        assert_eq!(loaded, InterpMode::Bytecode);
        assert!(!loaded.inline());
        // Files written before the bytecode VM existed lack the key.
        let path = Settings::path_in(&dir);
        std::fs::write(
            &path,
            r#"{"host": "localhost", "port": 50000, "database": "demo",
                "user": "monetdb", "password": "monetdb", "debug_query": "",
                "transfer": {"compress": false, "encrypt": false, "sample": null}}"#,
        )
        .unwrap();
        assert_eq!(Settings::load(&dir).unwrap().interp, InterpMode::Inline);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unknown_interp_value_fails_loudly_with_allowed_set() {
        let dir = temp_dir("interp_bad");
        let path = Settings::path_in(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        // A typo like "bytcode" must not silently fall back to a default.
        for bad in ["jit", "bytcode", "Inline"] {
            std::fs::write(
                &path,
                format!(
                    r#"{{"host": "localhost", "port": 50000, "database": "demo",
                        "user": "monetdb", "password": "monetdb", "debug_query": "",
                        "transfer": {{"compress": false, "encrypt": false, "sample": null}},
                        "interp": "{bad}"}}"#
                ),
            )
            .unwrap();
            let err = Settings::load(&dir).unwrap_err().to_string();
            assert!(err.contains("'ast', 'bytecode' or 'inline'"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn dialog_describes_the_interpreter() {
        let mut s = Settings::default();
        assert!(s.render_dialog().contains("bytecode VM + engine inlining"));
        s.interp = InterpMode::Bytecode;
        assert!(s.render_dialog().contains("bytecode VM"));
        s.interp = InterpMode::Ast;
        assert!(s.render_dialog().contains("AST walker (reference)"));
    }

    #[test]
    fn dialog_describes_the_cache() {
        let mut s = Settings::default();
        assert!(s.render_dialog().contains("delta, 8 extracts kept"));
        s.transfer.cache.enabled = false;
        assert!(s.render_dialog().contains("disabled (full extract)"));
    }

    #[test]
    fn dialog_masks_password() {
        let mut s = Settings::default();
        s.password = "hunter2".to_string();
        let dialog = s.render_dialog();
        assert!(!dialog.contains("hunter2"));
        assert!(dialog.contains("*******"));
        assert!(dialog.contains("devUDF Settings"));
    }

    #[test]
    fn dialog_describes_transfer_options() {
        let mut s = Settings::default();
        assert!(s.render_dialog().contains("full data, plaintext"));
        s.transfer = TransferSettings {
            compress: true,
            encrypt: true,
            sample: Some(100),
            ..Default::default()
        };
        let d = s.render_dialog();
        // The dialog truncates long values; the prefix must be visible.
        assert!(d.contains("compress + encrypt + sample"), "{d}");
        s.transfer = TransferSettings {
            parallelism: Some(4),
            ..Default::default()
        };
        assert!(s.render_dialog().contains("4 codec threads"));
    }

    #[test]
    fn dialog_describes_retry_policy() {
        let mut s = Settings::default();
        assert!(s.render_dialog().contains("3 attempts, 10-200 ms"));
        s.retry.max_attempts = 1;
        assert!(s.render_dialog().contains("disabled"));
    }

    #[test]
    fn storage_section_round_trips_and_defaults() {
        let dir = temp_dir("storage");
        let mut s = Settings::default();
        assert_eq!(s.storage, StorageSettings::default());
        assert_eq!(s.storage.options(), StorageOptions::default());
        s.storage = StorageSettings {
            data_dir: "/tmp/devudf-data".to_string(),
            fsync: FsyncPolicy::Never,
            snapshot_every: 0,
        };
        s.save(&dir).unwrap();
        let loaded = Settings::load(&dir).unwrap().storage;
        assert_eq!(loaded.data_dir, "/tmp/devudf-data");
        assert_eq!(loaded.fsync, FsyncPolicy::Never);
        assert_eq!(loaded.snapshot_every, 0);
        // Files written before embedded mode existed lack the section.
        let path = Settings::path_in(&dir);
        std::fs::write(
            &path,
            r#"{"host": "localhost", "port": 50000, "database": "demo",
                "user": "monetdb", "password": "monetdb", "debug_query": "",
                "transfer": {"compress": false, "encrypt": false, "sample": null}}"#,
        )
        .unwrap();
        assert_eq!(
            Settings::load(&dir).unwrap().storage,
            StorageSettings::default()
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unknown_storage_values_fail_loudly_with_allowed_set() {
        let dir = temp_dir("storage_bad");
        let path = Settings::path_in(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        // A typo like "alway" must not silently fall back to a default.
        for bad in ["alway", "Always", "on", "fdatasync"] {
            std::fs::write(
                &path,
                format!(
                    r#"{{"host": "localhost", "port": 50000, "database": "demo",
                        "user": "monetdb", "password": "monetdb", "debug_query": "",
                        "transfer": {{"compress": false, "encrypt": false, "sample": null}},
                        "storage": {{"data_dir": "d", "fsync": "{bad}"}}}}"#
                ),
            )
            .unwrap();
            let err = Settings::load(&dir).unwrap_err().to_string();
            assert!(err.contains("'always' or 'never'"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
        // Non-numeric cadence is rejected, not defaulted.
        std::fs::write(
            &path,
            r#"{"host": "localhost", "port": 50000, "database": "demo",
                "user": "monetdb", "password": "monetdb", "debug_query": "",
                "transfer": {"compress": false, "encrypt": false, "sample": null},
                "storage": {"data_dir": "d", "snapshot_every": "lots"}}"#,
        )
        .unwrap();
        let err = Settings::load(&dir).unwrap_err().to_string();
        assert!(err.contains("storage.snapshot_every"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn dialog_describes_storage() {
        let mut s = Settings::default();
        assert!(s.render_dialog().contains("in-memory (no data dir)"));
        s.storage.data_dir = "/data/db".to_string();
        s.storage.snapshot_every = 512;
        // The dialog truncates long values; the prefix must be visible.
        let d = s.render_dialog();
        assert!(d.contains("/data/db (fsync always"), "{d}");
    }

    #[test]
    fn corrupt_settings_file_is_io_error() {
        let dir = temp_dir("corrupt");
        let path = Settings::path_in(&dir);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"{not json").unwrap();
        assert!(Settings::load(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
