//! Umbrella crate for the devUDF reproduction: re-exports every workspace
//! crate so integration tests and examples can use a single dependency root.

pub use codecs;
pub use devudf;
pub use devudf_ide;
pub use minivcs;
pub use monetlite;
pub use pylite;
pub use wireproto;
