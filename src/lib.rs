//! Umbrella crate for the devUDF reproduction: re-exports every workspace
//! crate so integration tests and examples can use a single dependency root.
//!
//! The reproduction target is *devUDF: Increasing UDF development efficiency
//! through IDE Integration* (Raasveldt, Holanda, Manegold — EDBT 2019). The
//! paper's contribution — importing MonetDB/Python UDFs into an IDE project,
//! extracting their input data, debugging them locally, and exporting the
//! fix — lives in [`devudf`]; everything else is the substrate it needs
//! (database engine, interpreter, wire protocol, codecs, VCS, IDE facade).
//!
//! Start points:
//!
//! * [`devudf::DevUdf`] — the end-to-end session API (import → run/debug →
//!   export); see `examples/quickstart.rs`.
//! * [`monetlite::Engine`] — the embedded SQL engine with Python UDFs.
//! * [`pylite::Interp`] + [`pylite::Debugger`] — the interpreter and the
//!   interactive debugger behind the paper's headline feature.
//! * [`wireproto::Server`] / [`wireproto::Client`] — the client/server split
//!   with the §2.1 transfer options (compress / encrypt / sample).
//!
//! The workspace builds fully offline with zero external dependencies; see
//! README.md ("Hermetic build") and DESIGN.md §4a ("Dependency policy").

pub use codecs;
pub use devudf;
pub use devudf_ide;
pub use minivcs;
pub use monetlite;
pub use pylite;
pub use wireproto;
